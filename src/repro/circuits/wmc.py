"""Weighted model counting (probability computation) on Boolean circuits.

Three engines, in increasing sophistication:

- :func:`wmc_enumerate` — brute force over variable valuations (oracle).
- :func:`wmc_shannon` — Shannon expansion with hash-consed memoization; the
  classic exact baseline, exponential in the worst case.
- :func:`wmc_message_passing` — the paper's algorithm: junction-tree
  sum-product over a tree decomposition of the circuit's moral graph
  (Lauritzen–Spiegelhalter). Runs in time ``O(2^w · |C|)`` for width ``w``,
  hence PTIME/linear on bounded-treewidth circuits (Theorems 1–2).

All engines take an :class:`repro.events.EventSpace` supplying independent
variable marginals, and return the probability that the output gate is true.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from repro.circuits.graph import moral_graph
from repro.events import EventSpace
from repro.treewidth import TreeDecomposition, decompose
from repro.util import ReproError, check


def _marginals(circuit: Circuit, space: EventSpace) -> dict[str, float]:
    return {name: space.probability(name) for name in circuit.variables()}


def wmc_enumerate(circuit: Circuit, space: EventSpace) -> float:
    """Exact probability by enumerating all valuations (exponential oracle)."""
    names = sorted(circuit.variables())
    check(len(names) <= 24, "enumeration oracle limited to 24 variables")
    marginals = {n: space.probability(n) for n in names}
    total = 0.0
    for mask in range(1 << len(names)):
        valuation = {n: bool(mask >> i & 1) for i, n in enumerate(names)}
        if circuit.evaluate(valuation):
            weight = 1.0
            for n, v in valuation.items():
                weight *= marginals[n] if v else 1.0 - marginals[n]
            total += weight
    return total


def wmc_shannon(circuit: Circuit, space: EventSpace) -> float:
    """Exact probability by Shannon expansion with memoization.

    Variables are branched in a fixed order; restricted circuits are rebuilt
    hash-consed so identical residual subcircuits share cache entries.
    Exponential in the worst case — the baseline the paper's structural
    approach is compared against.
    """
    marginals = _marginals(circuit, space)
    work = circuit.pruned()
    cache: dict[tuple, float] = {}

    def probability(current: Circuit) -> float:
        gate = current.gate(current.output)  # type: ignore[arg-type]
        if gate.kind == CONST:
            return 1.0 if gate.payload else 0.0
        names = sorted(current.variables())
        key = _canonical_key(current)
        cached = cache.get(key)
        if cached is not None:
            return cached
        pivot = names[0]
        p = marginals[pivot]
        high = probability(current.restricted({pivot: True})) if p > 0.0 else 0.0
        low = probability(current.restricted({pivot: False})) if p < 1.0 else 0.0
        result = p * high + (1.0 - p) * low
        cache[key] = result
        return result

    return probability(work)


def _canonical_key(circuit: Circuit) -> tuple:
    """A structural key identifying the circuit reachable from the output."""
    parts = []
    for gid in circuit.reachable_from_output():
        gate = circuit.gate(gid)
        parts.append((gid, gate.kind, gate.payload, gate.inputs))
    return tuple(parts)


# --------------------------------------------------------------------------- #
# Junction-tree message passing


class MessagePassingReport:
    """Diagnostics of a message-passing run (width actually used, bag count)."""

    def __init__(self, width: int, bag_count: int, gate_count: int):
        self.width = width
        self.bag_count = bag_count
        self.gate_count = gate_count

    def __repr__(self) -> str:
        return (
            f"MessagePassingReport(width={self.width}, bags={self.bag_count},"
            f" gates={self.gate_count})"
        )


def wmc_message_passing(
    circuit: Circuit,
    space: EventSpace,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
    max_width: int = 24,
    return_report: bool = False,
):
    """Exact probability via junction-tree sum-product over the circuit.

    The circuit is binarized, its moral graph decomposed (unless a
    ``decomposition`` over the binarized gate ids is supplied), and each
    gate's consistency factor plus each variable's weight factor is assigned
    to one bag containing its scope. A single bottom-up pass then sums, for
    every bag, over all Boolean assignments of the bag's gates —
    ``O(2^w)`` work per bag.

    Raises :class:`ReproError` if the decomposition width exceeds
    ``max_width`` (the run would be intractable, which is the point of the
    paper's structural restriction).
    """
    work = circuit.binarized()
    check(work.output is not None, "circuit has no output gate")
    out_gate = work.gate(work.output)  # type: ignore[arg-type]
    if out_gate.kind == CONST:
        result = 1.0 if out_gate.payload else 0.0
        if return_report:
            return result, MessagePassingReport(0, 0, 1)
        return result

    gate_ids = work.reachable_from_output()
    if decomposition is None:
        decomposition = decompose(moral_graph(work), heuristic)
    width = decomposition.width()
    if width > max_width:
        raise ReproError(
            f"decomposition width {width} exceeds max_width={max_width}; "
            "the circuit is not tree-like enough for exact message passing"
        )

    marginals = {}
    for gid in gate_ids:
        gate = work.gate(gid)
        if gate.kind == VAR:
            marginals[gid] = space.probability(gate.payload)  # type: ignore[arg-type]

    root, children = decomposition.rooted_children()
    bags = decomposition.bags

    # Assign each gate's factors to exactly one bag containing the scope.
    consistency_at: dict[int, list[int]] = {node: [] for node in bags}
    weight_at: dict[int, list[int]] = {node: [] for node in bags}
    home: dict[int, int] = {}
    order = _postorder(root, children)
    for gid in gate_ids:
        gate = work.gate(gid)
        scope = frozenset((gid,) + gate.inputs)
        node = _bag_containing(decomposition, order, scope)
        if node is None:
            raise ReproError(
                f"no bag contains gate {gid} with its inputs; invalid decomposition"
            )
        consistency_at[node].append(gid)
        home[gid] = node
        if gate.kind == VAR:
            weight_at[node].append(gid)
    output_home = home[work.output]  # type: ignore[index]

    def factor_value(assignment: Mapping[int, bool], gid: int) -> float:
        gate = work.gate(gid)
        value = assignment[gid]
        if gate.kind == VAR:
            return 1.0  # weight applied once, via weight_at, below
        if gate.kind == CONST:
            return 1.0 if value == bool(gate.payload) else 0.0
        inputs = [assignment[i] for i in gate.inputs]
        if gate.kind == NOT:
            expected = not inputs[0]
        elif gate.kind == AND:
            expected = all(inputs)
        elif gate.kind == OR:
            expected = any(inputs)
        else:  # pragma: no cover
            raise ReproError(f"unknown gate kind {gate.kind!r}")
        return 1.0 if value == expected else 0.0

    parent_of: dict[int, int | None] = {root: None}
    for node in order:
        for child in children[node]:
            parent_of[child] = node

    messages: dict[int, dict[tuple, float]] = {}
    for node in order:
        members = sorted(bags[node])
        child_nodes = children[node]
        separators = {
            child: sorted(bags[node] & bags[child]) for child in child_nodes
        }
        table: dict[tuple, float] = {}
        parent_sep = None
        parent = parent_of[node]
        if parent is not None:
            parent_sep = sorted(bags[node] & bags[parent])
        for mask in range(1 << len(members)):
            assignment = {m: bool(mask >> i & 1) for i, m in enumerate(members)}
            weight = 1.0
            for gid in consistency_at[node]:
                weight *= factor_value(assignment, gid)
                if weight == 0.0:
                    break
            if weight == 0.0:
                continue
            for gid in weight_at[node]:
                weight *= marginals[gid] if assignment[gid] else 1.0 - marginals[gid]
            if node == output_home and not assignment[work.output]:  # type: ignore[index]
                continue
            for child in child_nodes:
                key = tuple(assignment[m] for m in separators[child])
                weight *= messages[child].get(key, 0.0)
                if weight == 0.0:
                    break
            if weight == 0.0:
                continue
            key = tuple(assignment[m] for m in parent_sep) if parent_sep is not None else ()
            table[key] = table.get(key, 0.0) + weight
        messages[node] = table

    result = sum(messages[root].values())
    if return_report:
        return result, MessagePassingReport(width, len(bags), len(gate_ids))
    return result


def _postorder(root: int, children: dict[int, list[int]]) -> list[int]:
    order: list[int] = []
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
        else:
            stack.append((node, True))
            for child in children[node]:
                stack.append((child, False))
    return order


def _bag_containing(
    decomposition: TreeDecomposition, order: list[int], scope: frozenset
) -> int | None:
    for node in order:
        if scope <= decomposition.bags[node]:
            return node
    return None
