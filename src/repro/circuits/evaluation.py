"""Unified evaluation layer: compile once, pick an engine, evaluate many.

Every probability computation on circuits in this codebase goes through this
module: a circuit is lowered once to the flat IR
(:func:`repro.circuits.compiled.compile_circuit`, cached on the arena) and
then handed to one of the registered *engines*:

- ``enumerate`` — brute force over all variable valuations (the oracle);
- ``shannon`` — Shannon expansion with residual-circuit memoization;
- ``message_passing`` — the paper's junction-tree sum-product over a tree
  decomposition of the binarized circuit's moral graph (Theorems 1–2);
- ``dd`` — the linear-time bottom-up pass, correct on deterministic
  decomposable circuits over independent variables (Theorem 1).

Engines are plain callables ``engine(compiled, space, **kwargs)`` registered
with :func:`register_engine`, so new strategies (knowledge compilation,
sampling back-ends, vectorized kernels) plug in without touching consumers.
:func:`probability` is the front door; ``repro.circuits.wmc`` and
``repro.circuits.dd`` re-export the historical entry points as thin wrappers
over this layer.

Orthogonal to the engine choice is the **execution backend** the batch
entry points run on: scalar generated kernels (always), level-scheduled
numpy kernels (when numpy imports), and the sharded multi-process pool of
:mod:`repro.circuits.parallel` (when the ``parallel_workers`` knob — re-
exported here alongside :func:`capabilities` — is set to two or more).
Engines pick *what* to compute; the backend stack picks *how fast*; see
``ARCHITECTURE.md`` for the full lowering pipeline.
"""

from __future__ import annotations

import os
from collections.abc import Callable

from repro.circuits.circuit import Circuit
from repro.circuits.compiled import (
    ENUMERATION_VARIABLE_CAP,
    K_AND,
    K_FALSE,
    K_NOT,
    K_OR,
    K_TRUE,
    K_VAR,
    CompiledCircuit,
    compile_circuit,
)
from repro.circuits.compiled import (  # noqa: F401 - re-exported knobs
    batch_stats,
    compile_stats,
    numpy_available,
    recompile,
    reset_batch_stats,
    reset_compile_stats,
)
from repro.circuits.distributed import (  # noqa: F401 - re-exported knobs
    auth_provider,
    auth_provider_set,
    distributed_hosts,
    distributed_hosts_set,
    distributed_secret,
    distributed_secret_set,
    distributed_tls,
    distributed_tls_set,
    pipeline_depth,
    pipeline_depth_set,
    plan_from_bytes,
    plan_to_bytes,
    pool_stats,
    registered_hosts,
    reset_pool,
    set_auth_provider,
    set_distributed_hosts,
    set_distributed_secret,
    set_distributed_tls,
    set_pipeline_depth,
    start_registry,
    stop_registry,
)
from repro.circuits.parallel import (  # noqa: F401 - re-exported knobs
    parallel_available,
    parallel_workers,
    parallel_workers_set,
    set_parallel_workers,
    shutdown_pool,
)
from repro.circuits.plancache import (  # noqa: F401 - re-exported knobs
    plan_cache_dir,
    plan_cache_dir_set,
    plan_cache_stats,
    set_plan_cache_dir,
)
from repro.circuits.plancache import enabled as plan_cache_enabled
from repro.circuits.plancache import min_gates as plan_cache_min_gates
from repro.circuits.plancache import plan_cache_limit_bytes
from repro.events import EventSpace
from repro.util import ReproError, check

Engine = Callable[..., float]


def capabilities() -> dict:
    """Execution capabilities of this install, for CLI/test introspection.

    Reports whether the numpy batch kernels and the sharded multi-process
    backend are importable, the engine and instance-backend knobs, the
    ``parallel_workers`` and ``distributed_hosts`` knobs, whether worker
    authentication is armed, the full plan-cache state, the CQA engine's
    trichotomy classes and routing counters, a snapshot of the persistent
    host pool's counters, and the visible CPU count — one call reports the
    whole configuration (engines are listed by :func:`available_engines`).
    """
    from repro.cqa import CONP, FO, PTIME, cqa_stats
    from repro.instances.columnar import instance_backend

    return {
        "numpy": numpy_available(),
        "engine": default_engine(),
        "forced_engine": forced_engine(),
        "instance_backend": instance_backend(),
        "parallel": parallel_available(),
        "parallel_workers": parallel_workers(),
        "distributed_hosts": list(distributed_hosts()),
        "distributed_auth": distributed_secret() is not None,
        "distributed_transport": auth_provider().name,
        "distributed_pipeline": pipeline_depth(),
        "distributed_registered": list(registered_hosts()),
        "distributed_pool": pool_stats(),
        "plan_cache_dir": plan_cache_dir(),
        "plan_cache_enabled": plan_cache_enabled(),
        "plan_cache_limit_bytes": plan_cache_limit_bytes(),
        "plan_cache_min_gates": plan_cache_min_gates(),
        "plan_cache": plan_cache_stats(),
        "cqa_classes": [FO, PTIME, CONP],
        "cqa": cqa_stats(),
        "compile": compile_stats(),
        "batch": batch_stats(),
        "cpu_count": os.cpu_count() or 1,
    }

_ENGINES: dict[str, Engine] = {}
_DEFAULT_ENGINE = "message_passing"
_FORCED_ENGINE: str | None = None


def register_engine(name: str, engine: Engine) -> None:
    """Register (or replace) a probability engine under ``name``."""
    check(bool(name), "engine name must be non-empty")
    _ENGINES[name] = engine


def available_engines() -> tuple[str, ...]:
    """Names of all registered engines, sorted."""
    return tuple(sorted(_ENGINES))


def get_engine(name: str) -> Engine:
    """Look up a registered engine; raises with the known names otherwise."""
    engine = _ENGINES.get(name)
    if engine is None:
        raise ReproError(
            f"unknown evaluation engine {name!r}; available: "
            f"{', '.join(available_engines())}"
        )
    return engine


def default_engine() -> str:
    """The engine used when :func:`probability` is called without one."""
    return _DEFAULT_ENGINE


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine (validated against the registry)."""
    global _DEFAULT_ENGINE
    get_engine(name)
    _DEFAULT_ENGINE = name


def forced_engine() -> str | None:
    """The engine override applied to every dispatch, or ``None``."""
    return _FORCED_ENGINE


def force_engine(name: str | None) -> None:
    """Force *every* :func:`probability` call onto one engine.

    Overrides even explicit per-call ``engine=`` choices — this is the
    expert knob behind the CLI's ``--engine`` flag, for comparing engines
    on whole workloads. ``None`` clears the override. Note ``dd`` is only
    correct on deterministic decomposable circuits and ``enumerate`` is
    capped at :data:`~repro.circuits.compiled.ENUMERATION_VARIABLE_CAP`
    variables; forcing them where they do not apply is on the caller.
    """
    global _FORCED_ENGINE
    if name is not None:
        get_engine(name)
    _FORCED_ENGINE = name


def engine_forced(name: str | None):
    """Scope a :func:`force_engine` override, restoring the previous one.

    ``force_engine``/``set_default_engine`` are process-wide; tests and
    experiment drivers that flip them should do so through scoped context
    managers so an exception (or an early return) cannot leak the override
    into unrelated code.  Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    return config.overrides(forced_engine=name)


def default_engine_set(name: str):
    """Scope a :func:`set_default_engine` change, restoring the previous one.

    Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    return config.overrides(engine=name)


def probability(
    circuit: Circuit | CompiledCircuit,
    space: EventSpace,
    engine: str | None = None,
    **kwargs,
):
    """Probability that the circuit's output is true under ``space``.

    ``circuit`` may be a gate arena (compiled on first use, cached) or an
    already-compiled circuit. ``engine`` picks a registered strategy; when
    omitted, the process default (:func:`default_engine`) applies, and a
    :func:`force_engine` override beats both. Extra keyword arguments are
    forwarded to the engine.
    """
    compiled = compile_circuit(circuit)
    selected = _FORCED_ENGINE or engine or _DEFAULT_ENGINE
    result = get_engine(selected)(compiled, space, **kwargs)
    if kwargs.get("return_report") and not isinstance(result, tuple):
        # A forced engine without report support still honours the caller's
        # (value, report) contract, with placeholder diagnostics.
        return result, MessagePassingReport(-1, 0, compiled.size)
    return result


def probability_batch(
    circuit: Circuit | CompiledCircuit, marginals_batch
) -> list[float]:
    """Batched Theorem-1 probabilities, one per row of per-variable marginals.

    Module-level form of :meth:`CompiledCircuit.probability_batch` for the
    blessed ``repro`` facade: compiles (or reuses the cached lowering of)
    ``circuit`` and runs the leveled batch pass — numpy kernels, the
    sharded pool, or distributed hosts, per the configured knobs.
    """
    return compile_circuit(circuit).probability_batch(marginals_batch)


# --------------------------------------------------------------------------- #
# enumerate / dd engines — direct fast paths on the flat IR


def _engine_enumerate(
    compiled: CompiledCircuit,
    space: EventSpace,
    max_vars: int = ENUMERATION_VARIABLE_CAP,
    **_kwargs,
) -> float:
    return compiled.probability_enumerate(space, max_vars=max_vars)


def _engine_dd(compiled: CompiledCircuit, space: EventSpace, **_kwargs) -> float:
    return compiled.probability(space)


# --------------------------------------------------------------------------- #
# Shannon expansion on the flat IR

_UNKNOWN = 2
_DEAD = 3


def _engine_shannon(compiled: CompiledCircuit, space: EventSpace, **_kwargs) -> float:
    """Shannon expansion with memoization on the residual three-valued state.

    Branches variables in slot order; after each partial assignment one
    three-valued bottom-up pass (0 / 1 / unknown) both constant-folds the
    circuit and yields a memo key over the gates still reachable from the
    output — the flat-IR analogue of rebuilding a hash-consed restricted
    circuit. Runs on an explicit work stack, so variable count is not
    bounded by the interpreter recursion limit. Exponential in the worst
    case; the baseline the structural engines are compared against.
    """
    probs = compiled.slot_marginals(space)
    size = compiled.size
    kinds = compiled.kinds
    offsets = compiled.offsets
    indices = compiled.indices
    var_slot = compiled.var_slot
    output = compiled.output
    cache: dict[bytes, float] = {}

    def analyze(assignment: tuple[int, ...]):
        """Three-valued pass: resolved value, or (memo key, pivot slot)."""
        values = bytearray(size)
        for pos in range(size):
            kind = kinds[pos]
            if kind == K_VAR:
                value = assignment[var_slot[pos]]
            elif kind == K_AND:
                value = 1
                for j in range(offsets[pos], offsets[pos + 1]):
                    child = values[indices[j]]
                    if child == 0:
                        value = 0
                        break
                    if child == _UNKNOWN:
                        value = _UNKNOWN
            elif kind == K_OR:
                value = 0
                for j in range(offsets[pos], offsets[pos + 1]):
                    child = values[indices[j]]
                    if child == 1:
                        value = 1
                        break
                    if child == _UNKNOWN:
                        value = _UNKNOWN
            elif kind == K_NOT:
                child = values[indices[offsets[pos]]]
                value = child if child == _UNKNOWN else 1 - child
            else:
                value = 1 if kind == K_TRUE else 0
            values[pos] = value
        if values[output] != _UNKNOWN:
            return float(values[output]), None, -1
        # The residual function is determined by the unresolved gates still
        # reachable from the output; masking everything else canonicalizes
        # the memo key and exposes the next live pivot variable.
        live = bytearray(size)
        stack = [output]
        pivot = -1
        while stack:
            pos = stack.pop()
            if live[pos]:
                continue
            live[pos] = 1
            if kinds[pos] == K_VAR:
                slot = var_slot[pos]
                if pivot < 0 or slot < pivot:
                    pivot = slot
                continue
            for j in range(offsets[pos], offsets[pos + 1]):
                child = indices[j]
                if values[child] == _UNKNOWN:
                    stack.append(child)
        key = bytes(values[pos] if live[pos] else _DEAD for pos in range(size))
        return None, key, pivot

    def branch_value(assignment: tuple[int, ...]):
        """Resolved/cached value of a branch, or ``None`` if work remains."""
        resolved, key, _pivot = analyze(assignment)
        if resolved is not None:
            return resolved
        return cache.get(key)

    root = (_UNKNOWN,) * len(compiled.var_names)
    work = [root]
    while work:
        assignment = work[-1]
        resolved, key, pivot = analyze(assignment)
        if resolved is not None or key in cache:
            work.pop()
            continue
        p = probs[pivot]
        high_assignment = assignment[:pivot] + (1,) + assignment[pivot + 1 :]
        low_assignment = assignment[:pivot] + (0,) + assignment[pivot + 1 :]
        high = branch_value(high_assignment) if p > 0.0 else 0.0
        low = branch_value(low_assignment) if p < 1.0 else 0.0
        if high is None or low is None:
            if high is None:
                work.append(high_assignment)
            if low is None:
                work.append(low_assignment)
            continue
        cache[key] = p * high + (1.0 - p) * low
        work.pop()

    resolved, key, _pivot = analyze(root)
    return resolved if resolved is not None else cache[key]


# --------------------------------------------------------------------------- #
# Junction-tree message passing on the flat IR


class MessagePassingReport:
    """Diagnostics of a message-passing run (width actually used, bag count)."""

    def __init__(self, width: int, bag_count: int, gate_count: int):
        self.width = width
        self.bag_count = bag_count
        self.gate_count = gate_count

    def __repr__(self) -> str:
        return (
            f"MessagePassingReport(width={self.width}, bags={self.bag_count},"
            f" gates={self.gate_count})"
        )


def _engine_message_passing(
    compiled: CompiledCircuit,
    space: EventSpace,
    decomposition=None,
    heuristic: str = "min_fill",
    max_width: int = 24,
    return_report: bool = False,
    **_kwargs,
):
    """Exact probability via junction-tree sum-product (Lauritzen–Spiegelhalter).

    Works on the compiled *binarized* form (fan-in ≤ 2 keeps factor scopes,
    hence bags, small). The tree decomposition of its moral graph is cached
    on the compiled circuit per heuristic, so repeated runs — conditioning
    ratios, per-query evaluation on a shared instance — pay for the
    decomposition once. A supplied ``decomposition`` must cover the
    binarized circuit's gate ids (as produced by
    ``circuit.binarized()`` + :func:`repro.circuits.graph.moral_graph`).

    Raises :class:`ReproError` if the width exceeds ``max_width`` — the run
    would be intractable, which is the point of the paper's structural
    restriction.
    """
    from repro.treewidth import TreeDecomposition

    binc = compiled.binarized()
    out_kind = binc.kinds[binc.output]
    if out_kind in (K_TRUE, K_FALSE):
        result = float(out_kind == K_TRUE)
        if return_report:
            return result, MessagePassingReport(0, 0, 1)
        return result

    if decomposition is None:
        decomposition = binc.decomposition(heuristic)
    else:
        # External decompositions speak the binarized arena's gate ids;
        # translate the bags to compiled positions (unreachable or folded
        # gates simply drop out, which cannot uncover a moral edge).
        position_of = binc.position_of
        decomposition = TreeDecomposition(
            {
                node: {position_of[g] for g in bag if g in position_of}
                for node, bag in decomposition.bags.items()
            },
            list(decomposition.tree.edges),
        )
    width = decomposition.width()
    if width > max_width:
        raise ReproError(
            f"decomposition width {width} exceeds max_width={max_width}; "
            "the circuit is not tree-like enough for exact message passing"
        )

    kinds = binc.kinds
    offsets = binc.offsets
    indices = binc.indices
    var_slot = binc.var_slot
    probs = binc.slot_marginals(space)

    root, children = decomposition.rooted_children()
    bags = decomposition.bags
    order = _postorder(root, children)
    rank = {node: i for i, node in enumerate(order)}

    # Assign each gate's consistency factor (and each variable's weight
    # factor) to the first bag, in postorder, containing its scope — found
    # through a position→bags inverted index rather than a full scan.
    bags_containing: dict[int, set[int]] = {}
    for node, bag in bags.items():
        for pos in bag:
            bags_containing.setdefault(pos, set()).add(node)
    consistency_at: dict[int, list[int]] = {node: [] for node in bags}
    weight_at: dict[int, list[int]] = {node: [] for node in bags}
    output_home = None
    for pos in range(binc.size):
        scope_bags = bags_containing.get(pos)
        for j in range(offsets[pos], offsets[pos + 1]):
            child_bags = bags_containing.get(indices[j])
            scope_bags = (
                scope_bags & child_bags
                if scope_bags is not None and child_bags is not None
                else None
            )
            if not scope_bags:
                scope_bags = None
                break
        if not scope_bags:
            raise ReproError(
                f"no bag contains gate {pos} with its inputs; invalid decomposition"
            )
        home = min(scope_bags, key=rank.__getitem__)
        consistency_at[home].append(pos)
        if kinds[pos] == K_VAR:
            weight_at[home].append(pos)
        if pos == binc.output:
            output_home = home

    parent_of: dict[int, int | None] = {root: None}
    for node in order:
        for child in children[node]:
            parent_of[child] = node

    assignment = bytearray(binc.size)
    output_position = binc.output

    def factor_value(pos: int) -> float:
        kind = kinds[pos]
        value = assignment[pos]
        if kind == K_VAR:
            return 1.0  # weight applied once, via weight_at, below
        if kind == K_TRUE or kind == K_FALSE:
            return 1.0 if value == (kind == K_TRUE) else 0.0
        start, end = offsets[pos], offsets[pos + 1]
        if kind == K_NOT:
            expected = 1 - assignment[indices[start]]
        elif kind == K_AND:
            expected = 1
            for j in range(start, end):
                if not assignment[indices[j]]:
                    expected = 0
                    break
        else:  # K_OR
            expected = 0
            for j in range(start, end):
                if assignment[indices[j]]:
                    expected = 1
                    break
        return 1.0 if value == expected else 0.0

    messages: dict[int, dict[tuple, float]] = {}
    for node in order:
        members = sorted(bags[node])
        child_nodes = children[node]
        separators = {
            child: sorted(bags[node] & bags[child]) for child in child_nodes
        }
        child_messages = [(messages[c], separators[c]) for c in child_nodes]
        table: dict[tuple, float] = {}
        parent = parent_of[node]
        parent_sep = sorted(bags[node] & bags[parent]) if parent is not None else None
        for mask in range(1 << len(members)):
            for i, member in enumerate(members):
                assignment[member] = (mask >> i) & 1
            weight = 1.0
            for pos in consistency_at[node]:
                weight *= factor_value(pos)
                if weight == 0.0:
                    break
            if weight == 0.0:
                continue
            for pos in weight_at[node]:
                p = probs[var_slot[pos]]
                weight *= p if assignment[pos] else 1.0 - p
            if node == output_home and not assignment[output_position]:
                continue
            for message, separator in child_messages:
                key = tuple(assignment[m] for m in separator)
                weight *= message.get(key, 0.0)
                if weight == 0.0:
                    break
            if weight == 0.0:
                continue
            key = (
                tuple(assignment[m] for m in parent_sep)
                if parent_sep is not None
                else ()
            )
            table[key] = table.get(key, 0.0) + weight
        messages[node] = table

    result = sum(messages[root].values())
    if return_report:
        return result, MessagePassingReport(width, len(bags), binc.size)
    return result


def _postorder(root: int, children: dict[int, list[int]]) -> list[int]:
    order: list[int] = []
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
        else:
            stack.append((node, True))
            for child in children[node]:
                stack.append((child, False))
    return order


register_engine("enumerate", _engine_enumerate)
register_engine("shannon", _engine_shannon)
register_engine("message_passing", _engine_message_passing)
register_engine("dd", _engine_dd)
