"""Shared utilities: deterministic RNG helpers, iteration helpers, validation."""

from repro.util.helpers import (
    ReproError,
    check,
    fresh_name_factory,
    pairs,
    powerset,
    stable_rng,
)

__all__ = [
    "ReproError",
    "check",
    "fresh_name_factory",
    "pairs",
    "powerset",
    "stable_rng",
]
