"""Query languages: CQs, UCQs, safe plans, Datalog (S5)."""

from repro.queries.cq import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    Variable,
    atom,
    cq,
    ucq,
    variables,
)
from repro.queries.datalog import DatalogProgram, DatalogRule
from repro.queries.safe import (
    UnsafeQueryError,
    is_hierarchical,
    is_safe,
    safe_plan_probability,
)

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "DatalogProgram",
    "DatalogRule",
    "UnionOfConjunctiveQueries",
    "UnsafeQueryError",
    "Variable",
    "atom",
    "cq",
    "is_hierarchical",
    "is_safe",
    "safe_plan_probability",
    "ucq",
    "variables",
]
