"""pcc-instances: facts annotated by gates of a shared Boolean circuit.

The paper's Theorem 2 formalism. Annotations are circuit *gates* rather than
formulas, so correlations can share structure; tractability requires a
bounded-width tree decomposition that *jointly* covers the instance's Gaifman
graph and the annotation circuit, respecting the fact-to-gate links. We
materialize that joint graph (:meth:`PCCInstance.joint_graph`) so its
heuristic width can be measured and exploited.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

import networkx as nx

from repro.circuits import Circuit, from_formula
from repro.circuits.graph import moral_graph
from repro.events import EventSpace, Formula
from repro.instances.base import Fact, Instance
from repro.instances.columnar import make_instance
from repro.util import check


class PCCInstance:
    """An instance, an annotation circuit, an event space, and fact→gate links."""

    def __init__(
        self,
        space: EventSpace | None = None,
        circuit: Circuit | None = None,
        backend: str | None = None,
    ):
        self.instance = make_instance(backend)
        self.circuit = circuit if circuit is not None else Circuit()
        self.space = space if space is not None else EventSpace()
        self._gate_of: dict[Fact, int] = {}

    def add(self, f: Fact, gate: int) -> Fact:
        """Insert fact ``f`` annotated by circuit gate ``gate``."""
        check(0 <= gate < len(self.circuit), f"unknown gate {gate}")
        self.instance.add(f)
        self._gate_of[f] = gate
        return f

    def add_event(self, name: str, probability: float) -> str:
        """Register an event used by the annotation circuit."""
        return self.space.add(name, probability)

    def add_with_formula(self, f: Fact, formula: Formula) -> Fact:
        """Insert a fact annotated by a formula, compiled into the circuit."""
        _, gate = from_formula(formula, self.circuit)
        return self.add(f, gate)

    def gate_of(self, f: Fact) -> int:
        """Return the annotation gate of ``f``."""
        check(f in self._gate_of, f"unknown fact {f!r}")
        return self._gate_of[f]

    def facts(self) -> list[Fact]:
        """Return the facts in insertion order."""
        return self.instance.facts()

    def __len__(self) -> int:
        return len(self.instance)

    # ------------------------------------------------------------------ #
    # semantics

    def world(self, valuation: Mapping[str, bool]) -> Instance:
        """Return the world selected by an event valuation."""
        return Instance(
            f
            for f in self.facts()
            if self.circuit.evaluate(valuation, self._gate_of[f])
        )

    def possible_worlds(self) -> Iterator[tuple[Instance, float]]:
        """Enumerate ``(world, probability)`` pairs — exponential oracle."""
        events = sorted(self.space.events())
        check(len(events) <= 20, "possible-world enumeration limited to 20 events")
        for valuation in self.space.valuations(events):
            yield self.world(valuation), self.space.valuation_probability(valuation)

    def fact_probability_enumerate(self, f: Fact) -> float:
        """Marginal probability of ``f`` by enumeration (oracle)."""
        gate = self.gate_of(f)
        total = 0.0
        for valuation in self.space.valuations(self.space.events()):
            if self.circuit.evaluate(valuation, gate):
                total += self.space.valuation_probability(valuation)
        return total

    # ------------------------------------------------------------------ #
    # the joint structural graph of Theorem 2

    def joint_graph(self) -> nx.Graph:
        """Return the joint graph of instance + circuit + fact/gate links.

        Vertices are domain constants and circuit gate ids (disambiguated by
        tagging); edges are Gaifman edges, moralized circuit edges, and one
        edge from each fact's constants to its annotation gate. Bounded
        treewidth of this graph is (our computable rendering of) the paper's
        bounded-treewidth pcc-instance condition.
        """
        graph = nx.Graph()
        for constant in self.instance.domain():
            graph.add_node(("d", constant))
        binary = self.circuit  # widths are measured on the raw shared circuit
        for gid, neighbours in moral_graph(binary, restrict_to_output=False).adjacency():
            graph.add_node(("g", gid))
            for other in neighbours:
                graph.add_edge(("g", gid), ("g", other))
        for f in self.facts():
            for i, a in enumerate(f.args):
                for b in f.args[i + 1 :]:
                    if a != b:
                        graph.add_edge(("d", a), ("d", b))
            gate = self._gate_of[f]
            for a in f.args:
                graph.add_edge(("d", a), ("g", gate))
        return graph

    def joint_width(self, heuristic: str = "min_fill") -> int:
        """Heuristic width of :meth:`joint_graph` — Theorem 2's parameter."""
        from repro.treewidth import decompose

        return decompose(self.joint_graph(), heuristic).width()

    def __repr__(self) -> str:
        return (
            f"PCCInstance(facts={len(self.instance)}, gates={len(self.circuit)},"
            f" events={len(self.space)})"
        )


def from_pc_instance(pc) -> PCCInstance:
    """Compile a pc-instance's formula annotations into a shared circuit."""
    pcc = PCCInstance(space=pc.space)
    for f in pc.facts():
        pcc.add_with_formula(f, pc.annotation(f))
    return pcc


def from_tid(tid) -> PCCInstance:
    """View a TID as a pcc-instance: one variable gate per fact."""
    pcc = PCCInstance()
    for f in tid.facts():
        pcc.add_event(f.variable_name, tid.probability(f))
        pcc.add(f, pcc.circuit.variable(f.variable_name))
    return pcc
