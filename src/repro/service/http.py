"""A minimal asyncio HTTP/1.1 binding for :class:`QueryService`.

Stdlib only, on purpose: the service must run on a bare install, the same
constraint the rest of the repo honours (numpy optional, nothing else
assumed). It implements exactly what the service needs — JSON request and
response bodies framed by ``Content-Length``, keep-alive connections,
``Transfer-Encoding: chunked`` for the streaming endpoints, and a
reader-side EOF watch so a client hanging up mid-stream cancels its
Monte-Carlo run promptly instead of computing into a dead socket.

A richer ASGI binding (FastAPI/uvicorn) can front the same
:class:`~repro.service.app.QueryService` later, gated behind a capability
check like :func:`fastapi_available` — the app layer is transport-
independent either way, which is also what makes it unit-testable without
a socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

from repro.service.app import QueryService, StreamResponse

#: Refuse requests with unreasonable framing before buffering anything big.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


def fastapi_available() -> bool:
    """Whether the optional FastAPI transport could be imported here."""
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


class _BadRequest(Exception):
    """Malformed framing; the connection is answered with 400 and closed."""


async def _read_request(reader):
    """Parse one request; ``None`` on a clean EOF between requests."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest("malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        if not line:
            return None  # truncated mid-headers: treat as disconnect
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise _BadRequest("headers too large")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest("malformed header line")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise _BadRequest("malformed Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _json_response(status: int, payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    reason = _REASONS.get(status, "Error")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    ).encode()
    return head + body


async def _watch_disconnect(reader, cancel: asyncio.Event) -> None:
    """Set ``cancel`` when the peer closes (or talks) mid-stream.

    The protocol forbids pipelining a request while a stream is in
    flight, so any readable byte — and certainly EOF — means the client
    is gone as far as this stream is concerned.
    """
    with contextlib.suppress(Exception):
        await reader.read(1)
    cancel.set()


async def _write_stream(reader, writer, response: StreamResponse) -> bool:
    """Send one chunked-stream response; returns keep-alive eligibility."""
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Transfer-Encoding: chunked\r\n"
        b"Connection: keep-alive\r\n"
        b"\r\n"
    )
    cancel = asyncio.Event()
    watcher = asyncio.ensure_future(_watch_disconnect(reader, cancel))
    generator = response.factory(cancel)
    write_failed = False
    try:
        async for item in generator:
            line = (json.dumps(item) + "\n").encode()
            writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                cancel.set()
                write_failed = True
                break
    finally:
        # Stop watching *before* the terminal chunk goes out: the client
        # cannot legally send its next request until it has seen the
        # terminal chunk, so the watcher can never eat that request's
        # first byte.
        watcher.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await watcher
        with contextlib.suppress(Exception):
            await generator.aclose()
    if write_failed or cancel.is_set():
        return False
    writer.write(b"0\r\n\r\n")
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        return False
    return True


async def _handle_connection(service: QueryService, reader, writer) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                with contextlib.suppress(ConnectionError, OSError):
                    writer.write(_json_response(400, {"error": str(exc)}))
                    await writer.drain()
                break
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                break
            if request is None:
                break
            method, target, _headers, body = request
            path = target.split("?", 1)[0]
            response = await service.dispatch(method, path, body)
            if isinstance(response, StreamResponse):
                if not await _write_stream(reader, writer, response):
                    break
            else:
                status, payload = response
                try:
                    writer.write(_json_response(status, payload))
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
            if service.shutdown_requested():
                break
    finally:
        with contextlib.suppress(Exception):
            writer.close()
            await writer.wait_closed()


async def run_service(service: QueryService, host: str = "127.0.0.1",
                      port: int = 0) -> None:
    """Serve ``service`` until its shutdown event fires.

    Prints a single ``repro-service listening on host:port`` readiness
    line (the same contract as the distributed worker's spawn helper) and
    tears every resident resource down on the way out.
    """
    active_writers: set = set()

    async def handler(reader, writer):
        active_writers.add(writer)
        try:
            await _handle_connection(service, reader, writer)
        finally:
            active_writers.discard(writer)

    server = await asyncio.start_server(handler, host, port)
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    print(f"repro-service listening on {bound_host}:{bound_port}", flush=True)
    try:
        await service.shutdown_event.wait()
        # Give the /shutdown handler a beat to flush its response.
        await asyncio.sleep(0.05)
    finally:
        server.close()
        # Idle keep-alive connections would hold wait_closed() open
        # forever (3.12 waits for handler completion); abort them.
        for writer in list(active_writers):
            with contextlib.suppress(Exception):
                writer.close()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(server.wait_closed(), timeout=5.0)
        service.close()


def serve_http(host: str = "127.0.0.1", port: int = 0, **service_kwargs) -> None:
    """Blocking entry point behind ``repro serve-http``.

    ``service_kwargs`` are forwarded to :class:`QueryService` (coalescing,
    cache sizing, plan caps); environment knobs fill anything omitted.
    """
    service = QueryService(**service_kwargs)
    try:
        asyncio.run(run_service(service, host=host, port=port))
    except KeyboardInterrupt:
        service.close()
