"""Coverage of remaining public-API surface: export utilities, edge cases."""

import pytest

from repro.circuits import Circuit, circuit_stats, to_dot
from repro.events import EventSpace
from repro.instances import Instance, TIDInstance, fact
from repro.order import antichain, chain, count_realizations, union
from repro.prxml import sample_world, world_distribution
from repro.util import ReproError
from repro.workloads import figure1_document


class TestCircuitExport:
    def build(self) -> Circuit:
        c = Circuit()
        g = c.or_gate(
            [
                c.and_gate([c.variable("a"), c.variable("b")]),
                c.negation(c.variable("c")),
            ]
        )
        c.set_output(g)
        return c

    def test_stats_counts(self):
        stats = circuit_stats(self.build())
        assert stats.variables == 3
        assert stats.and_gates == 1
        assert stats.or_gates == 1
        assert stats.not_gates == 1
        assert stats.depth == 3
        assert "gates" in str(stats)

    def test_stats_requires_output(self):
        with pytest.raises(ReproError, match="no output"):
            circuit_stats(Circuit())

    def test_dot_structure(self):
        c = self.build()
        dot = to_dot(c)
        assert dot.startswith("digraph circuit {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") >= 4
        assert "peripheries=2" in dot  # the output gate is highlighted

    def test_dot_size_guard(self):
        c = Circuit()
        acc = c.variable("x0")
        for i in range(1, 600):
            acc = c.or_gate([acc, c.variable(f"x{i}")])
        c.set_output(acc)
        with pytest.raises(ReproError, match="max_gates"):
            to_dot(c)


class TestEventSpaceEdges:
    def test_restrict_unknown_event(self):
        with pytest.raises(ReproError, match="unknown events"):
            EventSpace({"a": 0.5}).restrict(["ghost"])

    def test_merged_conflict(self):
        with pytest.raises(ReproError, match="different probability"):
            EventSpace({"a": 0.5}).merged(EventSpace({"a": 0.6}))

    def test_contains(self):
        space = EventSpace({"a": 0.5})
        assert "a" in space
        assert "b" not in space


class TestInstanceEdges:
    def test_by_relation_order(self):
        inst = Instance([fact("R", 2), fact("S", 1), fact("R", 1)])
        assert inst.by_relation("R") == [fact("R", 2), fact("R", 1)]

    def test_discard(self):
        inst = Instance([fact("R", 1)])
        inst.discard(fact("R", 1))
        inst.discard(fact("R", 99))  # no-op
        assert len(inst) == 0

    def test_repr_preview(self):
        inst = Instance([fact("R", i) for i in range(6)])
        assert "..." in repr(inst)


class TestOrderRealizations:
    def test_realizations_match_enumeration(self):
        poset = union(chain(["a", "b"], "l"), antichain(["b"], "r"))
        from repro.order import extension_labels, iter_linear_extensions

        worlds = {}
        for extension in iter_linear_extensions(poset):
            labels = extension_labels(poset, extension)
            worlds[labels] = worlds.get(labels, 0) + 1
        for labels, expected in worlds.items():
            assert count_realizations(poset, labels) == expected

    def test_wrong_length_is_zero(self):
        poset = chain(["a", "b"])
        assert count_realizations(poset, ("a",)) == 0


class TestPrXMLSampling:
    def test_sampling_frequencies_match_distribution(self):
        doc = figure1_document()
        distribution = dict(world_distribution(doc))
        counts: dict = {}
        trials = 3000
        for seed in range(trials):
            world = sample_world(doc, seed=seed)
            counts[world] = counts.get(world, 0) + 1
        for world, probability in distribution.items():
            frequency = counts.get(world, 0) / trials
            assert abs(frequency - probability) < 0.05

    def test_tid_treewidth_bound_nonnegative(self):
        tid = TIDInstance({fact("E", 1, 2): 0.5})
        assert tid.treewidth_upper_bound() >= 1


class TestRepr:
    """Reprs must be stable and informative (they appear in docs/examples)."""

    def test_key_reprs(self):
        from repro.queries import atom, cq, variables

        x, y = variables("x", "y")
        assert "?x" in repr(atom("R", x))
        assert "∃" in repr(cq(atom("R", x)))
        assert "TIDInstance" in repr(TIDInstance())
        assert "PrXMLDocument" in repr(figure1_document())
