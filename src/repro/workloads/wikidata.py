"""Wikidata-like PrXML workloads, including the paper's exact Figure 1.

Figure 1 of the paper shows part of the Wikidata entry for Chelsea Manning:
an ``ind`` node for the uncertain "occupation: musician" statement (p = 0.4),
a ``cie`` node correlating "place of birth: Crescent" and "surname: Manning"
through the contributor-trust event eJane (p = 0.9), and a ``mux`` node for
the given name (Bradley 0.6 / Chelsea 0.4). :func:`figure1_document`
reproduces it verbatim; :func:`wikidata_like_document` generates arbitrarily
large documents with the same shape (entities, property subtrees,
per-contributor events guarding groups of facts — bounded event scopes).
"""

from __future__ import annotations

from repro.events import EventSpace
from repro.prxml.model import PNode, PrXMLDocument, cie, ind, mux, regular
from repro.util import check, stable_rng

FIGURE1_EVENT_JANE = "eJane"


def figure1_document() -> PrXMLDocument:
    """The exact PrXML document of the paper's Figure 1."""
    space = EventSpace({FIGURE1_EVENT_JANE: 0.9})
    root = regular(
        "Q298423",
        [
            ind([(regular("occupation", [regular("musician")]), 0.4)]),
            cie(
                [
                    (
                        regular("place of birth", [regular("Crescent")]),
                        [(FIGURE1_EVENT_JANE, True)],
                    ),
                    (
                        regular("surname", [regular("Manning")]),
                        [(FIGURE1_EVENT_JANE, True)],
                    ),
                ]
            ),
            regular(
                "given name",
                [mux([(regular("Bradley"), 0.6), (regular("Chelsea"), 0.4)])],
            ),
        ],
    )
    return PrXMLDocument(root, space)


PROPERTIES = (
    "occupation",
    "place of birth",
    "surname",
    "given name",
    "citizenship",
    "employer",
    "award",
    "spouse",
)

VALUES = (
    "musician",
    "Crescent",
    "Manning",
    "Chelsea",
    "Bradley",
    "USA",
    "army",
    "medal",
)


def wikidata_like_document(
    entities: int,
    properties_per_entity: int = 4,
    contributors: int = 3,
    facts_per_contributor: int = 2,
    trust: float = 0.85,
    seed: int = 0,
) -> PrXMLDocument:
    """Generate a Wikidata-like document with contributor events.

    Each contributor event guards a *contiguous group* of property subtrees
    under one entity — so every node lies in the scope of at most one event,
    the bounded-scope regime. Remaining properties get ind/mux local noise.
    """
    check(entities >= 1, "need at least one entity")
    rng = stable_rng(seed)
    space = EventSpace()
    entity_nodes: list[PNode] = []
    contributor_index = 0
    for e in range(entities):
        children: list[PNode] = []
        remaining = properties_per_entity
        # One contributor-guarded group per entity while contributors remain.
        if contributor_index < contributors and remaining >= facts_per_contributor:
            event = f"eContrib{contributor_index}"
            space.add(event, round(min(0.95, max(0.05, trust + rng.uniform(-0.1, 0.1))), 3))
            guarded = []
            for _ in range(facts_per_contributor):
                # Guarded claims share the label "statement" so a single tree
                # pattern can query them across the whole document.
                guarded.append(
                    (
                        regular("statement", [_property_subtree(rng)]),
                        [(event, True)],
                    )
                )
                remaining -= 1
            children.append(cie(guarded))
            contributor_index += 1
        for _ in range(remaining):
            style = rng.random()
            subtree = _property_subtree(rng)
            if style < 0.4:
                children.append(ind([(subtree, round(rng.uniform(0.3, 0.9), 2))]))
            elif style < 0.6:
                children.append(
                    regular(
                        subtree.label,
                        [
                            mux(
                                [
                                    (regular(rng.choice(VALUES)), 0.5),
                                    (regular(rng.choice(VALUES)), 0.3),
                                ]
                            )
                        ],
                    )
                )
            else:
                children.append(subtree)
        entity_nodes.append(regular(f"Q{1000 + e}", children))
    root = regular("wikidata", entity_nodes)
    return PrXMLDocument(root, space)


def adversarial_scope_document(
    side: int, probability: float = 0.5, seed: int = 0
) -> PrXMLDocument:
    """A grid-correlated document whose scope width grows with ``side``.

    One cie node with ``side²`` children; child (i, j) is guarded by
    ``row_i ∧ col_j``. Every row event's uses are spread across the whole
    child list, so it must be remembered across everything in between: the
    node-scope width grows linearly in ``side``, and so does the lineage
    circuit's treewidth — the intractable contrast for experiment E5.
    """
    rng = stable_rng(seed)
    space = EventSpace()
    for i in range(side):
        space.add(f"row{i}", round(min(0.95, max(0.05, probability + rng.uniform(-0.2, 0.2))), 3))
        space.add(f"col{i}", round(min(0.95, max(0.05, probability + rng.uniform(-0.2, 0.2))), 3))
    guarded = []
    for i in range(side):
        for j in range(side):
            guarded.append(
                (
                    regular("statement", [regular(f"val{i}_{j}")]),
                    [(f"row{i}", True), (f"col{j}", True)],
                )
            )
    root = regular("entity", [cie(guarded)])
    return PrXMLDocument(root, space)


def _property_subtree(rng) -> PNode:
    prop = rng.choice(PROPERTIES)
    value = rng.choice(VALUES)
    return regular(prop, [regular(value)])
