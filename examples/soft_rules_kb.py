"""Probabilistic rules: completing a knowledge base with soft deductions.

The paper's Section 2.3 vision, executable: soft rules ("citizens usually
live in their country", "residents probably speak the official language",
"a PhD student and their advisor have probably co-authored some paper")
fire per-trigger with independent probabilities, producing a pcc-instance
whose derived facts carry circuit lineage. Query probabilities follow by the
Theorem 2 machinery.

Run:  python examples/soft_rules_kb.py
"""

from repro import pcc_probability
from repro.instances import Instance, fact
from repro.queries import atom, cq, variables
from repro.rules import (
    RULE_LEVEL,
    TRIGGER_LEVEL,
    is_weakly_acyclic,
    probabilistic_chase,
)
from repro.workloads import ADVISOR_RULES, CITIZEN_RULES

X, Y, Z = variables("x", "y", "z")


def citizenship() -> None:
    print("=" * 70)
    print("Soft rules over a citizenship KB")
    print("=" * 70)
    kb = Instance(
        [
            fact("Citizen", "alice", "france"),
            fact("Citizen", "bob", "france"),
            fact("OfficialLanguage", "france", "french"),
            fact("LivesIn", "bob", "france"),  # bob's residence is known
        ]
    )
    print("rules:")
    for pr in CITIZEN_RULES:
        print(f"  {pr}")
    print("weakly acyclic:", is_weakly_acyclic([pr.rule for pr in CITIZEN_RULES]))

    chased = probabilistic_chase(kb, CITIZEN_RULES, rounds=3)
    print(f"\nchased instance: {len(chased)} facts, {len(chased.space)} events")
    for person in ("alice", "bob"):
        lives = fact("LivesIn", person, "france")
        speaks = fact("Speaks", person, "french")
        print(f"  P[{lives}]  = {chased.fact_probability_enumerate(lives):.3f}")
        print(f"  P[{speaks}] = {chased.fact_probability_enumerate(speaks):.3f}")
    print("  (bob's residence is certain, so P[Speaks] = 0.9 for bob,")
    print("   while alice needs the residence rule first: 0.8 x 0.9 = 0.72)")

    someone_speaks = cq(atom("Speaks", X, "french"))
    print(f"\n  P[someone speaks french] = "
          f"{pcc_probability(someone_speaks, chased):.4f}  (exact, via lineage)")


def advisors() -> None:
    print()
    print("=" * 70)
    print("Existential soft rules: inventing unknown co-authored papers")
    print("=" * 70)
    kb = Instance([fact("AdvisedBy", "dan", "prof_x")])
    for pr in ADVISOR_RULES:
        print(f"  {pr}")
    chased = probabilistic_chase(kb, ADVISOR_RULES, rounds=1)
    derived = [f for f in chased.facts() if f.relation == "Author"]
    print(f"\n  derived facts (note the invented paper null):")
    for f in derived:
        print(f"    {f}  with P = {chased.fact_probability_enumerate(f):.2f}")
    coauthored = cq(atom("Author", "dan", Z), atom("Author", "prof_x", Z))
    print(f"  P[dan and prof_x co-authored something] = "
          f"{pcc_probability(coauthored, chased):.2f}")


def semantics_comparison() -> None:
    print()
    print("=" * 70)
    print("Trigger-level (paper) vs rule-level ([25]) semantics")
    print("=" * 70)
    kb = Instance([fact("Citizen", "alice", "france"), fact("Citizen", "bob", "france")])
    rules = CITIZEN_RULES[:1]  # the 0.8 residence rule, two triggers
    both_live = cq(
        atom("LivesIn", "alice", "france"), atom("LivesIn", "bob", "france")
    )
    trigger = probabilistic_chase(kb, rules, rounds=1, semantics=TRIGGER_LEVEL)
    rule_lvl = probabilistic_chase(kb, rules, rounds=1, semantics=RULE_LEVEL)
    p_trigger = pcc_probability(both_live, trigger)
    p_rule = pcc_probability(both_live, rule_lvl)
    print(f"  P[both live in france], trigger-level = {p_trigger:.2f}  (0.8 squared)")
    print(f"  P[both live in france], rule-level    = {p_rule:.2f}  (rule all-or-nothing)")


if __name__ == "__main__":
    citizenship()
    advisors()
    semantics_comparison()
    print("\nSoft rules example complete.")
