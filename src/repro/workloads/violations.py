"""Key-violating instance generator for the certain-answer (CQA) workload.

Generates binary relations ``R(key, value)`` whose first column is the
declared primary key and whose blocks violate it at a tunable rate: a
fraction ``violation_rate`` of the keys carry ``block_size`` conflicting
facts instead of one.  Values are drawn from the key domain so the three
canonical trichotomy queries (:func:`cqa_trichotomy_queries`) all find
joins — R's value column references S's keys and vice versa.

Seeded and deterministic like every generator in this package, with the
same ``backend`` knob (defaulting to the process-wide
:func:`repro.instances.columnar.instance_backend`); on the columnar
backend facts load as encoded column batches, no ``Fact`` objects.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.instances.base import AbstractInstance, fact
from repro.instances.columnar import ColumnarInstance, columnar_numpy, make_instance
from repro.queries.cq import ConjunctiveQuery, atom, variables
from repro.queries.keys import KeySpec, key_spec
from repro.util import check, stable_rng

__all__ = ["CQAWorkload", "cqa_trichotomy_queries", "key_violation_instance"]


@dataclass(frozen=True)
class CQAWorkload:
    """A generated key-violating instance with its keys and test queries."""

    instance: AbstractInstance
    keys: KeySpec
    queries: dict[str, ConjunctiveQuery]


def cqa_trichotomy_queries() -> dict[str, ConjunctiveQuery]:
    """The canonical Koutris–Wijsen examples, one per trichotomy class.

    Under keys ``R(x̲, y)``, ``S(y̲, z)``:

    - ``"fo"``    — R(x̲, y) ∧ S(y̲, z): acyclic attack graph;
    - ``"ptime"`` — R(x̲, y) ∧ S(y̲, x): a weak cycle;
    - ``"conp"``  — R(x̲, y) ∧ S(z̲, y): a strong cycle.
    """
    x, y, z = variables("x", "y", "z")
    return {
        "fo": ConjunctiveQuery((atom("R", x, y), atom("S", y, z))),
        "ptime": ConjunctiveQuery((atom("R", x, y), atom("S", y, x))),
        "conp": ConjunctiveQuery((atom("R", x, y), atom("S", z, y))),
    }


def key_violation_instance(
    n_keys: int,
    violation_rate: float = 0.25,
    relations: tuple[str, ...] = ("R", "S"),
    block_size: int = 2,
    seed: int = 0,
    backend: str | None = None,
) -> tuple[AbstractInstance, KeySpec]:
    """A key-violating instance: ``(instance, keys)``.

    Each relation gets one block per key ``0..n_keys-1``; a block is
    *violating* (holds ``block_size`` facts with distinct values) with
    probability ``violation_rate``, and a singleton otherwise.  Values are
    uniform over ``0..n_keys-1``.
    """
    check(n_keys > 0, "n_keys must be positive")
    check(0.0 <= violation_rate <= 1.0, "violation_rate must be in [0, 1]")
    check(block_size >= 2, "violating blocks need at least two facts")
    rng = stable_rng(seed)
    instance = make_instance(backend)
    keys = key_spec(**{relation: (0,) for relation in relations})

    for relation in relations:
        key_column: list[int] = []
        value_column: list[int] = []
        for k in range(n_keys):
            copies = block_size if rng.random() < violation_rate else 1
            values = rng.sample(range(n_keys), min(copies, n_keys))
            for v in values:
                key_column.append(k)
                value_column.append(v)
        if isinstance(instance, ColumnarInstance):
            instance.intern_int_range(n_keys)
            np = columnar_numpy()
            if np is not None:
                columns = [
                    np.asarray(key_column, dtype=np.int64),
                    np.asarray(value_column, dtype=np.int64),
                ]
            else:
                columns = [array("i", key_column), array("i", value_column)]
            instance.extend_encoded(relation, columns)
        else:
            for k, v in zip(key_column, value_column):
                instance.add(fact(relation, k, v))
    return instance, keys


def cqa_workload(
    n_keys: int,
    violation_rate: float = 0.25,
    seed: int = 0,
    backend: str | None = None,
) -> CQAWorkload:
    """Instance + keys + the three canonical queries, bundled."""
    instance, keys = key_violation_instance(
        n_keys, violation_rate, seed=seed, backend=backend
    )
    return CQAWorkload(instance, keys, cqa_trichotomy_queries())
