"""A deterministic decomposition automaton for arbitrary conjunctive queries.

The nondeterministic automaton for a Boolean CQ guesses a homomorphism while
walking the tree encoding: a nondeterministic state is a pair
``(assignment, satisfied)`` where ``assignment`` binds query variables to
current bag elements or to the sentinel BELOW (bound to an already-forgotten
element), and ``satisfied`` is the set of atom indices already witnessed by
facts read below. We determinize by the subset construction *on the fly*: a
deterministic state (a *profile*) is the set of nondeterministic states
reachable for the actual subinstance below — finite for a fixed query and
width, which is exactly why the construction is linear in the instance
(Theorem 1) with a constant depending on the query.

Design notes:

- Variables are bound lazily, only when a fact is read and used to witness an
  atom. This is complete: bindings are only ever *checked* through facts, and
  decomposition connectivity guarantees a binding to a bag element stays
  visible until the element is forgotten.
- At a forget, states whose unsatisfied atoms mention a BELOW-bound variable
  are dead (facts homed above can never mention the forgotten element) and
  are pruned.
- Profiles are canonicalized by dominance pruning: with equal assignments, a
  state with more satisfied atoms subsumes one with fewer.
"""

from __future__ import annotations

from repro.core.automaton import DecompositionAutomaton, disjunction
from repro.instances.base import Fact
from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries, Variable
from repro.util import check


class _Below:
    """Unique sentinel marking a variable bound to a forgotten element."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BELOW"


BELOW = _Below()


class CQAutomaton(DecompositionAutomaton):
    """Deterministic automaton deciding a Boolean CQ over read facts."""

    def __init__(self, query: ConjunctiveQuery):
        self.query = query
        self.atoms = query.atoms
        self.all_atoms = frozenset(range(len(self.atoms)))

    # -- nondeterministic-state helpers --------------------------------- #

    @staticmethod
    def _initial_nondet():
        return (frozenset(), frozenset())

    def _prune_profile(self, states: set) -> frozenset:
        """Dominance pruning: drop states subsumed by a better sibling.

        ``(a1, s1)`` dominates ``(a2, s2)`` when ``a1 ⊆ a2`` and ``s1 ⊇ s2``:
        fewer binding constraints and more satisfied atoms. Removal is safe —
        domination is preserved by every transition (forget, join, read) and
        by acceptance — and keeps profiles, hence the whole subset
        construction, small.
        """
        # An accepting state dominates everything once its bindings are
        # dropped — acceptance never depends on them — so the profile
        # collapses to a single absorbing ACCEPT state.
        if any(satisfied == self.all_atoms for _a, satisfied in states):
            return frozenset({(frozenset(), self.all_atoms)})
        ordered = sorted(
            set(states),
            key=lambda s: (len(s[0]), -len(s[1]), sorted(map(str, s[0])), sorted(s[1])),
        )
        kept: list[tuple[frozenset, frozenset]] = []
        for assignment, satisfied in ordered:
            dominated = any(
                a1 <= assignment and s1 >= satisfied for a1, s1 in kept
            )
            if not dominated:
                kept.append((assignment, satisfied))
        return frozenset(kept)

    # -- automaton interface --------------------------------------------- #

    def initial_state(self):
        return frozenset({self._initial_nondet()})

    def introduce(self, state, vertex, bag):
        return state  # bindings are created lazily, at reads

    def forget(self, state, vertex, bag):
        updated = set()
        for assignment, satisfied in state:
            moved = frozenset(
                (var, BELOW if value == vertex else value) for var, value in assignment
            )
            below_vars = {var for var, value in moved if value is BELOW}
            dead = any(
                self.atoms[index].variables() & below_vars
                for index in self.all_atoms - satisfied
            )
            if not dead:
                updated.add((moved, satisfied))
        return self._prune_profile(updated)

    def join(self, left, right, bag):
        combined = set()
        for a1, s1 in left:
            m1 = dict(a1)
            for a2, s2 in right:
                merged = dict(m1)
                compatible = True
                for var, value in a2:
                    bound = merged.get(var)
                    if bound is None:
                        merged[var] = value
                    elif bound != value or value is BELOW:
                        # BELOW on both sides refers to different forgotten
                        # elements of disjoint subtrees — incompatible.
                        compatible = False
                        break
                if compatible:
                    combined.add((frozenset(merged.items()), s1 | s2))
        return self._prune_profile(combined)

    def read(self, state, fact: Fact, bag):
        present = set(state)
        queue = list(state)
        while queue:
            assignment, satisfied = queue.pop()
            binding = dict(assignment)
            for index in self.all_atoms - satisfied:
                extended = self._use_fact(self.atoms[index], fact, binding)
                if extended is None:
                    continue
                candidate = (frozenset(extended.items()), satisfied | {index})
                if candidate not in present:
                    present.add(candidate)
                    queue.append(candidate)
        return state, self._prune_profile(present)

    def accepts(self, state) -> bool:
        return any(satisfied == self.all_atoms for _assignment, satisfied in state)

    # -- matching --------------------------------------------------------- #

    @staticmethod
    def _use_fact(query_atom, fact: Fact, binding: dict):
        """Extend ``binding`` so ``query_atom`` maps onto ``fact``, or None."""
        if query_atom.relation != fact.relation or len(query_atom.terms) != len(fact.args):
            return None
        extended = dict(binding)
        for term, value in zip(query_atom.terms, fact.args):
            if isinstance(term, Variable):
                bound = extended.get(term)
                if bound is None:
                    extended[term] = value
                elif bound != value:
                    return None
            elif term != value:
                return None
        return extended


def automaton_for(query) -> DecompositionAutomaton:
    """Build a deterministic automaton for a CQ or UCQ."""
    if isinstance(query, ConjunctiveQuery):
        return CQAutomaton(query)
    if isinstance(query, UnionOfConjunctiveQueries):
        return disjunction(*(CQAutomaton(q) for q in query.disjuncts))
    check(
        isinstance(query, DecompositionAutomaton),
        f"cannot build an automaton for {type(query).__name__}",
    )
    return query
