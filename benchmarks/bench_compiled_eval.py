"""E13 — compiled circuit IR vs object-graph evaluation throughput.

The compile-once/evaluate-many claim, measured: build one ~10k-gate lineage
circuit (the Theorem-1 pipeline on an R–S–T chain TID), then compare

- repeated ``probability_dd``-style evaluation: the seed object-graph
  walker (re-walks the hash-consed DAG with per-gate dicts on every call)
  against :meth:`CompiledCircuit.probability` on the flat IR;
- per-world Boolean evaluation: ``Circuit.evaluate`` with a fresh valuation
  dict per world against the scalar generated kernel and against the
  level-scheduled numpy batch kernels (thousands of worlds per pass);
- batched marginal evaluation: scalar :meth:`CompiledCircuit.probability`
  per row against :meth:`CompiledCircuit.probability_batch`.

Writes ``BENCH_compiled_eval.json`` next to the repository root with the
raw numbers so CI and future sessions can track the speedup. When numpy is
unavailable the batch rows fall back to the scalar kernels and the batch
speedups collapse onto the kernel speedups — the numbers stay honest.

Run the table:  python benchmarks/bench_compiled_eval.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.circuits import compile_circuit
from repro.circuits import compiled as compiled_module
from repro.circuits.compiled import numpy_module
from repro.circuits.dd import _probability_dd_object_graph
from repro.core import build_lineage
from repro.queries import atom, cq, variables
from repro.util import stable_rng
from repro.workloads import rst_chain_tid

CHAIN_LENGTH = 200  # ~13k reachable gates, comfortably past the 10k target
PROBABILITY_REPEATS = 20
OBJECT_WORLD_COUNT = 50  # the object-graph walker is too slow for more
BATCH_WORLD_COUNT = 2000  # the acceptance target is >= 1000 worlds
PROBABILITY_BATCH_ROWS = 200

#: PR 1's measured batch_speedup (generated scalar kernel vs object graph);
#: the numpy kernels must beat it by >= 3x at >= 1000 worlds.
PR1_BATCH_SPEEDUP = 32.8


def build_circuit():
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = rst_chain_tid(CHAIN_LENGTH, seed=0)
    lineage = build_lineage(tid.instance, query)
    return lineage, tid.event_space()


def sample_worlds(n_worlds: int, n_vars: int, seed: int = 0):
    """``n_worlds`` fair-coin worlds, as a numpy matrix when available."""
    np = numpy_module()
    if np is not None:
        return np.random.default_rng(seed).random((n_worlds, n_vars)) < 0.5
    rng = stable_rng(seed)
    return [[rng.random() < 0.5 for _ in range(n_vars)] for _ in range(n_worlds)]


def _best_of(run, per_call_divisor: int, repeats: int):
    """Best per-call wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best / per_call_divisor, result


def scalar_only_batch(compiled, rows):
    """Run evaluate_batch with the numpy kernels masked off (fallback path)."""
    saved = compiled_module._np
    compiled_module._np = None
    try:
        return compiled.evaluate_batch(rows)
    finally:
        compiled_module._np = saved


def main() -> None:
    np = numpy_module()
    print("E13 — compiled circuit IR vs object-graph evaluation")
    lineage, space = build_circuit()
    circuit = lineage.circuit
    gates = len(circuit.reachable_from_output())
    print(f"lineage circuit: {gates} reachable gates,"
          f" {len(circuit.variables())} variables")
    backend = (
        f"numpy {np.__version__} level-scheduled kernels"
        if np is not None
        else "scalar generated kernels (numpy not installed)"
    )
    print(f"batch backend: {backend}")

    start = time.perf_counter()
    compiled = compile_circuit(circuit)
    marginals = compiled.slot_marginals(space)
    compiled.probability(marginals)  # builds the float kernel
    scalar_only_batch(compiled, [[False] * len(compiled.variables())])  # bool kernel
    compiled.evaluate_batch([[False] * len(compiled.variables())])  # batch plan
    compile_seconds = time.perf_counter() - start

    # Repeated probability evaluation (the Theorem-1 hot path).
    start = time.perf_counter()
    for _ in range(PROBABILITY_REPEATS):
        p_object = _probability_dd_object_graph(circuit, space)
    object_seconds = (time.perf_counter() - start) / PROBABILITY_REPEATS
    start = time.perf_counter()
    for _ in range(PROBABILITY_REPEATS):
        p_compiled = compiled.probability(marginals)
    compiled_seconds = (time.perf_counter() - start) / PROBABILITY_REPEATS
    assert abs(p_object - p_compiled) < 1e-9, "paths must agree"
    probability_speedup = object_seconds / compiled_seconds

    # Per-world evaluation: object graph (small sample, it is slow) ...
    names = compiled.variables()
    object_rows = sample_worlds(OBJECT_WORLD_COUNT, len(names), seed=0)
    dict_rows = [dict(zip(names, row)) for row in object_rows]
    start = time.perf_counter()
    object_bits = [circuit.evaluate(row) for row in dict_rows]
    object_world_seconds = (time.perf_counter() - start) / OBJECT_WORLD_COUNT

    # ... vs the scalar generated kernel and the numpy batch kernels, both
    # on the same >= 1000-world batch (best of a few runs, timers are noisy
    # at these durations).
    batch_rows = sample_worlds(BATCH_WORLD_COUNT, len(names), seed=1)
    kernel_world_seconds, kernel_bits = _best_of(
        lambda: scalar_only_batch(compiled, batch_rows), BATCH_WORLD_COUNT, repeats=3
    )
    batch_world_seconds, batch_bits = _best_of(
        lambda: compiled.evaluate_batch(batch_rows), BATCH_WORLD_COUNT, repeats=7
    )
    assert batch_bits == kernel_bits, "batch kernels must agree with scalar"
    assert object_bits == scalar_only_batch(compiled, object_rows), (
        "compiled paths must agree with the object graph"
    )
    kernel_speedup = object_world_seconds / kernel_world_seconds
    batch_speedup = object_world_seconds / batch_world_seconds

    # Batched Theorem-1 probability rows.
    prob_rows = [list(marginals) for _ in range(PROBABILITY_BATCH_ROWS)]
    scalar_prob_row_seconds, scalar_probs = _best_of(
        lambda: [compiled.probability(row) for row in prob_rows],
        PROBABILITY_BATCH_ROWS,
        repeats=3,
    )
    batch_prob_row_seconds, batch_probs = _best_of(
        lambda: compiled.probability_batch(prob_rows), PROBABILITY_BATCH_ROWS, repeats=5
    )
    assert all(abs(a - b) < 1e-9 for a, b in zip(scalar_probs, batch_probs))
    probability_batch_speedup = scalar_prob_row_seconds / batch_prob_row_seconds

    print(f"\none-time compile + kernel build: {compile_seconds * 1e3:.1f} ms")
    print(f"{'path':<38} {'per call':>12} {'speedup':>9}")
    rows = [
        ("probability, object graph", object_seconds, 1.0),
        ("probability, compiled IR", compiled_seconds, probability_speedup),
        ("world eval, object graph", object_world_seconds, 1.0),
        ("world eval, scalar kernel", kernel_world_seconds, kernel_speedup),
        ("world eval, numpy batch", batch_world_seconds, batch_speedup),
        ("probability rows, scalar", scalar_prob_row_seconds, 1.0),
        ("probability rows, batched", batch_prob_row_seconds, probability_batch_speedup),
    ]
    for label, seconds, speedup in rows:
        print(f"{label:<38} {seconds * 1e3:>9.3f} ms {speedup:>8.1f}x")

    result = {
        "gates": gates,
        "variables": len(names),
        "numpy": np is not None,
        "probability_repeats": PROBABILITY_REPEATS,
        "world_count": OBJECT_WORLD_COUNT,
        "batch_world_count": BATCH_WORLD_COUNT,
        "compile_seconds": compile_seconds,
        "object_probability_seconds": object_seconds,
        "compiled_probability_seconds": compiled_seconds,
        "probability_speedup": probability_speedup,
        "object_world_seconds": object_world_seconds,
        "kernel_world_seconds": kernel_world_seconds,
        "kernel_batch_speedup": kernel_speedup,
        "compiled_world_seconds": batch_world_seconds,
        "batch_speedup": batch_speedup,
        "probability_batch_rows": PROBABILITY_BATCH_ROWS,
        "scalar_probability_row_seconds": scalar_prob_row_seconds,
        "batched_probability_row_seconds": batch_prob_row_seconds,
        "probability_batch_speedup": probability_batch_speedup,
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_compiled_eval.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    verdict = "PASS" if probability_speedup >= 5.0 else "FAIL"
    print(f"target: >= 5x on repeated probability evaluation — {verdict}"
          f" ({probability_speedup:.1f}x)")
    if np is not None:
        target = 3.0 * PR1_BATCH_SPEEDUP
        verdict = "PASS" if batch_speedup >= target else "FAIL"
        print(f"target: >= {target:.0f}x batch eval at >= 1000 worlds "
              f"(3x the PR 1 kernel speedup of {PR1_BATCH_SPEEDUP}x) — "
              f"{verdict} ({batch_speedup:.1f}x)")
    else:
        print("numpy unavailable: batch rows measured on the scalar fallback")


if __name__ == "__main__":
    main()
