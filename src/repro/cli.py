"""Command-line interface: regenerate any experiment table from the terminal.

Usage::

    python -m repro list                # list experiments E1..E20
    python -m repro run E3              # print Theorem 1's scaling table
    python -m repro run E3 --engine shannon   # force one engine everywhere
    python -m repro run E14 --workers 4 # sharded evaluation on 4 processes
    python -m repro run all             # print every table (long)
    python -m repro engines             # engines + batch/parallel backends
    python -m repro cqa                 # certain answers on key-violating data
    python -m repro cqa --rate 0.5 --query conp --method circuit
    python -m repro cache               # inspect the persistent plan cache
    python -m repro cache --clear       # empty the persistent plan cache
    python -m repro paper               # one-line paper identification
    python -m repro serve --port 7761   # become a distributed shard worker
    python -m repro serve --port 7761 --secret swordfish   # require auth
    python -m repro dist-eval --hosts 127.0.0.1:7761,127.0.0.1:7762
    python -m repro serve-http --port 8080   # always-on query service
    python -m repro serve-http --port 8080 --hosts 127.0.0.1:7761   # + shards

``--workers`` scopes the process-wide ``parallel_workers`` knob (see
:mod:`repro.circuits.parallel`) to the run, exactly like ``--engine``
scopes the forced engine; ``--workers 0`` forces the single-process
kernels even when ``REPRO_PARALLEL_WORKERS`` is set. ``--hosts`` scopes
the ``distributed_hosts`` knob the same way, routing big batches and both
sampling baselines over TCP to ``repro serve`` workers
(:mod:`repro.circuits.distributed`). The ``repro-worker`` console script
is the same CLI with ``serve`` as its natural home: start N of those, hand
their ``host:port`` list to one coordinating process, and a single
Monte-Carlo or batch-probability run fans out across all of them with
bit-identical results.

The experiment implementations live in ``benchmarks/bench_*.py``; each has a
``main()`` printing its table. This CLI locates them relative to the
repository root (they are scripts, not package modules, so installed-package
use without the repository falls back to a clear error).
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from contextlib import nullcontext
from pathlib import Path

EXPERIMENTS = {
    "E1": ("bench_figure1_prxml", "Figure 1: the Chelsea Manning PrXML document"),
    "E2": ("bench_table1_cinstance", "Table 1: the PODS/STOC trips c-instance"),
    "E3": ("bench_theorem1_scaling", "Theorem 1: linear time at bounded treewidth"),
    "E4": ("bench_theorem2_pcc", "Theorem 2: bounded-treewidth pcc-instances"),
    "E5": ("bench_scope_prxml", "Bounded event scopes on PrXML"),
    "E6": ("bench_dichotomy", "#P-hardness contrast vs Dalvi–Suciu safe plans"),
    "E7": ("bench_provenance", "Semiring provenance through circuits"),
    "E8": ("bench_order", "Order uncertainty: tractable vs hard"),
    "E9": ("bench_conditioning", "Conditioning and crowd question selection"),
    "E10": ("bench_rules", "Probabilistic rules: the probabilistic chase"),
    "E11": ("bench_ablation_heuristics", "Decomposition-heuristic ablation"),
    "E12": ("bench_hybrid", "Partial decompositions: exact tentacles + sampled core"),
    "E13": ("bench_compiled_eval", "Compiled circuit IR vs object-graph evaluation"),
    "E14": ("bench_parallel_eval", "Sharded multi-process vs single-process batch eval"),
    "E15": ("bench_distributed_eval", "Distributed shard execution over localhost workers"),
    "E17": ("bench_compile_path", "Compile path: vectorized lowering, delta recompile, plan cache"),
    "E18": ("bench_columnar_pipeline", "Columnar pipeline: generate/query/provenance/compile at scale"),
    "E19": ("bench_service", "Query service: coalesced vs uncoalesced QPS and tail latency"),
    "E20": ("bench_cqa", "Certain answers: trichotomy routing vs repairs oracle vs circuits"),
}


def _benchmarks_dir() -> Path:
    candidates = [
        Path(__file__).resolve().parents[2] / "benchmarks",
        Path.cwd() / "benchmarks",
    ]
    for candidate in candidates:
        if candidate.is_dir():
            return candidate
    raise SystemExit(
        "cannot locate the benchmarks/ directory; run from the repository root"
    )


def _load_main(module_name: str):
    path = _benchmarks_dir() / f"{module_name}.py"
    if not path.exists():
        raise SystemExit(f"experiment script missing: {path}")
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module.main


def command_list() -> None:
    """Print the experiment index."""
    print(f"{'id':<5} {'script':<28} description")
    for exp_id, (module_name, description) in EXPERIMENTS.items():
        print(f"{exp_id:<5} {module_name:<28} {description}")


def command_run(
    target: str,
    engine: str | None = None,
    workers: int | None = None,
    hosts: str | None = None,
) -> None:
    """Run one experiment (or 'all'), optionally forcing an engine or backend.

    The forced engine is scoped to the run with
    :func:`repro.circuits.engine_forced`, the worker count with
    :func:`repro.circuits.parallel_workers_set`, and the distributed host
    list with :func:`repro.circuits.distributed_hosts_set`, so embedding
    callers (tests, the REPL) cannot leak any override into later
    evaluations.
    """
    from repro.circuits import (
        available_engines,
        distributed_hosts_set,
        engine_forced,
        parallel_workers_set,
    )
    from repro.util import ReproError

    if engine is not None and engine not in available_engines():
        raise SystemExit(
            f"unknown engine {engine!r}; available: "
            f"{', '.join(available_engines())}"
        )
    if workers is not None and workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {workers}")
    if hosts is not None:
        from repro.circuits.distributed import _parse_hostport

        try:
            for spec in hosts.replace(";", ",").split(","):
                if spec.strip():
                    _parse_hostport(spec)
        except ReproError as exc:
            raise SystemExit(f"--hosts: {exc}") from None
    targets = list(EXPERIMENTS) if target.lower() == "all" else [target.upper()]
    for exp_id in targets:
        if exp_id not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {exp_id!r}; use 'list' to see E1..E18"
            )
    with engine_forced(engine) if engine is not None else nullcontext():
        with parallel_workers_set(workers) if workers is not None else nullcontext():
            with distributed_hosts_set(hosts) if hosts is not None else nullcontext():
                for exp_id in targets:
                    module_name, _description = EXPERIMENTS[exp_id]
                    print()
                    _load_main(module_name)()
                    print()


def command_engines() -> None:
    """Print the engine registry and the batch/parallel backends in use."""
    from repro.circuits import available_engines, capabilities, default_engine
    from repro.circuits.compiled import numpy_module

    print(f"{'engine':<18} role")
    roles = {
        "enumerate": "brute-force oracle (capped variable count)",
        "shannon": "Shannon expansion baseline",
        "message_passing": "junction-tree sum-product (Theorems 1-2)",
        "dd": "linear-time deterministic-decomposable pass",
    }
    for name in available_engines():
        marker = " (default)" if name == default_engine() else ""
        print(f"{name:<18} {roles.get(name, 'custom engine')}{marker}")
    np = numpy_module()
    if np is not None:
        backend = f"numpy {np.__version__} level-scheduled kernels"
    else:
        backend = "scalar generated kernels (numpy not installed)"
    print(f"\nbatch evaluation backend: {backend}")
    caps = capabilities()
    if caps["parallel"]:
        workers = caps["parallel_workers"]
        state = f"{workers} workers" if workers >= 2 else "off (workers=0/1)"
        print(
            f"sharded multi-process backend: available — {state}, "
            f"{caps['cpu_count']} CPU(s); set REPRO_PARALLEL_WORKERS or --workers"
        )
    else:
        print("sharded multi-process backend: unavailable (needs numpy + shared memory)")
    hosts = caps["distributed_hosts"]
    auth = " (auth armed)" if caps["distributed_auth"] else ""
    if hosts:
        print(f"distributed backend: routing to {len(hosts)} host(s): "
              + ", ".join(hosts) + auth)
    else:
        print("distributed backend: off (no hosts; set REPRO_DISTRIBUTED_HOSTS "
              "or --hosts, start workers with 'repro serve')" + auth)
    pool = caps["distributed_pool"]
    print("persistent host pool: "
          f"{len(pool['open_connections'])} open connection(s), "
          f"{pool['calls']} coordinated call(s), "
          f"{pool['plans_published']} plan(s) published, "
          f"{pool['plan_cache_hits'] + pool['publishes_skipped']} digest hit(s), "
          f"{pool['steals']} steal(s)")
    cache_dir = caps["plan_cache_dir"]
    if cache_dir:
        print(f"plan cache: on at {cache_dir}, "
              f"limit {caps['plan_cache_limit_bytes']} bytes, "
              f"min {caps['plan_cache_min_gates']} gates "
              "('repro cache' for contents, 'repro cache --clear' to empty)")
    else:
        print("plan cache: off (set REPRO_PLAN_CACHE_DIR to persist "
              "compiled plans across runs)")
    print(f"instance backend: {caps['instance_backend']} "
          "(REPRO_INSTANCE_BACKEND=object|columnar)")
    cqa = caps["cqa"]
    routed = ", ".join(f"{name}={cqa[name]}" for name in caps["cqa_classes"])
    print(f"certain-answer engine: classes {'/'.join(caps['cqa_classes'])}; "
          f"routed this process: {routed} "
          f"(pair solver {cqa['pair_solver']}, "
          f"circuit fallbacks {cqa['circuit_fallbacks']})")


def command_cqa(
    n_keys: int = 12,
    rate: float = 0.4,
    seed: int = 3,
    query: str = "all",
    method: str = "auto",
    backend: str | None = None,
) -> None:
    """Run the certain-answer engine on a generated key-violating instance."""
    from repro.cqa import (
        certain_answers,
        certain_oracle,
        classify,
        cqa_stats,
        fo_rewriting,
        repair_count,
        reset_cqa_stats,
    )
    from repro.cqa.attacks import FO
    from repro.cqa.engine import METHODS
    from repro.util import ReproError
    from repro.workloads import cqa_trichotomy_queries, key_violation_instance

    queries = cqa_trichotomy_queries()
    if method not in METHODS:
        raise SystemExit(
            f"unknown method {method!r}; available: {', '.join(METHODS)}"
        )
    if query != "all" and query not in queries:
        raise SystemExit(
            f"unknown query {query!r}; available: all, {', '.join(queries)}"
        )
    try:
        instance, keys = key_violation_instance(
            n_keys, violation_rate=rate, seed=seed, backend=backend
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from None
    selected = queries if query == "all" else {query: queries[query]}
    relations = sorted({a.relation for q in selected.values() for a in q.atoms})
    count = repair_count(instance, keys, relations)
    print(f"instance: {len(instance)} facts, seed={seed}, "
          f"violation rate {rate}, {count} repair(s)")
    reset_cqa_stats()
    for name, q in selected.items():
        classification = classify(q, keys)
        print(f"\n{name}: {q}")
        print(f"  {classification.describe(q)}")
        if classification.trichotomy == FO:
            print(f"  rewriting: {fo_rewriting(q, keys).formula}")
        answer = certain_answers(q, instance, keys, method=method)
        print(f"  certain ({method}): {answer}")
        if count <= 200_000:
            oracle = certain_oracle(q, instance, keys)
            agree = "agrees" if oracle == answer else "DISAGREES"
            print(f"  all-repairs oracle: {oracle} ({agree})")
    stats = cqa_stats()
    print("\nrouting: " + ", ".join(f"{k}={v}" for k, v in stats.items() if v))


def command_cache(clear: bool = False) -> None:
    """Print the persistent plan cache's contents, or empty it."""
    from repro.circuits import plancache

    directory = plancache.plan_cache_dir()
    if directory is None:
        print("plan cache: off (set REPRO_PLAN_CACHE_DIR to enable)")
        return
    if clear:
        removed = plancache.clear()
        print(f"plan cache: removed {removed} entries from {directory}")
        return
    entries = plancache.entries()
    total = sum(size for _, size, _ in entries)
    limit = plancache.plan_cache_limit_bytes()
    print(f"plan cache: {directory}")
    print(f"{len(entries)} entries, {total} bytes "
          f"(limit {limit}; REPRO_PLAN_CACHE_LIMIT_BYTES)")
    for name, size, _ in entries:
        kind = "lowering" if name.endswith(plancache.CIRC_SUFFIX) else "wire plan"
        print(f"  {name:<42} {size:>10} bytes  {kind}")


def command_paper() -> None:
    """Print the paper this repository reproduces."""
    print(
        "Amarilli, A. Structurally Tractable Uncertain Data. "
        "SIGMOD 2015 PhD Symposium. arXiv:1507.04955"
    )


def command_serve(
    host: str = "127.0.0.1", port: int = 0, max_tasks: int | None = None,
    secret: str | None = None, delay: float = 0.0,
    tls_cert: str | None = None, tls_key: str | None = None,
    tls_ca: str | None = None, register: str | None = None,
    advertise: str | None = None,
) -> None:
    """Run a distributed shard worker until interrupted.

    Listens on ``host:port`` (port 0 picks an ephemeral one), prints a
    single ``repro-worker listening on host:port`` readiness line, and then
    serves shard tasks from any coordinator that connects (see
    :mod:`repro.circuits.distributed`). ``--secret`` (default: the
    ``REPRO_DISTRIBUTED_SECRET`` environment variable) arms shared-secret
    authentication: every connection must answer the worker's HMAC
    challenge or is refused. ``--tls-cert``/``--tls-key`` (defaults:
    ``REPRO_DISTRIBUTED_TLS_CERT``/``_KEY``) wrap the listener in TLS, and
    ``--tls-ca`` (``REPRO_DISTRIBUTED_TLS_CA``) additionally demands a
    verified client certificate — mutual TLS. ``--register host:port``
    dials a coordinator's registry so this worker joins its host list
    elastically, advertising ``--advertise`` (default: its own bound
    address). ``--max-tasks`` is the fault-injection hook used by the test
    suite and resilience drills: the process dies abruptly when asked to
    run one task more. ``--delay`` makes the worker artificially slow (the
    work-stealing drill hook).
    """
    import asyncio
    import os

    from repro.circuits.distributed import WorkerServer

    if secret is None:
        secret = os.environ.get("REPRO_DISTRIBUTED_SECRET") or None
    if tls_cert is None:
        tls_cert = os.environ.get("REPRO_DISTRIBUTED_TLS_CERT") or None
    if tls_key is None:
        tls_key = os.environ.get("REPRO_DISTRIBUTED_TLS_KEY") or None
    if tls_ca is None:
        tls_ca = os.environ.get("REPRO_DISTRIBUTED_TLS_CA") or None

    async def _serve() -> None:
        server = WorkerServer(
            host=host, port=port, max_tasks=max_tasks, secret=secret,
            delay=delay, tls_cert=tls_cert, tls_key=tls_key, tls_ca=tls_ca,
            register=register, advertise=advertise,
        )
        await server.start()
        auth_note = " (auth required)" if secret else ""
        if tls_cert:
            auth_note += " (mtls)" if tls_ca else " (tls)"
        print(
            f"repro-worker listening on {server.host}:{server.port}{auth_note}",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass


def command_serve_http(
    host: str = "127.0.0.1", port: int = 0, no_coalesce: bool = False,
    coalesce_ms: float | None = None, cache_size: int | None = None,
    cache_ttl: float | None = None, hosts: str | None = None,
    secret: str | None = None, tls_cert: str | None = None,
    tls_key: str | None = None, tls_ca: str | None = None,
    registry_bind: str | None = None,
) -> None:
    """Run the always-on HTTP query service until interrupted.

    The process keeps the compile cache, the persistent plan cache and the
    distributed :class:`~repro.circuits.distributed.HostPool` resident, so
    every request after the first skips lowering, connection setup and the
    plan handshake (see :mod:`repro.service`). Prints a single
    ``repro-service listening on host:port`` readiness line. ``--hosts``
    installs a distributed worker list for the process (big batches fan
    out exactly as with ``dist-eval``); ``--no-coalesce`` disables request
    coalescing (the benchmark baseline); ``--coalesce-ms``,
    ``--cache-size`` and ``--cache-ttl`` override the corresponding
    ``REPRO_SERVICE_*`` environment knobs.
    """
    from repro.circuits import distributed
    from repro.service import serve_http

    if hosts is not None:
        distributed.set_distributed_hosts(hosts)
    if secret is not None:
        distributed.set_distributed_secret(secret)
    if tls_cert or tls_ca:
        distributed.set_distributed_tls(tls_cert, tls_key, tls_ca)
    if registry_bind is not None:
        reg_host, reg_port = distributed._parse_hostport(registry_bind)
        bound = distributed.start_registry(reg_host, reg_port)
        print(f"repro-service worker registry on {bound}", flush=True)
    kwargs: dict = {"coalesce": not no_coalesce}
    if coalesce_ms is not None:
        kwargs["coalesce_window"] = coalesce_ms / 1e3
    if cache_size is not None:
        kwargs["cache_size"] = cache_size
    if cache_ttl is not None:
        kwargs["cache_ttl"] = cache_ttl
    serve_http(host=host, port=port, **kwargs)


def command_dist_eval(
    hosts: str | None = None, samples: int = 100_000, seed: int = 0,
    secret: str | None = None,
) -> None:
    """Two distributed Monte-Carlo runs, checked against the local estimate.

    The smallest end-to-end proof of the stage-5 pipeline: build the R–S–T
    chain lineage, serialize the plan, fan the sample shards out to
    ``--hosts``, and assert the merged estimate is bit-identical to the
    in-process one. The run repeats once over the **persistent host pool**
    — the second call reuses the authenticated connections and skips the
    plan transfer (the digest handshake), so its wall time shows the
    amortized steady state — and finishes with the pool's counters. With
    no hosts the run stays local and says so.
    """
    import time

    from repro.circuits import compile_circuit
    from repro.circuits import distributed, parallel
    from repro.circuits.compiled import numpy_module
    from repro.core import build_lineage
    from repro.queries import atom, cq, variables
    from repro.util import ReproError
    from repro.workloads import rst_chain_tid

    if numpy_module() is None:
        raise SystemExit("dist-eval needs numpy (the batch kernels) on this host")
    host_list = distributed.effective_hosts(hosts)
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = rst_chain_tid(60, probability=0.15, seed=0)
    compiled = compile_circuit(build_lineage(tid.instance, query).circuit)
    space = tid.event_space()
    marginals = [space.probability(n) for n in compiled.variables()]
    plan_bytes = compiled.wire_bytes()
    print(f"lineage circuit: {compiled.size} gates, "
          f"{len(compiled.variables())} variables; wire plan {len(plan_bytes)} "
          f"bytes, digest {compiled.plan_digest()}")
    local_hits = parallel.monte_carlo_hits(compiled, marginals, samples, seed=seed)
    print(f"in-process estimate:  {local_hits / samples:.6f} "
          f"({local_hits}/{samples} hits)")
    if not host_list:
        print("no --hosts given (and REPRO_DISTRIBUTED_HOSTS unset) — "
              "start workers with 'repro serve' to distribute this run")
        return
    with distributed.distributed_secret_set(
        secret
    ) if secret is not None else nullcontext():
        timings = []
        for attempt in ("first (connect + publish)", "repeat (pool reuse)"):
            start = time.perf_counter()
            try:
                remote_hits = distributed.monte_carlo_hits(
                    compiled, marginals, samples, seed=seed, hosts=host_list
                )
            except ReproError as exc:
                raise SystemExit(f"distributed run failed: {exc}") from None
            timings.append(time.perf_counter() - start)
            print(f"distributed estimate, {attempt}: "
                  f"{remote_hits / samples:.6f} across {len(host_list)} host(s) "
                  f"in {timings[-1] * 1e3:.1f} ms")
            if remote_hits != local_hits:
                raise SystemExit("distributed estimate diverged from the local one")
    if timings[1] > 0:
        print(f"repeat-call amortization: {timings[0] / timings[1]:.2f}x "
              "(plan publish + connect eliminated)")
    stats = distributed.pool_stats()
    print("pool stats: "
          f"{len(stats['open_connections'])} open connection(s), "
          f"{stats['connects']} connect(s) ({stats['reconnects']} reconnect(s)), "
          f"{stats['plans_published']} plan(s) published, "
          f"{stats['plan_cache_hits'] + stats['publishes_skipped']} digest hit(s), "
          f"{stats['tasks_completed']} shard(s) completed, "
          f"{stats['steals']} steal(s)")
    print("bit-identical with the in-process estimate — determinism verified")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Structurally Tractable Uncertain Data — reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    run = sub.add_parser("run", help="run an experiment table")
    run.add_argument("experiment", help="experiment id (E1..E18) or 'all'")
    run.add_argument(
        "--engine",
        default=None,
        help="force one circuit-evaluation engine for the whole run "
        "(enumerate, shannon, message_passing, dd)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard batch evaluation across this many worker processes for "
        "the run (0 forces single-process; default: REPRO_PARALLEL_WORKERS)",
    )
    run.add_argument(
        "--hosts",
        default=None,
        help="route big batches and sampling to these 'host:port,host:port' "
        "distributed workers for the run (default: REPRO_DISTRIBUTED_HOSTS)",
    )
    sub.add_parser("engines", help="show evaluation engines and batch backend")
    cqa = sub.add_parser(
        "cqa", help="certain answers on a generated key-violating instance"
    )
    cqa.add_argument(
        "--keys", type=int, default=12, dest="n_keys",
        help="number of key blocks per relation (default 12)",
    )
    cqa.add_argument(
        "--rate", type=float, default=0.4,
        help="fraction of blocks violating their key (default 0.4)",
    )
    cqa.add_argument("--seed", type=int, default=3, help="generator seed")
    cqa.add_argument(
        "--query", default="all", choices=["all", "fo", "ptime", "conp"],
        help="which canonical trichotomy query to answer (default all)",
    )
    cqa.add_argument(
        "--method", default="auto", choices=["auto", "rewrite", "circuit", "oracle"],
        help="force one answering method instead of trichotomy routing",
    )
    cqa.add_argument(
        "--backend", default=None, choices=["object", "columnar"],
        help="instance backend (default: REPRO_INSTANCE_BACKEND)",
    )
    cache = sub.add_parser("cache", help="inspect or clear the persistent plan cache")
    cache.add_argument(
        "--clear", action="store_true", help="delete every cached plan entry"
    )
    sub.add_parser("paper", help="identify the reproduced paper")
    _add_worker_parsers(sub)
    args = parser.parse_args(argv)
    if args.command == "list":
        command_list()
    elif args.command == "run":
        command_run(
            args.experiment, engine=args.engine, workers=args.workers,
            hosts=args.hosts,
        )
    elif args.command == "engines":
        command_engines()
    elif args.command == "cqa":
        command_cqa(
            n_keys=args.n_keys, rate=args.rate, seed=args.seed,
            query=args.query, method=args.method, backend=args.backend,
        )
    elif args.command == "cache":
        command_cache(clear=args.clear)
    elif args.command == "paper":
        command_paper()
    elif args.command == "serve":
        command_serve(
            host=args.host, port=args.port, max_tasks=args.max_tasks,
            secret=args.secret, delay=args.delay, tls_cert=args.tls_cert,
            tls_key=args.tls_key, tls_ca=args.tls_ca, register=args.register,
            advertise=args.advertise,
        )
    elif args.command == "dist-eval":
        command_dist_eval(
            hosts=args.hosts, samples=args.samples, seed=args.seed,
            secret=args.secret,
        )
    elif args.command == "serve-http":
        command_serve_http(
            host=args.host, port=args.port, no_coalesce=args.no_coalesce,
            coalesce_ms=args.coalesce_ms, cache_size=args.cache_size,
            cache_ttl=args.cache_ttl, hosts=args.hosts, secret=args.secret,
            tls_cert=args.tls_cert, tls_key=args.tls_key, tls_ca=args.tls_ca,
            registry_bind=args.registry_bind,
        )
    return 0


def _add_worker_parsers(sub) -> None:
    """The ``serve`` / ``dist-eval`` subcommands, shared with ``repro-worker``."""
    serve = sub.add_parser("serve", help="run a distributed shard worker")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (0 = ephemeral, printed on startup)",
    )
    serve.add_argument(
        "--secret", default=None,
        help="require coordinators to answer an HMAC challenge with this "
        "shared secret (default: REPRO_DISTRIBUTED_SECRET)",
    )
    serve.add_argument(
        "--max-tasks", type=int, default=None,
        help="fault-injection hook: crash when asked to run one more task",
    )
    serve.add_argument(
        "--delay", type=float, default=0.0,
        help="drill hook: sleep this many seconds before each task "
        "(simulates a slow host for work-stealing drills)",
    )
    serve.add_argument(
        "--tls-cert", default=None,
        help="serve TLS with this certificate chain "
        "(default: REPRO_DISTRIBUTED_TLS_CERT)",
    )
    serve.add_argument(
        "--tls-key", default=None,
        help="private key for --tls-cert (default: REPRO_DISTRIBUTED_TLS_KEY)",
    )
    serve.add_argument(
        "--tls-ca", default=None,
        help="demand client certificates verified against this CA bundle — "
        "mutual TLS (default: REPRO_DISTRIBUTED_TLS_CA)",
    )
    serve.add_argument(
        "--register", default=None,
        help="dial this coordinator registry ('host:port') and join its "
        "host list elastically",
    )
    serve.add_argument(
        "--advertise", default=None,
        help="address to register as (default: the bound host:port)",
    )
    dist = sub.add_parser(
        "dist-eval", help="run a checked distributed Monte-Carlo evaluation"
    )
    dist.add_argument(
        "--hosts", default=None,
        help="'host:port,host:port' worker list "
        "(default: REPRO_DISTRIBUTED_HOSTS)",
    )
    dist.add_argument(
        "--secret", default=None,
        help="shared secret for authenticated workers "
        "(default: REPRO_DISTRIBUTED_SECRET)",
    )
    dist.add_argument("--samples", type=int, default=100_000)
    dist.add_argument("--seed", type=int, default=0)
    http = sub.add_parser(
        "serve-http", help="run the always-on HTTP query service"
    )
    http.add_argument("--host", default="127.0.0.1", help="interface to bind")
    http.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (0 = ephemeral, printed on startup)",
    )
    http.add_argument(
        "--no-coalesce", action="store_true",
        help="disable request coalescing (every request runs its own pass)",
    )
    http.add_argument(
        "--coalesce-ms", type=float, default=None,
        help="coalescing window in milliseconds "
        "(default: REPRO_SERVICE_COALESCE_MS or 2.0)",
    )
    http.add_argument(
        "--cache-size", type=int, default=None,
        help="result-cache capacity in rows "
        "(default: REPRO_SERVICE_CACHE_SIZE or 4096)",
    )
    http.add_argument(
        "--cache-ttl", type=float, default=None,
        help="result-cache TTL in seconds "
        "(default: REPRO_SERVICE_CACHE_TTL; unset = no expiry)",
    )
    http.add_argument(
        "--hosts", default=None,
        help="route big passes to these 'host:port,host:port' distributed "
        "workers (default: REPRO_DISTRIBUTED_HOSTS)",
    )
    http.add_argument(
        "--secret", default=None,
        help="shared secret for authenticated workers "
        "(default: REPRO_DISTRIBUTED_SECRET)",
    )
    http.add_argument(
        "--tls-cert", default=None,
        help="client certificate presented to mTLS workers "
        "(default: REPRO_DISTRIBUTED_TLS_CERT)",
    )
    http.add_argument(
        "--tls-key", default=None,
        help="private key for --tls-cert (default: REPRO_DISTRIBUTED_TLS_KEY)",
    )
    http.add_argument(
        "--tls-ca", default=None,
        help="CA bundle distributed workers are verified against "
        "(default: REPRO_DISTRIBUTED_TLS_CA)",
    )
    http.add_argument(
        "--registry-bind", default=None,
        help="accept elastic worker registrations on this 'host:port' "
        "(default: REPRO_DISTRIBUTED_REGISTRY_BIND)",
    )


def worker_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-worker`` console script.

    The same parser as ``python -m repro`` restricted to the distributed
    subcommands, so a worker box needs exactly one command:
    ``repro-worker serve --port 7761``. One process coordinates (any
    evaluation call with ``hosts=`` set, or ``repro-worker dist-eval``) and
    N serve.
    """
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Distributed shard worker for the circuit pipeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_worker_parsers(sub)
    args = parser.parse_args(argv)
    if args.command == "serve":
        command_serve(
            host=args.host, port=args.port, max_tasks=args.max_tasks,
            secret=args.secret, delay=args.delay, tls_cert=args.tls_cert,
            tls_key=args.tls_key, tls_ca=args.tls_ca, register=args.register,
            advertise=args.advertise,
        )
    elif args.command == "serve-http":
        command_serve_http(
            host=args.host, port=args.port, no_coalesce=args.no_coalesce,
            coalesce_ms=args.coalesce_ms, cache_size=args.cache_size,
            cache_ttl=args.cache_ttl, hosts=args.hosts, secret=args.secret,
            tls_cert=args.tls_cert, tls_key=args.tls_key, tls_ca=args.tls_ca,
            registry_bind=args.registry_bind,
        )
    else:
        command_dist_eval(
            hosts=args.hosts, samples=args.samples, seed=args.seed,
            secret=args.secret,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
