"""Event scopes: the paper's sufficient condition for tractable cie documents.

The scope of an event is "the set of nodes where the value of this event must
be remembered when trying to evaluate a query on the tree" ([7]). During a
bottom-up/left-to-right evaluation, an event must be remembered from its
first use to its last use; we therefore define the scope of ``e`` as the
contiguous *pre-order span* of nodes from the first to the last node of any
cie-child guarded by ``e`` (each guarded subtree included).

On the paper's Figure 1, the two eJane-guarded subtrees are adjacent
siblings, so the scope is exactly "the nodes 'surname' and 'place of birth'
and their descendants" — matching the paper's description. An event guarding
subtrees far apart must be remembered across everything in between, which is
what makes crossing/grid-correlated documents intractable.

The *scope width* of a document is the largest number of events any single
node is in scope of; bounded scope width keeps the lineage circuit's
treewidth bounded (experiment E5 measures this operationally).
"""

from __future__ import annotations

from repro.prxml.model import CIE, PrXMLDocument


def _preorder_spans(doc: PrXMLDocument) -> tuple[dict[int, tuple[int, int]], dict[int, int]]:
    """Pre-order index of each node and the index span of its subtree."""
    index_of: dict[int, int] = {}
    span_of: dict[int, tuple[int, int]] = {}

    counter = [0]

    def visit(node) -> tuple[int, int]:
        start = counter[0]
        index_of[id(node)] = start
        counter[0] += 1
        end = start
        for child in node.children:
            _s, child_end = visit(child)
            end = child_end
        span_of[id(node)] = (start, end)
        return start, end

    visit(doc.root)
    return span_of, index_of


def event_scopes(doc: PrXMLDocument) -> dict[str, set[int]]:
    """Map each event to the pre-order indices of the nodes in its scope."""
    span_of, _index_of = _preorder_spans(doc)
    use_spans: dict[str, list[tuple[int, int]]] = {}
    for node in doc.nodes():
        if node.kind != CIE:
            continue
        for child in node.children:
            for event, _positive in child.conditions:
                use_spans.setdefault(event, []).append(span_of[id(child)])
    scopes: dict[str, set[int]] = {e: set() for e in doc.space.events()}
    for event, spans in use_spans.items():
        low = min(s for s, _e in spans)
        high = max(e for _s, e in spans)
        scopes.setdefault(event, set()).update(range(low, high + 1))
    return scopes


def node_scopes(doc: PrXMLDocument) -> dict[int, set[str]]:
    """Map each node (pre-order index) to the set of events scoping it."""
    result: dict[int, set[str]] = {i: set() for i in range(len(doc.nodes()))}
    for event, members in event_scopes(doc).items():
        for index in members:
            result.setdefault(index, set()).add(event)
    return result


def scope_width(doc: PrXMLDocument) -> int:
    """The largest number of events any node is in scope of."""
    widths = node_scopes(doc)
    return max((len(events) for events in widths.values()), default=0)


def events_used(doc: PrXMLDocument) -> set[str]:
    """Events actually referenced by some cie condition."""
    used: set[str] = set()
    for node in doc.nodes():
        if node.kind == CIE:
            for child in node.children:
                used.update(e for e, _positive in child.conditions)
    return used
