"""Semiring provenance through lineage circuits.

The paper's provenance connection, executable: the monotone lineage circuit
of a conjunctive query, evaluated in different absorptive semirings, yields
the query's Green–Karvounarakis–Tannen provenance — minimal witnesses
(PosBool), cheapest derivation (tropical), most probable derivation
(Viterbi), and required clearance (security).

The same lineage circuit is also the *probability* carrier: the closing
section reuses the Viterbi confidences as fact probabilities and pushes
Monte-Carlo world samples through the compiled circuit — in bulk, with the
sharded multi-process backend's worker-count knob and deterministic
per-shard seeding (gracefully skipped on single-core machines; see
``ARCHITECTURE.md`` for the pipeline).

Run:  python examples/provenance_tour.py
"""

from repro.instances import Instance, TIDInstance, fact
from repro.queries import atom, cq, variables
from repro.semirings import (
    PUBLIC,
    SECRET,
    TOP_SECRET,
    PosBoolSemiring,
    SecuritySemiring,
    TropicalSemiring,
    ViterbiSemiring,
    circuit_provenance,
    reference_provenance,
)

X, Y = variables("x", "y")
QUERY = cq(atom("R", X), atom("S", X, Y), atom("T", Y))


def build_instance() -> Instance:
    inst = Instance()
    inst.add(fact("R", "a"))
    inst.add(fact("S", "a", "b"))
    inst.add(fact("T", "b"))
    inst.add(fact("R", "c"))
    inst.add(fact("S", "c", "b"))
    return inst


def main() -> None:
    inst = build_instance()
    print("instance:", ", ".join(str(f) for f in inst.facts()))
    print("query:   ", QUERY)
    print()

    posbool = PosBoolSemiring()
    tokens = {f: posbool.variable(f.variable_name) for f in inst.facts()}
    witnesses = circuit_provenance(QUERY, inst, posbool, tokens)
    print("PosBool provenance (minimal witnesses):")
    for monomial in sorted(witnesses, key=sorted):
        print("  {" + ", ".join(sorted(monomial)) + "}")

    tropical = TropicalSemiring()
    costs = {f: float(i + 1) for i, f in enumerate(inst.facts())}
    cheapest = circuit_provenance(QUERY, inst, tropical, costs)
    print(f"\nTropical provenance (cheapest derivation cost): {cheapest}")
    print("  fact costs:", {str(f): c for f, c in costs.items()})

    viterbi = ViterbiSemiring()
    confidences = {f: 0.9 if "a" in map(str, f.args) else 0.5 for f in inst.facts()}
    best = circuit_provenance(QUERY, inst, viterbi, confidences)
    print(f"\nViterbi provenance (most probable derivation): {best:.3f}")

    security = SecuritySemiring()
    clearances = {
        fact("R", "a"): PUBLIC,
        fact("S", "a", "b"): SECRET,
        fact("T", "b"): PUBLIC,
        fact("R", "c"): TOP_SECRET,
        fact("S", "c", "b"): TOP_SECRET,
    }
    needed = circuit_provenance(QUERY, inst, security, clearances)
    print(f"\nSecurity provenance (clearance needed to see the answer): {needed}")

    # Cross-check every semiring against the textbook definition.
    for semiring, annotation in (
        (posbool, tokens),
        (tropical, costs),
        (viterbi, confidences),
        (security, clearances),
    ):
        assert circuit_provenance(QUERY, inst, semiring, annotation) == (
            reference_provenance(QUERY, inst, semiring, annotation)
        )
    print("\nAll circuit provenances match the reference GKT definitions.")
    sampled_lineage_section(confidences)


def sampled_lineage_section(confidences) -> None:
    """From provenance to probability: bulk-evaluate the same lineage.

    Treats the Viterbi confidences as independent fact probabilities (a
    TID instance), compares the exact engine against a Monte-Carlo
    estimate, and demonstrates the ``workers`` knob of the sharded
    backend: fixed seed, same estimate at any worker count. Skips the
    worker-pool half gracefully when only one core (or no numpy) is
    available.
    """
    from repro.baselines import monte_carlo_probability, tid_probability_enumerate
    from repro.circuits import capabilities

    print("\nFrom provenance to probability (same lineage, sampled worlds):")
    tid = TIDInstance({f: p for f, p in confidences.items()})
    exact = tid_probability_enumerate(QUERY, tid)
    estimate = monte_carlo_probability(QUERY, tid, samples=20_000, seed=7, workers=0)
    print(f"  exact P(query) by enumeration:     {exact:.6f}")
    print(f"  Monte Carlo (20k samples, serial): {estimate:.6f}")
    assert abs(estimate - exact) < 0.05
    caps = capabilities()
    if not caps["parallel"] or caps["cpu_count"] < 2:
        reason = (
            "only one CPU visible" if caps["parallel"]
            else "sharded backend unavailable (needs numpy + shared memory)"
        )
        print(f"  {reason} — skipping the worker-pool demo; estimates are "
              "guaranteed bit-identical at any worker count")
        return
    sharded = monte_carlo_probability(QUERY, tid, samples=20_000, seed=7, workers=2)
    print(f"  Monte Carlo (20k samples, 2 workers): {sharded:.6f}")
    assert sharded == estimate, "fixed seed must give identical estimates"
    print("  identical estimate on the worker pool — deterministic sharding")


if __name__ == "__main__":
    main()
