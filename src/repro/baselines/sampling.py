"""Monte-Carlo baselines: naive sampling and Karp–Luby DNF estimation.

The paper positions sampling as what practice falls back to when exact
evaluation is #P-hard ("makes it necessary in practice to approximate query
results via sampling"), and as the partner of the exact method in the
partial-decomposition hybrid (E12).
"""

from __future__ import annotations

import math

from repro.instances.base import Fact, Instance
from repro.instances.tid import TIDInstance
from repro.util import check, stable_rng


def monte_carlo_probability(
    query, tid: TIDInstance, samples: int, seed: int = 0, method: str = "lineage"
) -> float:
    """Estimate P(query) by sampling worlds and evaluating the query.

    The standard unbiased estimator; its additive error scales as
    ``O(1/sqrt(samples))`` regardless of instance structure.

    With ``method="lineage"`` (the default) the query's lineage circuit is
    built and compiled *once* and the sampled worlds are evaluated as one
    batch over the flat IR — each sample costs one array pass instead of a
    fresh homomorphism search. ``method="worlds"`` keeps the original
    per-world ``query.holds_in`` evaluation (works for any query object,
    including those without lineage support).
    """
    check(samples > 0, "need at least one sample")
    if method == "worlds":
        draw = tid.world_sampler(seed)
        hits = 0
        for _ in range(samples):
            if query.holds_in(draw()):
                hits += 1
        return hits / samples
    check(method == "lineage", f"unknown sampling method {method!r}")
    from repro.core.engine import build_lineage

    compiled = build_lineage(tid.instance, query).compiled()
    space = tid.event_space()
    marginals = [space.probability(name) for name in compiled.variables()]
    rng = stable_rng(seed)
    row = [0] * len(marginals)

    def worlds():
        for _ in range(samples):
            for i, p in enumerate(marginals):
                row[i] = rng.random() < p
            yield row

    return sum(compiled.evaluate_batch(worlds())) / samples


def required_samples(epsilon: float, delta: float) -> int:
    """Hoeffding bound: samples for additive error ``epsilon`` w.p. 1-delta."""
    check(0 < epsilon < 1 and 0 < delta < 1, "epsilon and delta must be in (0,1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def karp_luby_probability(
    query, tid: TIDInstance, samples: int, seed: int = 0
) -> float:
    """Karp–Luby estimator for the probability of the query's DNF lineage.

    Computes the lineage as a monotone DNF (one conjunct per homomorphism
    witness), then estimates the probability of the union by importance
    sampling over the witnesses. Unlike naive Monte Carlo, the relative error
    is bounded even for tiny probabilities — the classic FPRAS for DNF.
    """
    check(samples > 0, "need at least one sample")
    witnesses = _dnf_witnesses(query, tid)
    if not witnesses:
        return 0.0
    weights = []
    for witness in witnesses:
        weight = 1.0
        for f in witness:
            weight *= tid.probability(f)
        weights.append(weight)
    total_weight = sum(weights)
    if total_weight == 0.0:
        return 0.0

    rng = stable_rng(seed)
    facts = tid.facts()
    probabilities = {f: tid.probability(f) for f in facts}
    hits = 0
    for _ in range(samples):
        # Pick a witness with probability proportional to its weight.
        target = rng.random() * total_weight
        cumulative = 0.0
        chosen = len(witnesses) - 1
        for index, weight in enumerate(weights):
            cumulative += weight
            if target <= cumulative:
                chosen = index
                break
        witness = witnesses[chosen]
        # Sample the remaining facts conditioned on the witness being present.
        world = set(witness)
        for f in facts:
            if f not in world and rng.random() < probabilities[f]:
                world.add(f)
        # Count only if ``chosen`` is the first witness fully contained.
        for index, other in enumerate(witnesses):
            if all(f in world for f in other):
                if index == chosen:
                    hits += 1
                break
    return total_weight * hits / samples


def _dnf_witnesses(query, tid: TIDInstance) -> list[frozenset[Fact]]:
    """Distinct fact-set conjuncts of the query lineage over the instance."""
    all_facts = Instance(tid.facts())
    seen: dict[frozenset[Fact], None] = {}
    for witness in query.witnesses(all_facts):
        seen.setdefault(frozenset(witness), None)
    return list(seen)
