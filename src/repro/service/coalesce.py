"""Request coalescing: many concurrent callers, one matrix pass.

The batch kernels are throughput-optimal — one level-scheduled pass over a
``(rows, vars)`` float matrix costs barely more for 64 rows than for one —
so a server that gives every request its own pass throws away exactly the
speedup the vectorized kernels bought. The coalescer merges concurrent
``/probability`` requests for the same plan digest into shared passes:

- requests arriving inside a short window (or while an earlier pass for
  the same digest still occupies the compute thread) land in the same
  *bucket*;
- rows are deduplicated by valuation hash as they join the bucket, so a
  cache stampede — N cold requests for the same row — evaluates the row
  once;
- the bucket runs as one matrix pass and every waiter is fanned back its
  own rows' marginals from the shared ``hash → marginal`` result.

Merging changes nothing numerically: the level kernels evaluate each
matrix row independently, so a row's marginal in a coalesced pass is
bit-identical to the same row in a dedicated pass (asserted by
``tests/test_service.py``).

A request may carry an expected-arrivals barrier (``peers=N``): the bucket
then flushes as soon as N requests have joined instead of waiting out the
window — the deterministic handle the tests and benchmarks use to prove
"N concurrent requests, one pass" over real sockets, bounded by
:data:`BARRIER_TIMEOUT` so a missing peer cannot wedge the bucket.
"""

from __future__ import annotations

import asyncio

from repro.util import check

#: How long a freshly opened bucket waits for co-travellers, in seconds
#: (``REPRO_SERVICE_COALESCE_MS`` / ``--coalesce-ms`` override it).
DEFAULT_WINDOW = 0.002

#: Hard cap on how long a ``peers=N`` barrier may hold a bucket open.
BARRIER_TIMEOUT = 2.0


class _Bucket:
    """One pending pass: deduped rows plus the future all waiters share."""

    __slots__ = ("rows", "order", "index", "future", "arrivals", "expected",
                 "barrier")

    def __init__(self, loop):
        self.rows: list = []    # deduped rows, in arrival order
        self.order: list = []   # valuation hash of rows[i], aligned
        self.index: dict = {}   # valuation hash -> position in rows
        self.future = loop.create_future()
        self.arrivals = 0
        self.expected: int | None = None
        self.barrier = asyncio.Event()

    def add(self, hashes, rows) -> None:
        for h, row in zip(hashes, rows):
            if h not in self.index:
                self.index[h] = len(self.rows)
                self.rows.append(row)
                self.order.append(h)


class Coalescer:
    """Merge concurrent per-digest row batches into shared matrix passes.

    ``run_pass(digest, rows)`` is the evaluation hook — awaited once per
    flushed bucket, returning one marginal per row. With ``enabled=False``
    every request runs as its own pass (the uncoalesced baseline the E19
    bench compares against); rows are still deduplicated within a request.
    """

    def __init__(self, run_pass, window: float = DEFAULT_WINDOW,
                 enabled: bool = True):
        check(window >= 0, "coalescing window must be non-negative")
        self._run_pass = run_pass
        self.window = window
        self.enabled = enabled
        self._buckets: dict[str, _Bucket] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        self.counters = {
            "requests": 0,
            "rows_in": 0,
            "passes": 0,
            "rows_evaluated": 0,
            "coalesced_requests": 0,  # requests beyond the first per pass
            "max_requests_per_pass": 0,
            "max_rows_per_pass": 0,
        }

    async def submit(self, digest: str, hashes, rows,
                     peers: int | None = None) -> dict:
        """Marginals for ``rows`` as a ``valuation_hash → float`` mapping.

        ``hashes`` must align with ``rows`` (the caller computed them for
        its cache lookup already). ``peers`` arms the arrival barrier.
        """
        check(len(hashes) == len(rows), "hashes and rows must align")
        counters = self.counters
        counters["requests"] += 1
        counters["rows_in"] += len(rows)
        if peers is not None:
            peers = int(peers)
            check(peers >= 1, "peers must be at least 1")
        if not self.enabled:
            return await self._solo_pass(digest, hashes, rows)
        bucket = self._buckets.get(digest)
        if bucket is None:
            bucket = _Bucket(asyncio.get_running_loop())
            self._buckets[digest] = bucket
            asyncio.ensure_future(self._flush(digest, bucket))
        bucket.add(hashes, rows)
        bucket.arrivals += 1
        if peers is not None:
            bucket.expected = max(bucket.expected or 0, peers)
        if bucket.expected is not None and bucket.arrivals >= bucket.expected:
            bucket.barrier.set()
        # shield: a cancelled waiter (client disconnect) must not cancel
        # the shared pass out from under the other waiters.
        shared = await asyncio.shield(bucket.future)
        return {h: shared[h] for h in hashes}

    async def _solo_pass(self, digest: str, hashes, rows) -> dict:
        """One dedicated pass for one request (coalescing disabled)."""
        order, deduped, seen = [], [], set()
        for h, row in zip(hashes, rows):
            if h not in seen:
                seen.add(h)
                order.append(h)
                deduped.append(row)
        values = await self._run_pass(digest, deduped)
        self._account(1, deduped)
        return dict(zip(order, values))

    async def _flush(self, digest: str, bucket: _Bucket) -> None:
        """Wait out the window/barrier, then run the bucket as one pass."""
        try:
            timeout = (BARRIER_TIMEOUT if bucket.expected is not None
                       else self.window)
            if timeout > 0:
                try:
                    await asyncio.wait_for(bucket.barrier.wait(), timeout)
                except asyncio.TimeoutError:
                    # A barrier request may have joined after the window
                    # wait started; honour it before giving up.
                    if bucket.expected is not None and not bucket.barrier.is_set():
                        try:
                            await asyncio.wait_for(
                                bucket.barrier.wait(), BARRIER_TIMEOUT
                            )
                        except asyncio.TimeoutError:
                            pass
            lock = self._locks.setdefault(digest, asyncio.Lock())
            async with lock:
                # Close the bucket to new arrivals only now: requests that
                # queued up while a previous pass held the compute thread
                # have been merging into it all along.
                if self._buckets.get(digest) is bucket:
                    del self._buckets[digest]
                values = await self._run_pass(digest, bucket.rows)
        except BaseException as exc:
            if self._buckets.get(digest) is bucket:
                del self._buckets[digest]
            if not bucket.future.done():
                bucket.future.set_exception(exc)
                bucket.future.exception()  # mark retrieved for lone waiters
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        self._account(bucket.arrivals, bucket.rows)
        bucket.future.set_result(dict(zip(bucket.order, values)))

    def _account(self, arrivals: int, rows) -> None:
        counters = self.counters
        counters["passes"] += 1
        counters["rows_evaluated"] += len(rows)
        if arrivals > 1:
            counters["coalesced_requests"] += arrivals - 1
        if arrivals > counters["max_requests_per_pass"]:
            counters["max_requests_per_pass"] = arrivals
        if len(rows) > counters["max_rows_per_pass"]:
            counters["max_rows_per_pass"] = len(rows)

    def stats(self) -> dict:
        """Counters + configuration, for the ``/stats`` endpoint."""
        return {"enabled": self.enabled, "window_s": self.window,
                **self.counters}
