"""Weighted model counting on Boolean circuits — historical entry points.

.. deprecated::
    These functions are kept as thin strategy wrappers over the unified
    evaluation layer (:mod:`repro.circuits.evaluation`): each call compiles
    the circuit to the flat IR (cached on the arena) and dispatches to the
    registered engine of the same name. New code should call
    :func:`repro.circuits.evaluation.probability` directly.

Three engines, in increasing sophistication:

- ``enumerate`` — brute force over variable valuations (oracle);
- ``shannon`` — Shannon expansion with residual memoization; the classic
  exact baseline, exponential in the worst case;
- ``message_passing`` — the paper's algorithm: junction-tree sum-product
  over a tree decomposition of the circuit's moral graph
  (Lauritzen–Spiegelhalter), ``O(2^w · |C|)`` for width ``w``, hence
  PTIME/linear on bounded-treewidth circuits (Theorems 1–2).

All engines take an :class:`repro.events.EventSpace` supplying independent
variable marginals, and return the probability that the output gate is true.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.circuits.evaluation import MessagePassingReport, probability
from repro.events import EventSpace
from repro.treewidth import TreeDecomposition

__all__ = [
    "MessagePassingReport",
    "wmc_enumerate",
    "wmc_message_passing",
    "wmc_shannon",
]


def wmc_enumerate(circuit: Circuit, space: EventSpace) -> float:
    """Exact probability by enumerating all valuations (exponential oracle)."""
    return probability(circuit, space, engine="enumerate")


def wmc_shannon(circuit: Circuit, space: EventSpace) -> float:
    """Exact probability by Shannon expansion with memoization."""
    return probability(circuit, space, engine="shannon")


def wmc_message_passing(
    circuit: Circuit,
    space: EventSpace,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
    max_width: int = 24,
    return_report: bool = False,
):
    """Exact probability via junction-tree sum-product over the circuit.

    A supplied ``decomposition`` must cover the gate ids of
    ``circuit.binarized()`` (the form the factors are built on). See
    :func:`repro.circuits.evaluation._engine_message_passing` for the
    engine itself.
    """
    return probability(
        circuit,
        space,
        engine="message_passing",
        decomposition=decomposition,
        heuristic=heuristic,
        max_width=max_width,
        return_report=return_report,
    )
