"""Fault drills for the query service: degrade, never serve a wrong marginal.

Each test spawns its own ``repro serve-http`` subprocess (plus, where the
drill needs one, a distributed worker or an on-disk plan cache) and
injects one failure:

- a distributed worker killed mid-request — the host pool retries, the
  tier ladder degrades to the local kernels, and every served marginal
  still equals the library's answer;
- a corrupt plan-cache entry discovered by a fresh service — the corrupt
  blob is rejected and deleted, the request fails with a clean 404 (not a
  wrong number), and re-registering the plan heals the digest;
- a cache stampede — N concurrent cold requests for one valuation — is
  deduplicated to a single evaluated row;
- a client disconnecting mid-stream — the Monte-Carlo run is cancelled
  promptly and the service keeps serving.

Everything here opens sockets and spawns subprocesses, so the whole
module carries the ``distributed`` marker.
"""

import threading
import time

import pytest

from repro.circuits import compile_circuit
from repro.circuits import compiled as compiled_module
from repro.core import build_lineage, compile_query_plan
from repro.instances.columnar import ColumnarInstance
from repro.queries import atom, cq, variables
from repro.service import ServiceClient, ServiceClientError, spawn_service
from repro.util import stable_rng
from repro.workloads import rst_chain_tid

pytestmark = pytest.mark.distributed


def chain_setup(n: int = 25, probability: float = 0.3, seed: int = 41):
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = rst_chain_tid(n, probability=probability, seed=seed)
    compiled = compile_circuit(build_lineage(tid.instance, query).circuit)
    space = tid.event_space()
    marginals = [space.probability(name) for name in compiled.variables()]
    return compiled, marginals


def direct_marginals(compiled, rows):
    np = compiled_module.numpy_module()
    if np is not None:
        return compiled.probability_batch(np.asarray(rows, dtype=np.float64))
    return compiled.probability_batch(rows)


def unique_rows(count: int, width: int, rng) -> list[list[float]]:
    return [[rng.random() for _ in range(width)] for _ in range(count)]


def shutdown_service(handle) -> None:
    try:
        handle.client(timeout=5.0).shutdown()
        handle.wait_dead(10.0)
    except Exception:
        pass
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# worker killed mid-request


def test_worker_killed_mid_request_degrades_to_local(worker_factory):
    """A distributed worker dying under a batch must cost latency, not
    correctness: the pool retries, the tier ladder falls back to the
    local kernels, and the marginals stay bit-identical."""
    pytest.importorskip("numpy")
    worker = worker_factory(max_tasks=1)  # dies when asked for task #2
    handle = spawn_service(env={"REPRO_DISTRIBUTED_HOSTS": worker.address})
    try:
        client = handle.client()
        tid = rst_chain_tid(25, probability=0.3, seed=41)
        payload = ColumnarInstance.from_instance(tid.instance).to_payload()
        query_spec = {
            "atoms": [["R", ["?x"]], ["S", ["?x", "?y"]], ["T", ["?y"]]]
        }
        compiled_resp = client.compile(payload, query_spec)
        digest = compiled_resp["digest"]
        restored, _fids = ColumnarInstance.ingest_payload(payload)
        x, y = variables("x", "y")
        _lineage, oracle = compile_query_plan(
            restored, cq(atom("R", x), atom("S", x, y), atom("T", y))
        )
        assert oracle.plan_digest() == digest
        rng = stable_rng(411)
        width = compiled_resp["n_vars"]
        # Big enough to clear PARALLEL_MIN_ROWS, so the pass actually
        # goes over the wire — and splits into several shards, so the
        # worker's crash lands mid-request, not between requests.
        for attempt in range(2):
            rows = unique_rows(4096, width, rng)
            served = client.probability(digest, rows)
            expected = [float(v) for v in direct_marginals(oracle, rows)]
            assert served["marginals"] == expected, (
                f"attempt {attempt}: degraded pass must stay bit-identical"
            )
        assert worker.wait_dead(20.0) is not None, (
            "the max-tasks worker should have crashed under the batches"
        )
        health = client.health()
        assert health["status"] == "ok"
        client.close()
    finally:
        shutdown_service(handle)


# --------------------------------------------------------------------------- #
# corrupt plan-cache entry on a fresh service


def test_corrupt_plan_cache_entry_yields_clean_404_and_reheals(tmp_path):
    cache_dir = tmp_path / "plans"
    env = {"REPRO_PLAN_CACHE_DIR": str(cache_dir)}
    compiled, marginals = chain_setup(n=12, seed=42)
    rows = [marginals]
    expected = [float(v) for v in direct_marginals(compiled, rows)]

    # Life 1: register the plan; the service writes it through to disk.
    handle = spawn_service(env=env)
    try:
        client = handle.client()
        registered = client.register_plan(compiled.wire_bytes())
        digest = registered["digest"]
        assert registered["disk_cached"] is True
        assert client.probability(digest, rows)["marginals"] == expected
        client.close()
    finally:
        shutdown_service(handle)

    # Life 2: a fresh service serves the digest straight from disk.
    handle = spawn_service(env=env)
    try:
        client = handle.client()
        assert client.health()["plans"] == 0
        assert client.probability(digest, rows)["marginals"] == expected
        client.close()
    finally:
        shutdown_service(handle)

    # Corrupt the cached blob on disk.
    entries = [path for path in cache_dir.iterdir()
               if path.name.endswith(".plan") and digest in path.name]
    assert entries, f"no plan entry for {digest} in {cache_dir}"
    entries[0].write_bytes(b"\x00corrupted\x00" * 16)

    # Life 3: the corrupt entry is rejected — a clean 404, never a wrong
    # marginal — and re-registering the plan heals the digest.
    handle = spawn_service(env=env)
    try:
        client = handle.client()
        with pytest.raises(ServiceClientError) as excinfo:
            client.probability(digest, rows)
        assert excinfo.value.status == 404
        healed = client.register_plan(compiled.wire_bytes())
        assert healed["digest"] == digest
        assert client.probability(digest, rows)["marginals"] == expected
        client.close()
    finally:
        shutdown_service(handle)


# --------------------------------------------------------------------------- #
# cache stampede on a cold key


def test_stampede_on_cold_key_evaluates_the_row_once():
    compiled, marginals = chain_setup(n=15, seed=43)
    handle = spawn_service()
    try:
        registrar = handle.client()
        digest = registrar.register_compiled(compiled)
        n_clients = 8
        cold_row = unique_rows(1, len(marginals), stable_rng(431))[0]
        results: list = [None] * n_clients
        errors: list = []
        start = threading.Barrier(n_clients)

        def worker(index: int) -> None:
            client = ServiceClient(handle.address)
            try:
                start.wait(timeout=10.0)
                results[index] = client.probability(
                    digest, [cold_row], peers=n_clients
                )
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors, errors
        expected = float(direct_marginals(compiled, [cold_row])[0])
        for response in results:
            assert response["marginals"] == [expected]
        stats = registrar.stats()["coalescer"]
        assert stats["rows_evaluated"] == 1, (
            "a stampede on one cold valuation must evaluate it exactly once"
        )
        assert stats["passes"] == 1
        registrar.close()
    finally:
        shutdown_service(handle)


# --------------------------------------------------------------------------- #
# client disconnect mid-stream


def test_client_disconnect_mid_stream_cancels_the_run():
    compiled, marginals = chain_setup(n=15, seed=44)
    handle = spawn_service()
    try:
        client = handle.client()
        digest = client.register_compiled(compiled)
        # Far more chunks than we will read: the stream would run for a
        # long time if the disconnect were not detected.
        stream = client.sample(
            digest, marginals, samples=100_000_000, chunk=1024, seed=0
        )
        seen = [next(stream) for _ in range(3)]
        assert [u["samples"] for u in seen] == [1024, 2048, 3072]
        client.close()  # hard disconnect mid-stream

        checker = handle.client()
        deadline = time.monotonic() + 15.0
        streams = None
        while time.monotonic() < deadline:
            streams = checker.stats()["streams"]
            if streams["cancelled"] >= 1 and streams["active"] == 0:
                break
            time.sleep(0.05)
        assert streams is not None
        assert streams["cancelled"] >= 1, f"stream never cancelled: {streams}"
        assert streams["active"] == 0, f"stream still running: {streams}"
        assert streams["completed"] == 0

        # The service keeps serving, correctly, after the abort.
        rows = unique_rows(2, len(marginals), stable_rng(441))
        served = checker.probability(digest, rows)
        expected = [float(v) for v in direct_marginals(compiled, rows)]
        assert served["marginals"] == expected
        checker.close()
    finally:
        shutdown_service(handle)
