"""Boolean circuits, their treewidth, and weighted model counting (S2).

The module is organized around a **compile-once / evaluate-many** split:

- :class:`Circuit` (``circuit.py``) is the *construction* arena — a mutable,
  hash-consed gate DAG that lineage builders grow incrementally;
- :func:`compile_circuit` (``compiled.py``) lowers a finished circuit to a
  :class:`CompiledCircuit`: flat topologically-sorted arrays (int gate
  kinds, CSR inputs, interned variable slots) with cached variable order,
  moral graph, tree decompositions and binarized form. Compilation is
  cached on the arena and invalidated by mutation, so callers just pass the
  ``Circuit`` around and pay the lowering once;
- :func:`probability` (``evaluation.py``) is the single dispatch point for
  probability computation, with a registry of engines over the compiled
  IR: ``enumerate`` (oracle), ``shannon`` (expansion baseline),
  ``message_passing`` (the paper's junction-tree algorithm, Theorems 1–2)
  and ``dd`` (the linear-time deterministic-decomposable pass, Theorem 1);
- :mod:`repro.circuits.parallel` (``parallel.py``) shards big batch
  evaluations across a pool of worker processes that map the compiled CSR
  arrays from shared memory — turn it on with
  :func:`set_parallel_workers` (or ``REPRO_PARALLEL_WORKERS``) and every
  large ``evaluate_batch``/``probability_batch`` call and both sampling
  baselines use it automatically, with deterministic results;
- :mod:`repro.circuits.distributed` (``distributed.py``) fans the same
  deterministic shards out to remote workers over TCP: the plan travels
  once per connection in a versioned, checksummed wire format
  (:func:`plan_to_bytes` / :func:`plan_from_bytes`), shards are retried on
  worker loss, and a fixed seed gives bit-identical estimates at any host
  count — turn it on with :func:`set_distributed_hosts` (or
  ``REPRO_DISTRIBUTED_HOSTS``) and start workers with
  ``python -m repro serve``;
- :mod:`repro.circuits.plancache` (``plancache.py``) persists lowered plans
  on disk so identical circuits skip lowering across processes — point
  :func:`set_plan_cache_dir` (or ``REPRO_PLAN_CACHE_DIR``) at a directory
  and both cold compiles and the distributed plan handshake reuse cached
  entries; :func:`recompile` additionally patches a previously compiled
  circuit in O(|edit|) after incremental arena growth.

The full five-stage lowering pipeline (gate DAG → flat CSR IR → leveled
numpy batch plan → sharded workers → distributed hosts) is documented in
``ARCHITECTURE.md``.

Typical use::

    from repro.circuits import compile_circuit, probability

    compiled = compile_circuit(lineage.circuit)     # once
    compiled.evaluate(world)                        # per possible world
    compiled.evaluate_batch(sampled_worlds)         # vectorized with numpy,
                                                    # scalar kernels otherwise
    compiled.probability_batch(marginal_rows)       # batched Theorem 1 pass
    probability(lineage.circuit, space, engine="dd")  # Theorem 1 fast path

The historical entry points (``wmc_enumerate``, ``wmc_shannon``,
``wmc_message_passing``, ``probability_dd``) remain as thin wrappers over
the same layer.
"""

from repro.circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit, Gate, from_formula
from repro.circuits.compiled import (
    ENUMERATION_VARIABLE_CAP,
    CompiledCircuit,
    batch_stats,
    compile_circuit,
    compile_stats,
    numpy_available,
    recompile,
    reset_batch_stats,
    reset_compile_stats,
)
from repro.circuits.dd import (
    check_decomposability,
    check_determinism_sampled,
    probability_dd,
)
from repro.circuits.evaluation import (
    available_engines,
    capabilities,
    default_engine,
    default_engine_set,
    distributed_hosts,
    distributed_hosts_set,
    distributed_secret,
    distributed_secret_set,
    distributed_tls,
    distributed_tls_set,
    engine_forced,
    force_engine,
    forced_engine,
    get_engine,
    parallel_available,
    parallel_workers,
    parallel_workers_set,
    pipeline_depth,
    pipeline_depth_set,
    plan_from_bytes,
    plan_to_bytes,
    pool_stats,
    probability,
    probability_batch,
    register_engine,
    registered_hosts,
    reset_pool,
    set_default_engine,
    set_distributed_hosts,
    set_distributed_secret,
    set_distributed_tls,
    set_pipeline_depth,
    set_parallel_workers,
    shutdown_pool,
    start_registry,
    stop_registry,
)
from repro.circuits.export import CircuitStats, circuit_stats, to_dot
from repro.circuits.plancache import (
    plan_cache_dir,
    plan_cache_dir_set,
    plan_cache_stats,
    reset_plan_cache_stats,
    set_plan_cache_dir,
)
from repro.circuits.graph import circuit_width, moral_graph
from repro.circuits.wmc import (
    MessagePassingReport,
    wmc_enumerate,
    wmc_message_passing,
    wmc_shannon,
)

__all__ = [
    "AND",
    "CONST",
    "Circuit",
    "CircuitStats",
    "CompiledCircuit",
    "ENUMERATION_VARIABLE_CAP",
    "Gate",
    "MessagePassingReport",
    "NOT",
    "OR",
    "VAR",
    "available_engines",
    "batch_stats",
    "capabilities",
    "check_decomposability",
    "check_determinism_sampled",
    "circuit_stats",
    "circuit_width",
    "compile_circuit",
    "compile_stats",
    "default_engine",
    "default_engine_set",
    "distributed_hosts",
    "distributed_hosts_set",
    "distributed_secret",
    "distributed_secret_set",
    "distributed_tls",
    "distributed_tls_set",
    "engine_forced",
    "force_engine",
    "forced_engine",
    "from_formula",
    "get_engine",
    "moral_graph",
    "numpy_available",
    "parallel_available",
    "parallel_workers",
    "parallel_workers_set",
    "pipeline_depth",
    "pipeline_depth_set",
    "plan_cache_dir",
    "plan_cache_dir_set",
    "plan_cache_stats",
    "plan_from_bytes",
    "plan_to_bytes",
    "pool_stats",
    "probability",
    "probability_batch",
    "probability_dd",
    "recompile",
    "register_engine",
    "registered_hosts",
    "reset_batch_stats",
    "reset_compile_stats",
    "reset_plan_cache_stats",
    "reset_pool",
    "set_default_engine",
    "set_distributed_hosts",
    "set_distributed_secret",
    "set_distributed_tls",
    "set_parallel_workers",
    "set_pipeline_depth",
    "set_plan_cache_dir",
    "shutdown_pool",
    "start_registry",
    "stop_registry",
    "to_dot",
    "wmc_enumerate",
    "wmc_message_passing",
    "wmc_shannon",
]
