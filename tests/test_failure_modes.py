"""Failure-injection tests: every guard fires with a useful message.

A production library must fail loudly and legibly. These tests drive each
subsystem into its documented failure modes and assert the error type and
message content.
"""

import pytest

from repro.circuits import Circuit, wmc_enumerate, wmc_message_passing
from repro.conditioning import ConditionedInstance, SimulatedCrowd
from repro.core import build_lineage, build_provenance_circuit
from repro.core.engine import assign_facts_to_bags
from repro.events import EventSpace, var
from repro.instances import Instance, PCInstance, TIDInstance, fact, pcc_from_pc
from repro.order import LabeledPoset, chain
from repro.prxml import PrXMLDocument, mux, regular
from repro.queries import atom, cq, variables
from repro.rules import chase, probabilistic_chase, rule, ProbabilisticRule
from repro.treewidth import TreeDecomposition, build_nice_tree
from repro.util import ReproError

X, Y = variables("x", "y")


class TestCircuitGuards:
    def test_no_output_gate(self):
        c = Circuit()
        c.variable("x")
        with pytest.raises(ReproError, match="no output"):
            c.evaluate({"x": True})

    def test_missing_valuation_entry(self):
        c = Circuit()
        c.set_output(c.variable("x"))
        with pytest.raises(ReproError, match="missing variable"):
            c.evaluate({})

    def test_enumeration_variable_cap(self):
        c = Circuit()
        c.set_output(c.or_gate([c.variable(f"v{i}") for i in range(30)]))
        space = EventSpace({f"v{i}": 0.5 for i in range(30)})
        with pytest.raises(ReproError, match="26 variables"):
            wmc_enumerate(c, space)

    def test_message_passing_unknown_event(self):
        c = Circuit()
        c.set_output(c.variable("mystery"))
        with pytest.raises(ReproError, match="unknown event"):
            wmc_message_passing(c, EventSpace())


class TestDecompositionGuards:
    def test_fact_not_covered_by_any_bag(self):
        instance = Instance([fact("E", 1, 2)])
        bad = TreeDecomposition({0: {1}, 1: {2}}, [(0, 1)])
        with pytest.raises(ReproError, match="no bag contains"):
            assign_facts_to_bags(instance, bad)

    def test_lineage_with_invalid_decomposition(self):
        tid = TIDInstance({fact("E", 1, 2): 0.5})
        bad = TreeDecomposition({0: {1}}, [])
        with pytest.raises(ReproError):
            build_lineage(tid.instance, cq(atom("E", X, Y)), bad)

    def test_nice_tree_from_single_bag(self):
        # Degenerate but legal: one bag holding everything.
        td = TreeDecomposition({0: {1, 2, 3}}, [])
        nice = build_nice_tree(td)
        assert nice.root.bag == frozenset()


class TestInstanceGuards:
    def test_possible_worlds_cap(self):
        tid = TIDInstance({fact("R", i): 0.5 for i in range(25)})
        with pytest.raises(ReproError, match="20 facts"):
            list(tid.possible_worlds())

    def test_pc_event_cap(self):
        pc = PCInstance()
        for i in range(25):
            pc.add_event(f"e{i}", 0.5)
            pc.add(fact("R", i), var(f"e{i}"))
        with pytest.raises(ReproError, match="20 events"):
            list(pc.possible_worlds())

    def test_unknown_fact_probability(self):
        tid = TIDInstance()
        with pytest.raises(ReproError, match="unknown fact"):
            tid.probability(fact("R", 1))


class TestPrXMLGuards:
    def test_mux_overweight(self):
        with pytest.raises(ReproError, match="sum"):
            mux([(regular("a"), 0.8), (regular("b"), 0.5)])

    def test_document_enumeration_caps(self):
        from repro.prxml.semantics import world_distribution
        from repro.prxml import ind

        children = [(regular(f"c{i}"), 0.5) for i in range(20)]
        doc = PrXMLDocument(regular("root", [ind(children)]))
        with pytest.raises(ReproError, match="local choices"):
            list(world_distribution(doc))


class TestOrderGuards:
    def test_order_cycle_rejected(self):
        poset = chain(["a", "b"], "p")
        with pytest.raises(ReproError, match="cycle"):
            poset.add_order("p1", "p0")

    def test_unknown_element(self):
        poset = LabeledPoset({"a": 1})
        with pytest.raises(ReproError, match="unknown element"):
            poset.label("ghost")

    def test_irreflexive(self):
        poset = LabeledPoset({"a": 1})
        with pytest.raises(ReproError, match="irreflexive"):
            poset.add_order("a", "a")


class TestRuleGuards:
    def test_nonterminating_chase_message_mentions_acyclicity(self):
        instance = Instance([fact("R", 1, 2)])
        bad_rule = rule([atom("R", X, Y)], [atom("R", Y, variables("z")[0])])
        with pytest.raises(ReproError, match="weakly acyclic"):
            chase(instance, [bad_rule], max_rounds=4)

    def test_rule_probability_bounds(self):
        with pytest.raises(ReproError):
            ProbabilisticRule(rule([atom("R", X)], [atom("P", X)]), 1.2)

    def test_unknown_semantics(self):
        with pytest.raises(ReproError, match="semantics"):
            probabilistic_chase(
                Instance([fact("R", 1)]),
                [ProbabilisticRule(rule([atom("R", X)], [atom("P", X)]), 0.5)],
                semantics="quantum",
            )


class TestConditioningGuards:
    def test_zero_evidence(self):
        pc = PCInstance()
        pc.add_event("e", 1.0)
        pc.add(fact("R", 1), var("e"))
        pcc = pcc_from_pc(pc)
        conditioned = ConditionedInstance(pcc).observe_event("e", False)
        with pytest.raises(ReproError, match="zero-probability"):
            conditioned.query_probability(cq(atom("R", X)))

    def test_crowd_unknown_event(self):
        crowd = SimulatedCrowd({"known": True})
        with pytest.raises(ReproError, match="cannot answer"):
            crowd.ask("unknown")


class TestProvenanceGuards:
    def test_provenance_rejects_non_cq(self):
        from repro.core import STConnectivityAutomaton

        tid = TIDInstance({fact("E", 1, 2): 0.5})
        with pytest.raises(ReproError, match="CQs and UCQs"):
            build_provenance_circuit(tid.instance, STConnectivityAutomaton(1, 2))


class TestNumericalEdgeCases:
    def test_all_zero_probabilities(self):
        from repro.core import tid_probability

        tid = TIDInstance({fact("R", 1): 0.0, fact("S", 1, 2): 0.0, fact("T", 2): 0.0})
        q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        assert tid_probability(q, tid) == 0.0

    def test_all_one_probabilities(self):
        from repro.core import tid_probability

        tid = TIDInstance({fact("R", 1): 1.0, fact("S", 1, 2): 1.0, fact("T", 2): 1.0})
        q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        assert tid_probability(q, tid) == 1.0

    def test_disconnected_instance(self):
        from repro.core import tid_probability

        tid = TIDInstance(
            {fact("R", 1): 0.5, fact("S", 2, 3): 0.5, fact("T", 4): 0.5}
        )
        q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        assert tid_probability(q, tid) == 0.0  # components never join

    def test_empty_event_space_enumeration(self):
        space = EventSpace()
        assert list(space.valuations()) == [{}]
        assert space.valuation_probability({}) == 1.0
