"""Blocks, repairs, and the brute-force certain-answer oracle.

A *repair* of a key-violating instance keeps exactly one fact from every
block (facts agreeing on their relation's key).  The oracle enumerates
every repair of the query's relations and evaluates the query in each —
exponential, but exact, and the ground truth every routed method in
:mod:`repro.cqa.engine` is pinned to on small instances.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator

from repro.instances.base import AbstractInstance, Fact, Instance
from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.queries.keys import KeySpec
from repro.util import check

__all__ = ["blocks", "repair_count", "iter_repairs", "certain_oracle"]


def blocks(instance: AbstractInstance, relation: str, keys: KeySpec) -> list[list[Fact]]:
    """The relation's blocks under ``keys``, in insertion order."""
    arity = instance.relations().get(relation)
    if arity is None:
        return []
    index = instance.key_index(relation, keys.positions_for(relation, arity))
    return list(index.values())


def _query_relations(query: ConjunctiveQuery | UnionOfConjunctiveQueries) -> tuple[str, ...]:
    disjuncts = getattr(query, "disjuncts", None) or (query,)
    names = {a.relation for q in disjuncts for a in q.atoms}
    return tuple(sorted(names))


def _all_blocks(
    instance: AbstractInstance, relations: tuple[str, ...], keys: KeySpec
) -> list[list[Fact]]:
    out: list[list[Fact]] = []
    for relation in relations:
        out.extend(blocks(instance, relation, keys))
    return out


def repair_count(
    instance: AbstractInstance, keys: KeySpec, relations: tuple[str, ...] | None = None
) -> int:
    """Number of repairs of ``relations`` (all of them by default). Exact."""
    if relations is None:
        relations = tuple(sorted(instance.relations()))
    return math.prod(len(b) for b in _all_blocks(instance, relations, keys))


def iter_repairs(
    instance: AbstractInstance, keys: KeySpec, relations: tuple[str, ...] | None = None
) -> Iterator[Instance]:
    """Enumerate every repair as a small object-backend :class:`Instance`.

    Facts of relations outside ``relations`` are omitted — callers only
    ever evaluate queries over the relations they mention.
    """
    if relations is None:
        relations = tuple(sorted(instance.relations()))
    per_block = _all_blocks(instance, relations, keys)
    for choice in itertools.product(*per_block):
        yield Instance(choice)


def certain_oracle(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    instance: AbstractInstance,
    keys: KeySpec,
    max_repairs: int = 200_000,
) -> bool:
    """Is ``query`` true in **every** repair?  By exhaustive enumeration.

    Refuses (raises :class:`repro.util.ReproError`) beyond ``max_repairs``
    repairs — this is the ground-truth oracle for small instances, not an
    evaluation strategy.
    """
    relations = _query_relations(query)
    count = repair_count(instance, keys, relations)
    check(
        count <= max_repairs,
        f"{count} repairs exceed the oracle cap of {max_repairs}",
    )
    return all(query.holds_in(repair) for repair in iter_repairs(instance, keys, relations))
