"""Setup shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation`` on machines where PEP 517 editable
installs are unavailable.
"""

from setuptools import setup

setup()
