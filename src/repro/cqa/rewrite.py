"""First-order rewritings for the FO class of the trichotomy.

When the attack graph is acyclic, certainty is expressible as a plain
first-order formula over the (key-violating) database — no repairs are
ever enumerated and no circuits are built.  The rewriting eliminates one
*unattacked* atom at a time (Koutris–Wijsen): with ``F = R(x̲, y)``
unattacked in ``q``,

    certain(q)  ≡  ∃x̲ [ ∃y R(x̲, y) ∧ ∀y ( R(x̲, y) → certain(q ∖ F) ) ]

where the recursive call treats ``x̲, y`` as constants.  The residual
attack graph is recomputed after each elimination (bound variables act
as constants), so the order adapts as attacks disappear.

This module produces the *static* artifact — the elimination order and a
printable formula; :mod:`repro.cqa.engine` executes the same recursion
directly against an instance (on either backend).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cqa.attacks import attack_graph, substitute_atom
from repro.queries.cq import Atom, ConjunctiveQuery, Variable
from repro.queries.keys import KeySpec
from repro.util import ReproError, check

__all__ = ["FORewriting", "elimination_order", "fo_rewriting"]

#: Sentinel constant substituted for bound variables when recomputing
#: residual attack graphs without an instance at hand.
_BOUND = "§bound"


@dataclass(frozen=True)
class FORewriting:
    """The certain-answer rewriting of one FO-class query.

    ``order`` lists atom indices in elimination order; ``formula`` is a
    printable rendering of the first-order certainty test.
    """

    query: ConjunctiveQuery
    keys: KeySpec
    order: tuple[int, ...]
    formula: str


def elimination_order(query: ConjunctiveQuery, keys: KeySpec) -> tuple[int, ...] | None:
    """Greedy unattacked-atom elimination order, or ``None`` when stuck.

    Completes for exactly the FO (acyclic attack graph) class: an acyclic
    graph always has an unattacked atom, and eliminating it (binding its
    variables) never creates new attacks among the rest.
    """
    atoms = query.atoms
    remaining = list(range(len(atoms)))
    bound: set[Variable] = set()
    order: list[int] = []
    while remaining:
        binding = {v: (_BOUND, v.name) for v in bound}
        residual = [substitute_atom(atoms[i], binding) for i in remaining]
        attacked = {remaining[a.target] for a in attack_graph(residual, keys)}
        pick = next((i for i in remaining if i not in attacked), None)
        if pick is None:
            return None
        order.append(pick)
        bound |= atoms[pick].variables()
        remaining.remove(pick)
    return tuple(order)


def _render(atoms: tuple[Atom, ...], keys: KeySpec, order: tuple[int, ...]) -> str:
    bound: set[Variable] = set()

    def step(depth: int) -> str:
        if depth == len(order):
            return "⊤"
        a = atoms[order[depth]]
        key_positions = set(keys.positions_for(a.relation, len(a.terms)))
        key_vars = sorted(
            {t.name for p, t in enumerate(a.terms) if p in key_positions and isinstance(t, Variable)}
            - {v.name for v in bound}
        )
        other_vars = sorted(
            {t.name for p, t in enumerate(a.terms) if p not in key_positions and isinstance(t, Variable)}
            - {v.name for v in bound}
        )
        bound.update(a.variables())
        rest = step(depth + 1)
        exists_key = "".join(f"∃{v} " for v in key_vars)
        exists_other = "".join(f"∃{v} " for v in other_vars)
        forall = "".join(f"∀{v} " for v in other_vars)
        if other_vars:
            return f"{exists_key}[{exists_other}{a} ∧ {forall}({a} → {rest})]"
        return f"{exists_key}[{a} ∧ {rest}]"

    return step(0)


def fo_rewriting(query: ConjunctiveQuery, keys: KeySpec) -> FORewriting:
    """The first-order certainty rewriting of an FO-class query.

    Raises :class:`ReproError` for queries outside the FO class (the
    elimination gets stuck on a cycle of attacks).
    """
    check(query.is_self_join_free(), "FO rewriting requires a self-join-free query")
    order = elimination_order(query, keys)
    if order is None:
        raise ReproError(
            "query has a cyclic attack graph: certainty is not FO-rewritable"
        )
    return FORewriting(query, keys, order, _render(query.atoms, keys, order))
