"""Tests for the sharded multi-process batch evaluation subsystem.

Covers the satellite checklist for :mod:`repro.circuits.parallel`: shared-
memory lifecycle (no leaked segments after crashes, errors or garbage
collection), pool reuse across calls, and bit-identical results between the
serial path and 1/2/4 workers for fixed seeds. Worker counts above the
machine's core count are still exercised — determinism must not depend on
parallel hardware, only wall-clock does.
"""

import gc
import os
import signal
import time

import pytest

np = pytest.importorskip("numpy")

from repro.circuits import Circuit, compile_circuit
from repro.circuits import compiled as compiled_module
from repro.circuits import parallel
from repro.util import ReproError, stable_rng

pytestmark = pytest.mark.skipif(
    not parallel.parallel_available(), reason="shared memory unavailable"
)


def shm_segments() -> list[str]:
    """Our shared-memory segments as the OS sees them (Linux/CI)."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-POSIX-shm host
        return []
    return sorted(n for n in os.listdir("/dev/shm") if n.startswith("repro-"))


@pytest.fixture(autouse=True)
def torn_down_pool():
    """Each test ends with the pool stopped and no segment left behind."""
    yield
    parallel.shutdown()
    assert parallel.active_segments() == ()
    assert shm_segments() == []


def random_circuit(seed: int, n_vars: int = 6, steps: int = 16) -> Circuit:
    rng = stable_rng(seed)
    c = Circuit()
    gates = [c.variable(f"v{i}") for i in range(n_vars)] + [c.true(), c.false()]
    for _ in range(rng.randint(4, steps)):
        op = rng.choice(["and", "or", "not"])
        if op == "not":
            gates.append(c.negation(rng.choice(gates)))
        else:
            picked = rng.sample(gates, rng.randint(2, min(4, len(gates))))
            gates.append(c.and_gate(picked) if op == "and" else c.or_gate(picked))
    c.set_output(gates[-1])
    return c


def world_matrix(compiled, rows: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return rng.random((rows, len(compiled.variables()))) < 0.5


class TestKnob:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "3")
        assert parallel._workers_from_env() == 3
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "auto")
        assert parallel._workers_from_env() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "junk")
        assert parallel._workers_from_env() == 0
        monkeypatch.delenv("REPRO_PARALLEL_WORKERS")
        assert parallel._workers_from_env() == 0

    def test_set_and_scope(self):
        before = parallel.parallel_workers()
        with parallel.parallel_workers_set(5):
            assert parallel.parallel_workers() == 5
            with parallel.parallel_workers_set(None):
                assert parallel.parallel_workers() == 0
        assert parallel.parallel_workers() == before

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            parallel.set_parallel_workers(-1)

    def test_should_shard_thresholds(self):
        with parallel.parallel_workers_set(2):
            assert parallel.should_shard(parallel.PARALLEL_MIN_ROWS)
            assert not parallel.should_shard(parallel.PARALLEL_MIN_ROWS - 1)
        with parallel.parallel_workers_set(1):
            assert not parallel.should_shard(10**6)

    def test_unavailable_without_numpy(self, monkeypatch):
        monkeypatch.setattr(compiled_module, "_np", None)
        assert not parallel.parallel_available()
        assert parallel._effective_workers(4) == 0
        assert not parallel.should_shard(10**6, workers=4)


class TestSharedBuffers:
    def test_roundtrip_and_attach(self):
        arrays = {
            "a": np.arange(7, dtype=np.int32),
            "b": np.linspace(0.0, 1.0, 5),
            "out": ((3,), np.bool_),
        }
        buffers = parallel.SharedBuffers(arrays, meta={"tag": 42})
        try:
            assert buffers.shm.name in parallel.active_segments()
            shm, meta, views = parallel.SharedBuffers.attach(buffers.manifest)
            assert meta["tag"] == 42
            assert np.array_equal(views["a"], np.arange(7))
            assert np.allclose(views["b"], np.linspace(0.0, 1.0, 5))
            views["out"][:] = True  # attached view writes land in the segment
            views = None
            shm.close()
            assert buffers.arrays["out"].all()
        finally:
            buffers.close()
        assert buffers.shm.name not in parallel.active_segments()
        buffers.close()  # idempotent

    def test_plan_segment_unlinked_on_circuit_gc(self):
        compiled = compile_circuit(random_circuit(3))
        name = parallel._plan_handle(compiled).shm.name
        assert parallel._plan_handle(compiled).shm.name == name  # cached
        assert name in parallel.active_segments()
        del compiled
        gc.collect()
        assert name not in parallel.active_segments()
        assert name not in shm_segments()


class TestShardedMatrixPasses:
    # Bit-identical agreement of the sharded passes with the in-process
    # kernels (at 0/1/2/4 workers, over the whole scenario corpus) lives in
    # the cross-engine conformance matrix (tests/test_conformance.py);
    # this class keeps the pool-specific routing and failure behaviour.

    def test_empty_batch(self):
        compiled = compile_circuit(random_circuit(13))
        matrix = np.empty((0, len(compiled.variables())), dtype=bool)
        assert parallel.evaluate_batch_sharded(compiled, matrix, workers=2).size == 0

    def test_wrong_width_rejected(self):
        compiled = compile_circuit(random_circuit(14))
        with pytest.raises(ReproError, match="world matrix"):
            parallel.evaluate_batch_sharded(
                compiled, np.zeros((4, len(compiled.variables()) + 1), dtype=bool),
                workers=2,
            )

    def test_evaluate_batch_routes_through_pool(self, monkeypatch):
        from repro.circuits import distributed

        compiled = compile_circuit(random_circuit(15))
        matrix = world_matrix(compiled, parallel.PARALLEL_MIN_ROWS + 17)
        # Pin the distributed knob off: it outranks the pool, and this test
        # asserts specifically that the *pool* tier handled the batch.
        # Elastic members extend the empty default (the CI distributed job
        # keeps one REGISTERed worker around), so neutralize those too.
        monkeypatch.setattr(distributed, "registered_hosts", lambda: ())
        with distributed.distributed_hosts_set(()):
            serial = compiled.evaluate_batch(matrix)
            with parallel.parallel_workers_set(2):
                assert compiled.evaluate_batch(matrix) == serial
                assert parallel.pool_processes() != ()  # really went through the pool
            float_matrix = np.random.default_rng(2).random(matrix.shape)
            serial_probs = compiled.probability_batch(float_matrix)
            with parallel.parallel_workers_set(2):
                assert compiled.probability_batch(float_matrix) == serial_probs


class TestFusedSampling:
    def test_monte_carlo_identical_across_worker_counts(self, monkeypatch):
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(21))
        marginals = [0.2 + 0.1 * (i % 5) for i in range(len(compiled.variables()))]
        hits = {
            workers: parallel.monte_carlo_hits(
                compiled, marginals, samples=500, seed=9, workers=workers
            )
            for workers in (0, 1, 2, 4)
        }
        assert len(set(hits.values())) == 1
        # and deterministic across repeated calls with a reused pool
        assert hits[2] == parallel.monte_carlo_hits(
            compiled, marginals, samples=500, seed=9, workers=2
        )

    def test_karp_luby_identical_across_worker_counts(self, monkeypatch):
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        membership = np.array([[1, 0, 1, 0], [0, 1, 1, 0], [1, 1, 0, 1]], dtype=np.int32)
        probs = np.array([0.3, 0.5, 0.2, 0.4])
        weights = [0.06, 0.1, 0.06]
        hits = {
            workers: parallel.karp_luby_hits(
                membership, probs, weights, samples=400, seed=4, workers=workers
            )
            for workers in (0, 2, 4)
        }
        assert len(set(hits.values())) == 1

    def test_baselines_respect_workers_argument_and_knob(self, monkeypatch):
        from repro.baselines import karp_luby_probability, monte_carlo_probability
        from repro.instances import TIDInstance, fact
        from repro.queries import atom, cq, variables

        monkeypatch.setattr(parallel, "MC_SHARD", 128)
        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        tid = TIDInstance(
            {fact("R", 1): 0.6, fact("S", 1, 2): 0.5, fact("T", 2): 0.8,
             fact("R", 3): 0.2, fact("S", 3, 2): 0.7}
        )
        serial = monte_carlo_probability(query, tid, samples=600, seed=1, workers=0)
        assert monte_carlo_probability(query, tid, samples=600, seed=1, workers=2) == serial
        with parallel.parallel_workers_set(2):
            assert monte_carlo_probability(query, tid, samples=600, seed=1) == serial
        kl_serial = karp_luby_probability(query, tid, samples=600, seed=1, workers=0)
        assert karp_luby_probability(query, tid, samples=600, seed=1, workers=2) == kl_serial


class TestPoolLifecycle:
    def test_pool_reused_across_calls(self, monkeypatch):
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(31))
        marginals = [0.5] * len(compiled.variables())
        parallel.monte_carlo_hits(compiled, marginals, 300, seed=0, workers=2)
        pids = parallel.pool_processes()
        assert len(pids) == 2
        parallel.monte_carlo_hits(compiled, marginals, 300, seed=1, workers=2)
        assert parallel.pool_processes() == pids

    def test_pool_rebuilt_after_worker_killed(self, monkeypatch):
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(32))
        marginals = [0.4] * len(compiled.variables())
        before = parallel.monte_carlo_hits(compiled, marginals, 400, seed=2, workers=2)
        pids = parallel.pool_processes()
        os.kill(pids[0], signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and parallel._POOL.alive():
            time.sleep(0.05)
        assert not parallel._POOL.alive()
        # Next call notices the dead worker, rebuilds, and still agrees.
        after = parallel.monte_carlo_hits(compiled, marginals, 400, seed=2, workers=2)
        assert after == before
        assert parallel.pool_processes() != pids

    def test_worker_death_mid_run_raises_and_cleans(self):
        with pytest.raises(ReproError, match="died mid-run"):
            parallel._run_tasks([("exit", ())], workers=2)
        assert parallel.pool_processes() == ()  # pool was shut down
        # Per-call buffers are scoped in ``finally``: a crash while a shared
        # matrix is in flight must not leak its segment.
        compiled = compile_circuit(random_circuit(33))
        matrix = world_matrix(compiled, 300)
        original_run = parallel.WorkerPool.run

        def run_then_die(pool, tasks):
            original_run(pool, tasks)
            raise ReproError("simulated mid-collection failure")

        parallel.WorkerPool.run = run_then_die
        try:
            with pytest.raises(ReproError, match="simulated"):
                parallel.evaluate_batch_sharded(compiled, matrix, workers=2)
        finally:
            parallel.WorkerPool.run = original_run
        assert [n for n in parallel.active_segments()
                if n.startswith(parallel.BUFFER_PREFIX)] == []

    def test_worker_error_propagates_without_killing_pool(self):
        with pytest.raises(ReproError, match="worker failed"):
            parallel._run_tasks([("no-such-kind", ())], workers=2)

    def test_failed_run_does_not_poison_the_next_one(self, monkeypatch):
        # A failing shard makes run() raise while sibling shards are still
        # in flight; their late results must not surface in the next call.
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(34))
        marginals = [0.5] * len(compiled.variables())
        manifest = parallel._plan_handle(compiled).manifest
        probs32 = np.asarray(marginals, dtype=np.float32)
        good = ("mc", (manifest, probs32, 0, 0, 64))
        with pytest.raises(ReproError, match="worker failed"):
            parallel._run_tasks([("no-such-kind", ()), good, good, good], workers=2)
        time.sleep(0.3)  # let the leftover shards finish and enqueue results
        expected = parallel.monte_carlo_hits(compiled, marginals, 300, seed=5, workers=0)
        assert parallel.monte_carlo_hits(
            compiled, marginals, 300, seed=5, workers=2
        ) == expected

    def test_shutdown_is_idempotent(self):
        parallel.shutdown()
        parallel.shutdown()
        assert parallel.pool_processes() == ()


class TestSerialFallbackWarning:
    def test_warns_once_per_process(self, recwarn):
        # A pool that is unavailable on every call must not spam a warning
        # per batch: the latch fires once, then stays quiet until re-armed.
        parallel.reset_serial_fallback_warning()
        parallel.warn_serial_fallback("backend degraded")
        parallel.warn_serial_fallback("backend degraded")
        parallel.warn_serial_fallback("backend degraded again")
        messages = [str(w.message) for w in recwarn.list
                    if "degraded" in str(w.message)]
        assert len(messages) == 1
        assert "once per process" in messages[0]
        parallel.reset_serial_fallback_warning()
        parallel.warn_serial_fallback("backend degraded later")
        assert sum(
            "degraded" in str(w.message) for w in recwarn.list
        ) == 2  # re-armed explicitly: exactly one more

    def test_failing_backend_warns_once_through_evaluate_batch(self, monkeypatch):
        # Route big batches at a pool that always fails: every call must
        # still return correct results, and only the first may warn.
        import warnings as warnings_module

        from repro.circuits import distributed

        compiled = compile_circuit(random_circuit(16))
        matrix = world_matrix(compiled, parallel.PARALLEL_MIN_ROWS + 3)
        # Pin the pool tier on: empty static knob plus no elastic members
        # (the CI distributed job keeps one REGISTERed worker around).
        monkeypatch.setattr(distributed, "registered_hosts", lambda: ())
        with distributed.distributed_hosts_set(()):
            serial = compiled.evaluate_batch(matrix)

            def broken_pass(*_args, **_kwargs):
                raise ReproError("injected pool failure")

            monkeypatch.setattr(parallel, "_sharded_matrix_pass", broken_pass)
            parallel.reset_serial_fallback_warning()
            with parallel.parallel_workers_set(2):
                with warnings_module.catch_warnings(record=True) as caught:
                    warnings_module.simplefilter("always")
                    assert compiled.evaluate_batch(matrix) == serial
                    assert compiled.evaluate_batch(matrix) == serial
        relevant = [w for w in caught if "falling back" in str(w.message)]
        assert len(relevant) == 1
