"""Boolean circuits as hash-consed gate DAGs.

The paper's pipeline represents uncertainty annotations and query lineages as
*circuits* rather than formulas: circuits share common subexpressions, and the
treewidth of the circuit (not of an equivalent formula) is what drives the
tractability of probability computation (Theorem 2).

A :class:`Circuit` is a mutable arena of immutable gates. Gates are identified
by integer ids; building the same gate twice returns the same id
(hash-consing), which keeps lineage circuits compact.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.util import ReproError, check

VAR = "var"
AND = "and"
OR = "or"
NOT = "not"
CONST = "const"

_KINDS = frozenset({VAR, AND, OR, NOT, CONST})

# Gate kind codes of the flat compiled IR (see ``compiled.py``, which
# re-exports them). They are maintained incrementally on the arena so the
# vectorized lowering can read the whole circuit as four flat numeric
# arrays instead of touching every ``Gate`` object again.
K_FALSE = 0
K_TRUE = 1
K_VAR = 2
K_NOT = 3
K_AND = 4
K_OR = 5

_KIND_CODE = {VAR: K_VAR, NOT: K_NOT, AND: K_AND, OR: K_OR}

# The lowering reinterprets these buffers as little-endian int32/int8; all
# supported CPython platforms satisfy this (checked once at import).
check(array("i").itemsize == 4, "platform array('i') is not 32-bit")
check(array("b").itemsize == 1, "platform array('b') is not 8-bit")


@dataclass(frozen=True)
class Gate:
    """One circuit gate: a kind, an optional payload, and input gate ids.

    ``payload`` is the variable name for ``VAR`` gates and the Boolean value
    for ``CONST`` gates; it is ``None`` otherwise.
    """

    kind: str
    payload: object
    inputs: tuple[int, ...]


class Circuit:
    """A Boolean circuit: an arena of gates plus a designated output.

    >>> c = Circuit()
    >>> g = c.and_gate([c.variable("x"), c.negation(c.variable("y"))])
    >>> c.set_output(g)
    >>> c.evaluate({"x": True, "y": False})
    True

    The flat mirrors (kind codes, variable slots, CSR inputs, levels) are
    the authoritative arena: :meth:`append_variables` and
    :meth:`append_gates` extend *only* them, so bulk producers (the
    columnar provenance builder) never create per-gate objects. The
    ``Gate`` list and the hash-consing table are materialized lazily the
    first time a per-gate consumer needs them.
    """

    def __init__(self) -> None:
        self._gates: list[Gate] = []
        self._intern: dict[tuple, int] = {}
        self.output: int | None = None
        #: Mutation counter; lets :func:`repro.circuits.compile_circuit`
        #: cache the compiled form and recompile only after changes.
        self.version: int = 0
        #: ``(version, output) -> CompiledCircuit`` memo maintained by
        #: :func:`repro.circuits.compile_circuit` (bounded, insertion-LRU).
        self._compiled_cache: dict = {}
        # Flat mirrors of the gate list, appended in lockstep by ``_add``:
        # one kind code and variable slot per gate, plus the inputs in CSR
        # form. The vectorized lowering and the plan-cache fingerprint read
        # these directly — no per-gate Python objects on the hot path.
        self._kind_codes = array("b")
        self._var_slots = array("i")
        self._inputs_flat = array("i")
        self._input_offsets = array("i", [0])
        #: Per-gate level of the evaluation schedule, maintained
        #: incrementally: a gate's level depends only on its input cone
        #: (leaves at 0, everything else one past its deepest input), so it
        #: never changes after the append-only arena creates the gate. The
        #: lowering gathers its level schedule from here instead of running
        #: a depth pass over the whole circuit.
        self._gate_levels = array("i")
        #: Interned variable names by arena slot (creation order, which is
        #: also first-topological-occurrence order for any output).
        self._slot_names: list[str] = []
        self._slot_of_name: dict[str, int] = {}
        #: Gate id of each slot's VAR gate (slot → gate id), so bulk
        #: variable appends can dedup without the hash-consing table.
        self._var_gates = array("i")

    # ------------------------------------------------------------------ #
    # construction

    def _materialize(self) -> None:
        """Build ``Gate`` objects (and intern keys) for bulk-appended gates.

        Bulk appends extend only the flat mirrors; the first per-gate
        consumer (``gate``, ``evaluate``, ``copy_into``, further
        hash-consed appends, ...) pays one linear pass here. Materialized
        gates intern as usual, though raw bulk appends may have created
        duplicates — later keys win, which only affects compactness, never
        semantics.
        """
        gates = self._gates
        size = len(self._kind_codes)
        if len(gates) == size:
            return
        intern = self._intern
        offsets = self._input_offsets
        flat = self._inputs_flat
        slot_names = self._slot_names
        for gid in range(len(gates), size):
            code = self._kind_codes[gid]
            inputs = tuple(flat[offsets[gid] : offsets[gid + 1]])
            if code == K_VAR:
                kind, payload = VAR, slot_names[self._var_slots[gid]]
            elif code == K_NOT:
                kind, payload = NOT, None
            elif code == K_AND:
                kind, payload = AND, None
            elif code == K_OR:
                kind, payload = OR, None
            else:
                kind, payload = CONST, code == K_TRUE
            gates.append(Gate(kind, payload, inputs))
            intern[(kind, payload, inputs)] = gid

    def _add(self, kind: str, payload: object, inputs: tuple[int, ...]) -> int:
        self._materialize()
        key = (kind, payload, inputs)
        existing = self._intern.get(key)
        if existing is not None:
            return existing
        for g in inputs:
            check(0 <= g < len(self._gates), f"unknown input gate {g}")
        gate_id = len(self._gates)
        self._gates.append(Gate(kind, payload, inputs))
        self._intern[key] = gate_id
        slot = -1
        if kind == VAR:
            # Hash-consing guarantees one VAR gate per name, so the slot is
            # fresh exactly when the gate is.
            slot = len(self._slot_names)
            self._slot_of_name[payload] = slot  # type: ignore[index]
            self._slot_names.append(payload)  # type: ignore[arg-type]
            self._var_gates.append(gate_id)
            code = K_VAR
        elif kind == CONST:
            code = K_TRUE if payload else K_FALSE
        else:
            code = _KIND_CODE[kind]
        self._kind_codes.append(code)
        self._var_slots.append(slot)
        self._inputs_flat.extend(inputs)
        self._input_offsets.append(len(self._inputs_flat))
        levels = self._gate_levels
        if code <= K_VAR:
            levels.append(0)
        else:
            levels.append(
                1 + max((levels[g] for g in inputs), default=0)
            )
        self.version += 1
        return gate_id

    # ------------------------------------------------------------------ #
    # bulk construction (flat mirrors only — no Gate objects)

    def append_variables(self, names: Iterable[str]) -> array:
        """Bulk-create VAR gates; returns one gate id per requested name.

        Names already interned resolve to their existing gate (same
        dedup guarantee as :meth:`variable`, via the slot table rather
        than the hash-consing dict); fresh names append new leaves to the
        flat mirrors only.
        """
        slot_of = self._slot_of_name
        slot_names = self._slot_names
        var_gates = self._var_gates
        kind_codes = self._kind_codes
        var_slots = self._var_slots
        offsets = self._input_offsets
        levels = self._gate_levels
        flat_len = len(self._inputs_flat)
        if not isinstance(names, (list, tuple)):
            names = list(names)
        # Bulk fast path: when the whole batch is distinct fresh names (the
        # witness-DNF case — names come out of a np.unique pass over fact
        # ids), the slot table grows by one dict.update and every mirror by
        # one extend, with no per-name work at all.
        base_gid = len(kind_codes)
        base_slot = len(slot_names)
        count = len(names)
        fresh = dict(zip(names, range(base_slot, base_slot + count)))
        if len(fresh) == count and (
            not slot_of or slot_of.keys().isdisjoint(fresh)
        ):
            slot_of.update(fresh)
            slot_names.extend(names)
            out = array("i")
            try:
                import numpy as np
            except ImportError:
                np = None
            if np is not None and count:
                gids = np.arange(base_gid, base_gid + count, dtype=np.int32)
                out.frombytes(gids.tobytes())
                var_gates.frombytes(gids.tobytes())
                var_slots.frombytes(
                    np.arange(
                        base_slot, base_slot + count, dtype=np.int32
                    ).tobytes()
                )
                offsets.frombytes(
                    np.full(count, flat_len, dtype=np.int32).tobytes()
                )
            else:
                out.extend(range(base_gid, base_gid + count))
                var_gates.extend(range(base_gid, base_gid + count))
                var_slots.extend(range(base_slot, base_slot + count))
                offsets.extend([flat_len] * count)
            kind_codes.frombytes(bytes([K_VAR]) * count)
            levels.frombytes(bytes(levels.itemsize * count))
            if count:
                self.version += 1
            return out
        out = array("i")
        appended = 0
        for name in names:
            slot = slot_of.get(name)
            if slot is not None:
                out.append(var_gates[slot])
                continue
            gid = len(kind_codes)
            slot = len(slot_names)
            slot_of[name] = slot
            slot_names.append(name)
            var_gates.append(gid)
            kind_codes.append(K_VAR)
            var_slots.append(slot)
            offsets.append(flat_len)
            levels.append(0)
            out.append(gid)
            appended += 1
        if appended:
            self.version += 1
        return out

    def append_gates(self, kinds, inputs, offsets) -> range:
        """Bulk-append operator gates in CSR form; returns their gate ids.

        ``kinds`` holds one kind code (``K_NOT``/``K_AND``/``K_OR``) or
        kind string per gate — or a single code/string, broadcast to every
        row; ``inputs``/``offsets`` are the concatenated input gate ids
        and the ``n+1`` row offsets (numpy arrays or any int sequences).
        Inputs may reference earlier gates in the same batch. Unlike :meth:`and_gate`/:meth:`or_gate` this neither
        constant-folds nor hash-conses — producers feed it pre-folded
        rows (each with at least one input); in exchange the arena grows
        by pure array extends and the vectorized lowering can consume the
        result without ever materializing ``Gate`` objects.
        """
        try:
            import numpy as np
        except ImportError:
            np = None
        base = len(self._kind_codes)
        if isinstance(kinds, str):
            kinds = _KIND_CODE[kinds]
        if isinstance(kinds, int):
            kind_list = [kinds] * (len(offsets) - 1)
        else:
            kind_list = [
                k if isinstance(k, int) else _KIND_CODE[k] for k in kinds
            ]
        count = len(kind_list)
        if count == 0:
            return range(base, base)
        for code in set(kind_list):
            check(
                code in (K_NOT, K_AND, K_OR),
                "append_gates takes operator gates only "
                "(use append_variables/constant for leaves)",
            )
        check(len(offsets) == count + 1, "offsets must have one entry per gate + 1")
        flat_base = len(self._inputs_flat)
        if np is not None:
            inputs64 = np.asarray(inputs, dtype=np.int64)
            offsets64 = np.asarray(offsets, dtype=np.int64)
            row_ids = base + np.arange(count, dtype=np.int64)
            counts = np.diff(offsets64)
            check(bool((counts >= 1).all()), "append_gates rows need >= 1 input")
            check(
                int(offsets64[0]) == 0 and int(offsets64[-1]) == len(inputs64),
                "offsets must span the inputs array",
            )
            bound = np.repeat(row_ids, counts)
            check(
                bool((inputs64 >= 0).all() and (inputs64 < bound).all()),
                "append_gates inputs must reference earlier gates",
            )
            self._kind_codes.frombytes(
                np.asarray(kind_list, dtype=np.int8).tobytes()
            )
            self._var_slots.frombytes(
                np.full(count, -1, dtype=np.int32).tobytes()
            )
            self._inputs_flat.frombytes(inputs64.astype(np.int32).tobytes())
            self._input_offsets.frombytes(
                (flat_base + offsets64[1:]).astype(np.int32).tobytes()
            )
            # Levels: existing inputs resolve in one gather; in-batch
            # references resolve in waves (bulk producers layer their
            # batches, so this converges in one or two rounds).
            # Copy: a frombuffer view would pin the array against the
            # frombytes extend below.
            existing = np.frombuffer(self._gate_levels, dtype=np.int32)[
                :base
            ].copy()
            batch_levels = np.full(count, -1, dtype=np.int64)
            in_batch = inputs64 >= base
            input_levels = np.where(
                in_batch, -1, existing[np.minimum(inputs64, base - 1)]
                if base
                else -1,
            )
            starts = offsets64[:-1]
            pending = np.arange(count, dtype=np.int64)
            while pending.size:
                input_levels[in_batch] = batch_levels[
                    inputs64[in_batch] - base
                ]
                row_min = np.minimum.reduceat(input_levels, starts)[pending]
                row_max = np.maximum.reduceat(input_levels, starts)[pending]
                ready = row_min >= 0
                check(bool(ready.any()), "append_gates batch has a dependency cycle")
                batch_levels[pending[ready]] = 1 + row_max[ready]
                pending = pending[~ready]
            self._gate_levels.frombytes(
                batch_levels.astype(np.int32).tobytes()
            )
        else:
            offsets_list = [int(o) for o in offsets]
            inputs_list = [int(i) for i in inputs]
            check(
                offsets_list[0] == 0 and offsets_list[-1] == len(inputs_list),
                "offsets must span the inputs array",
            )
            levels = self._gate_levels
            for row, code in enumerate(kind_list):
                gid = base + row
                row_inputs = inputs_list[offsets_list[row] : offsets_list[row + 1]]
                check(len(row_inputs) >= 1, "append_gates rows need >= 1 input")
                for g in row_inputs:
                    check(
                        0 <= g < gid,
                        "append_gates inputs must reference earlier gates",
                    )
                self._kind_codes.append(code)
                self._var_slots.append(-1)
                self._inputs_flat.extend(row_inputs)
                self._input_offsets.append(len(self._inputs_flat))
                levels.append(1 + max(levels[g] for g in row_inputs))
        self.version += 1
        return range(base, base + count)

    def variable(self, name: str) -> int:
        """Return the gate for input variable ``name`` (created on demand)."""
        return self._add(VAR, name, ())

    def constant(self, value: bool) -> int:
        """Return the constant gate for ``value``."""
        return self._add(CONST, bool(value), ())

    def true(self) -> int:
        """Return the constant-true gate."""
        return self.constant(True)

    def false(self) -> int:
        """Return the constant-false gate."""
        return self.constant(False)

    def and_gate(self, inputs: Iterable[int]) -> int:
        """Return a conjunction gate over ``inputs`` with constant folding."""
        size = len(self._kind_codes)
        codes = self._kind_codes
        kept: list[int] = []
        for g in inputs:
            check(0 <= g < size, f"unknown input gate {g}")
            code = codes[g]
            if code <= K_TRUE:
                if code == K_FALSE:
                    return self.false()
                continue
            kept.append(g)
        if not kept:
            return self.true()
        if len(kept) == 1:
            return kept[0]
        return self._add(AND, None, tuple(kept))

    def or_gate(self, inputs: Iterable[int]) -> int:
        """Return a disjunction gate over ``inputs`` with constant folding."""
        size = len(self._kind_codes)
        codes = self._kind_codes
        kept: list[int] = []
        for g in inputs:
            check(0 <= g < size, f"unknown input gate {g}")
            code = codes[g]
            if code <= K_TRUE:
                if code == K_TRUE:
                    return self.true()
                continue
            kept.append(g)
        if not kept:
            return self.false()
        if len(kept) == 1:
            return kept[0]
        return self._add(OR, None, tuple(kept))

    def negation(self, input_gate: int) -> int:
        """Return the negation of ``input_gate`` (double negations cancel)."""
        check(
            0 <= input_gate < len(self._kind_codes),
            f"unknown input gate {input_gate}",
        )
        code = self._kind_codes[input_gate]
        if code <= K_TRUE:
            return self.constant(code == K_FALSE)
        if code == K_NOT:
            return self._inputs_flat[self._input_offsets[input_gate]]
        return self._add(NOT, None, (input_gate,))

    def set_output(self, gate_id: int) -> None:
        """Designate ``gate_id`` as the circuit output."""
        check(0 <= gate_id < len(self._kind_codes), f"unknown gate {gate_id}")
        self.output = gate_id

    # ------------------------------------------------------------------ #
    # inspection

    def gate(self, gate_id: int) -> Gate:
        """Return the gate object with the given id."""
        if gate_id >= len(self._gates):
            self._materialize()
        return self._gates[gate_id]

    def __len__(self) -> int:
        return len(self._kind_codes)

    def gate_ids(self) -> range:
        """Return all gate ids in creation (hence topological) order."""
        return range(len(self._kind_codes))

    def variables(self) -> frozenset[str]:
        """Return the names of all variable gates reachable from the output."""
        if self.output is None:
            # Every interned slot has exactly one VAR gate.
            return frozenset(self._slot_names)
        codes = self._kind_codes
        slots = self._var_slots
        names = self._slot_names
        return frozenset(
            names[slots[gid]]
            for gid in self.reachable_from_output()
            if codes[gid] == K_VAR
        )

    def reachable_from_output(self) -> list[int]:
        """Return gate ids reachable from the output, in topological order."""
        check(self.output is not None, "circuit has no output gate")
        flat = self._inputs_flat
        offsets = self._input_offsets
        seen: set[int] = set()
        stack = [self.output]
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)  # type: ignore[arg-type]
            stack.extend(flat[offsets[gid] : offsets[gid + 1]])  # type: ignore[index]
        return sorted(seen)  # creation order is topological

    def max_fan_in(self) -> int:
        """Return the largest number of inputs of any gate."""
        offsets = self._input_offsets
        return max(
            (offsets[i + 1] - offsets[i] for i in range(len(offsets) - 1)),
            default=0,
        )

    # ------------------------------------------------------------------ #
    # evaluation

    def evaluate(self, valuation: Mapping[str, bool], gate_id: int | None = None) -> bool:
        """Evaluate the circuit (or one gate) under a variable ``valuation``."""
        target = self.output if gate_id is None else gate_id
        check(target is not None, "circuit has no output gate")
        self._materialize()
        needed: set[int] = set()
        stack = [target]
        while stack:
            gid = stack.pop()
            if gid in needed:
                continue
            needed.add(gid)  # type: ignore[arg-type]
            stack.extend(self._gates[gid].inputs)  # type: ignore[index]
        values: dict[int, bool] = {}
        for gid in sorted(needed):
            gate = self._gates[gid]
            if gate.kind == VAR:
                if gate.payload not in valuation:
                    raise ReproError(f"valuation is missing variable {gate.payload!r}")
                values[gid] = bool(valuation[gate.payload])  # type: ignore[index]
            elif gate.kind == CONST:
                values[gid] = bool(gate.payload)
            elif gate.kind == NOT:
                values[gid] = not values[gate.inputs[0]]
            elif gate.kind == AND:
                values[gid] = all(values[i] for i in gate.inputs)
            elif gate.kind == OR:
                values[gid] = any(values[i] for i in gate.inputs)
            else:  # pragma: no cover - guarded by construction
                raise ReproError(f"unknown gate kind {gate.kind!r}")
        return values[target]  # type: ignore[index]

    # ------------------------------------------------------------------ #
    # transformation

    def copy_into(self, target: "Circuit", substitution: Mapping[str, int] | None = None,
                  roots: Iterable[int] | None = None) -> dict[int, int]:
        """Copy gates into ``target``, optionally substituting variables.

        ``substitution`` maps variable names to gate ids *of the target
        circuit*; variables not in the mapping are copied as variables. Only
        gates reachable from ``roots`` (default: the output) are copied.
        Returns the id translation map. This implements circuit composition,
        used to plug annotation circuits into lineage circuits (pcc-instances).
        """
        substitution = substitution or {}
        self._materialize()
        if roots is None:
            check(self.output is not None, "circuit has no output gate")
            roots = [self.output]  # type: ignore[list-item]
        needed: set[int] = set()
        stack = list(roots)
        while stack:
            gid = stack.pop()
            if gid in needed:
                continue
            needed.add(gid)
            stack.extend(self._gates[gid].inputs)
        translation: dict[int, int] = {}
        for gid in sorted(needed):
            gate = self._gates[gid]
            if gate.kind == VAR:
                if gate.payload in substitution:
                    translation[gid] = substitution[gate.payload]  # type: ignore[index]
                else:
                    translation[gid] = target.variable(gate.payload)  # type: ignore[arg-type]
            elif gate.kind == CONST:
                translation[gid] = target.constant(bool(gate.payload))
            elif gate.kind == NOT:
                translation[gid] = target.negation(translation[gate.inputs[0]])
            elif gate.kind == AND:
                translation[gid] = target.and_gate([translation[i] for i in gate.inputs])
            else:
                translation[gid] = target.or_gate([translation[i] for i in gate.inputs])
        return translation

    def restricted(self, partial: Mapping[str, bool]) -> "Circuit":
        """Return a simplified copy with variables of ``partial`` fixed.

        Conditioning on an event literal is this operation followed by a
        renormalization; note the width of the circuit never increases.
        """
        result = Circuit()
        substitution = {name: result.constant(value) for name, value in partial.items()}
        translation = self.copy_into(result, substitution)
        if self.output is not None:
            result.set_output(translation[self.output])
        return result

    def binarized(self) -> "Circuit":
        """Return an equivalent circuit in which every gate has fan-in ≤ 2.

        Large AND/OR gates become balanced trees of binary gates. This keeps
        message-passing bags small: a factor's scope is a gate plus its
        inputs, so fan-in directly lower-bounds the junction-tree width.
        """
        result = Circuit()
        self._materialize()
        translation: dict[int, int] = {}
        roots = self.reachable_from_output() if self.output is not None else list(self.gate_ids())
        for gid in roots:
            gate = self._gates[gid]
            if gate.kind == VAR:
                translation[gid] = result.variable(gate.payload)  # type: ignore[arg-type]
            elif gate.kind == CONST:
                translation[gid] = result.constant(bool(gate.payload))
            elif gate.kind == NOT:
                translation[gid] = result.negation(translation[gate.inputs[0]])
            else:
                children = [translation[i] for i in gate.inputs]
                combiner = result.and_gate if gate.kind == AND else result.or_gate
                while len(children) > 2:
                    paired = [
                        combiner(children[i : i + 2]) for i in range(0, len(children), 2)
                    ]
                    children = paired
                translation[gid] = combiner(children)
        if self.output is not None:
            result.set_output(translation[self.output])
        return result

    def pruned(self) -> "Circuit":
        """Return a copy containing only gates reachable from the output."""
        result = Circuit()
        translation = self.copy_into(result)
        result.set_output(translation[self.output])  # type: ignore[index]
        return result

    def __repr__(self) -> str:
        return f"Circuit(gates={len(self)}, output={self.output})"


def from_formula(formula, circuit: Circuit | None = None) -> tuple[Circuit, int]:
    """Convert a :class:`repro.events.Formula` into circuit gates.

    Returns the circuit and the id of the gate representing the formula.
    """
    from repro.events import formulas as f

    circuit = circuit if circuit is not None else Circuit()

    def build(node) -> int:
        if isinstance(node, f.Const):
            return circuit.constant(node.value)
        if isinstance(node, f.Var):
            return circuit.variable(node.name)
        if isinstance(node, f.Not):
            return circuit.negation(build(node.child))
        if isinstance(node, f.And):
            return circuit.and_gate([build(c) for c in node.children])
        if isinstance(node, f.Or):
            return circuit.or_gate([build(c) for c in node.children])
        raise ReproError(f"unknown formula node {node!r}")

    gate = build(formula)
    return circuit, gate
