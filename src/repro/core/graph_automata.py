"""Hand-written deterministic automata for MSO-expressible graph properties.

Theorem 1 covers all of MSO, strictly more than conjunctive queries. General
MSO-to-automaton compilation is non-elementary (the paper flags this as the
combined-complexity obstacle), so — like practical systems — we provide
directly-constructed automata for representative MSO/CMSO properties over an
uncertain binary edge relation:

- :class:`STConnectivityAutomaton` — "s and t are connected by present edges"
  (MSO, not FO-expressible);
- :class:`BipartiteAutomaton` — "the present subgraph is 2-colorable"
  (characterizes no-odd-cycle; MSO via set quantification over a color class);
- :class:`ParityAutomaton` — "the number of present facts of relation R is
  even/odd" (counting-MSO; regular over tree encodings).

All three follow the classic Courcelle-style state spaces: connectivity
tracks a partition of the bag, bipartiteness the set of feasible bag
colorings, parity a single bit.
"""

from __future__ import annotations

from repro.core.automaton import DecompositionAutomaton
from repro.instances.base import Fact
from repro.util import check


class STConnectivityAutomaton(DecompositionAutomaton):
    """Accepts iff ``source`` and ``target`` are connected via present edges.

    State: either the absorbing token ``DONE``, or a frozenset of *blocks*
    (frozensets) partitioning the live vertices — bag elements plus the
    tokens ``("src",)`` / ``("tgt",)`` that keep the terminals' components
    alive after the terminal vertices are forgotten. Blocks that lose all
    members and carry no token are dropped: they can never grow again.
    """

    DONE = "DONE"
    SRC = ("src",)
    TGT = ("tgt",)

    def __init__(self, source, target, relation: str = "E"):
        self.source = source
        self.target = target
        self.relation = relation

    def initial_state(self):
        if self.source == self.target:
            return self.DONE
        return frozenset()

    def _normalize(self, blocks: frozenset) -> object:
        for block in blocks:
            if self.SRC in block and self.TGT in block:
                return self.DONE
        return blocks

    def introduce(self, state, vertex, bag):
        if state == self.DONE:
            return state
        members = {vertex}
        if vertex == self.source:
            members.add(self.SRC)
        if vertex == self.target:
            members.add(self.TGT)
        merged = _merge_blocks(state | {frozenset(members)})
        return self._normalize(merged)

    def forget(self, state, vertex, bag):
        if state == self.DONE:
            return state
        # Invariant: blocks only contain current bag elements and tokens, so
        # removing the forgotten vertex leaves a valid block; an emptied block
        # is a component that can never grow again and is dropped.
        updated = frozenset(
            block - {vertex} for block in state if block - {vertex}
        )
        return self._normalize(updated)

    def join(self, left, right, bag):
        if left == self.DONE or right == self.DONE:
            return self.DONE
        return self._normalize(_merge_blocks(left | right))

    def read(self, state, fact: Fact, bag):
        if state == self.DONE or fact.relation != self.relation or fact.arity != 2:
            return state, state
        a, b = fact.args
        if a == b:
            return state, state
        merged = _merge_blocks(state | {frozenset({a, b})})
        return state, self._normalize(merged)

    def accepts(self, state) -> bool:
        return state == self.DONE


def _merge_blocks(blocks: frozenset) -> frozenset:
    """Merge all blocks sharing a member (transitive closure)."""
    pending = [set(b) for b in blocks]
    merged: list[set] = []
    while pending:
        current = pending.pop()
        changed = True
        while changed:
            changed = False
            for other in list(pending):
                if current & other:
                    current |= other
                    pending.remove(other)
                    changed = True
            for other in list(merged):
                if current & other:
                    current |= other
                    merged.remove(other)
                    changed = True
        merged.append(current)
    return frozenset(frozenset(b) for b in merged)


class BipartiteAutomaton(DecompositionAutomaton):
    """Accepts iff the present subgraph (edges of ``relation``) is bipartite.

    State: the frozenset of feasible 2-colorings of the bag, each coloring a
    frozenset of ``(vertex, color)`` pairs, feasible meaning extendable to a
    proper 2-coloring of everything read below. Empty set = no coloring
    works = an odd cycle exists below.
    """

    def __init__(self, relation: str = "E"):
        self.relation = relation

    def initial_state(self):
        return frozenset({frozenset()})

    def introduce(self, state, vertex, bag):
        return frozenset(
            coloring | {(vertex, color)}
            for coloring in state
            for color in (0, 1)
        )

    def forget(self, state, vertex, bag):
        return frozenset(
            frozenset((v, c) for v, c in coloring if v != vertex) for coloring in state
        )

    def join(self, left, right, bag):
        return left & right

    def read(self, state, fact: Fact, bag):
        if fact.relation != self.relation or fact.arity != 2:
            return state, state
        a, b = fact.args
        if a == b:
            # A present self-loop makes the graph non-2-colorable.
            return state, frozenset()
        surviving = frozenset(
            coloring
            for coloring in state
            if dict(coloring).get(a) != dict(coloring).get(b)
        )
        return state, surviving

    def accepts(self, state) -> bool:
        return len(state) > 0


class EdgeConnectedAutomaton(DecompositionAutomaton):
    """Accepts iff the present edges form a connected subgraph (or none).

    "Connected" means: the subgraph induced by the present edges — ignoring
    isolated vertices — has at most one connected component. Classic
    Courcelle-style state: a partition of the *touched* bag vertices into
    blocks, plus the number of already-*closed* components (components whose
    vertices were all forgotten). Two closed components can never rejoin, so
    the state collapses to an absorbing REJECT as soon as the count exceeds
    one, or when a closed component coexists with an open block at the end.
    """

    REJECT = "REJECT"

    def __init__(self, relation: str = "E"):
        self.relation = relation

    def initial_state(self):
        return (frozenset(), 0)

    def introduce(self, state, vertex, bag):
        return state  # untouched vertices enter blocks only via edges

    def forget(self, state, vertex, bag):
        if state == self.REJECT:
            return state
        blocks, closed = state
        updated = set()
        for block in blocks:
            reduced = block - {vertex}
            if block != reduced and not reduced:
                closed += 1
                if closed > 1:
                    return self.REJECT
            elif reduced:
                updated.add(reduced)
        return (frozenset(updated), closed)

    def join(self, left, right, bag):
        if left == self.REJECT or right == self.REJECT:
            return self.REJECT
        left_blocks, left_closed = left
        right_blocks, right_closed = right
        closed = left_closed + right_closed
        if closed > 1:
            return self.REJECT
        return (_merge_blocks(left_blocks | right_blocks), closed)

    def read(self, state, fact: Fact, bag):
        if state == self.REJECT or fact.relation != self.relation or fact.arity != 2:
            return state, state
        blocks, closed = state
        a, b = fact.args
        merged = _merge_blocks(blocks | {frozenset({a, b})})
        return state, (merged, closed)

    def accepts(self, state) -> bool:
        if state == self.REJECT:
            return False
        blocks, closed = state
        # Root bag is empty, so every component has been closed by now.
        return not blocks and closed <= 1


class AllDegreesEvenAutomaton(DecompositionAutomaton):
    """Accepts iff every vertex has even degree in the present subgraph.

    The Eulerian-degree condition — counting-MSO with a per-vertex parity,
    and a second classic example (after :class:`ParityAutomaton`) of a
    property beyond first-order logic that the decomposition-automaton
    framework handles. State: a frozenset of ``(vertex, parity)`` pairs for
    the current bag; forgetting a vertex requires its parity to be even,
    else the run is dead (absorbing REJECT).
    """

    REJECT = "REJECT"

    def __init__(self, relation: str = "E"):
        self.relation = relation

    def initial_state(self):
        return frozenset()

    def introduce(self, state, vertex, bag):
        if state == self.REJECT:
            return state
        return state | {(vertex, 0)}

    def forget(self, state, vertex, bag):
        if state == self.REJECT:
            return state
        parity = dict(state)[vertex]
        if parity != 0:
            return self.REJECT
        return frozenset((v, p) for v, p in state if v != vertex)

    def join(self, left, right, bag):
        if left == self.REJECT or right == self.REJECT:
            return self.REJECT
        combined = dict(left)
        for v, p in right:
            combined[v] = (combined[v] + p) % 2
        return frozenset(combined.items())

    def read(self, state, fact: Fact, bag):
        if state == self.REJECT or fact.relation != self.relation or fact.arity != 2:
            return state, state
        a, b = fact.args
        if a == b:
            return state, state  # a self-loop adds 2 to the degree: no-op
        updated = dict(state)
        updated[a] = (updated[a] + 1) % 2
        updated[b] = (updated[b] + 1) % 2
        return state, frozenset(updated.items())

    def accepts(self, state) -> bool:
        return state != self.REJECT and all(p == 0 for _v, p in state)


class ParityAutomaton(DecompositionAutomaton):
    """Accepts iff the number of present facts of ``relation`` has ``parity``.

    ``parity`` is 0 for even, 1 for odd. A two-state automaton — the textbook
    example of a regular (counting-MSO) property that is not first-order.
    """

    def __init__(self, relation: str, parity: int = 0):
        check(parity in (0, 1), "parity must be 0 (even) or 1 (odd)")
        self.relation = relation
        self.parity = parity

    def initial_state(self):
        return 0

    def introduce(self, state, vertex, bag):
        return state

    def forget(self, state, vertex, bag):
        return state

    def join(self, left, right, bag):
        return (left + right) % 2

    def read(self, state, fact: Fact, bag):
        if fact.relation != self.relation:
            return state, state
        return state, (state + 1) % 2

    def accepts(self, state) -> bool:
        return state == self.parity
