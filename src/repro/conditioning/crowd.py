"""Crowd question selection: which question most reduces uncertainty?

The paper's Section 4 iterative scenario: at each step, ask a (noisy) human
about one event, incorporate the answer by conditioning, and repeat — picking
the question by value of information. We implement the exact greedy policy:
ask the event maximizing the expected reduction in the entropy of the target
query's answer (mutual information between the event and the query), with a
simulated crowd oracle of configurable reliability. Experiment E9 compares
it against asking random questions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.conditioning.condition import ConditionedInstance
from repro.instances.pcc import PCCInstance
from repro.util import check, stable_rng


def binary_entropy(p: float) -> float:
    """Entropy (bits) of a Bernoulli(p) variable."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


class SimulatedCrowd:
    """A noisy oracle: answers event questions, lying with a fixed rate."""

    def __init__(self, truth: dict[str, bool], error_rate: float = 0.0, seed: int = 0):
        check(0.0 <= error_rate < 0.5, "error rate must be in [0, 0.5)")
        self.truth = dict(truth)
        self.error_rate = error_rate
        self._rng = stable_rng(seed)
        self.questions_asked = 0

    def ask(self, event: str) -> bool:
        """Answer a question about ``event`` (possibly incorrectly)."""
        check(event in self.truth, f"crowd cannot answer about {event!r}")
        self.questions_asked += 1
        answer = self.truth[event]
        if self._rng.random() < self.error_rate:
            answer = not answer
        return answer


@dataclass
class CrowdSessionStep:
    """One step of a crowd-conditioning session (for reporting)."""

    question: str
    answer: bool
    entropy_before: float
    entropy_after: float


@dataclass
class CrowdSession:
    """Outcome of a crowd-conditioning loop."""

    steps: list[CrowdSessionStep] = field(default_factory=list)
    final_probability: float = 0.0

    def entropies(self) -> list[float]:
        """Query-answer entropy trajectory (before first question ... after last)."""
        if not self.steps:
            return [binary_entropy(self.final_probability)]
        return [self.steps[0].entropy_before] + [s.entropy_after for s in self.steps]


def expected_entropy_after_asking(
    conditioned: ConditionedInstance, query, event: str, max_width: int = 24
) -> float:
    """Expected posterior entropy of the query if we ask about ``event``.

    Exact computation via four conditional WMCs (the answer is assumed
    truthful here; noise is handled by the session loop's repetition).
    """
    prior_evidence = conditioned.copy().evidence_probability(max_width=max_width)
    expected = 0.0
    for value in (True, False):
        branch = conditioned.copy()
        branch.observe_event(event, value)
        evidence = branch.evidence_probability(max_width=max_width)
        weight = evidence / prior_evidence if prior_evidence > 0 else 0.0
        if weight <= 0.0:
            continue
        posterior = branch.query_probability(query, max_width=max_width)
        expected += weight * binary_entropy(posterior)
    return expected


def choose_question_greedy(
    conditioned: ConditionedInstance,
    query,
    candidates: list[str],
    max_width: int = 24,
) -> str:
    """The candidate event minimizing expected posterior entropy."""
    check(len(candidates) > 0, "no candidate questions")
    return min(
        candidates,
        key=lambda e: (expected_entropy_after_asking(conditioned, query, e, max_width), e),
    )


def run_crowd_session(
    pcc: PCCInstance,
    query,
    crowd: SimulatedCrowd,
    budget: int,
    policy: str = "greedy",
    seed: int = 0,
    max_width: int = 24,
) -> CrowdSession:
    """Ask up to ``budget`` questions, conditioning after each answer.

    ``policy`` is ``"greedy"`` (exact value-of-information) or ``"random"``.
    Returns the entropy trajectory and the final conditional probability.
    """
    check(policy in ("greedy", "random"), "policy must be 'greedy' or 'random'")
    rng = stable_rng(seed)
    session = CrowdSession()
    conditioned = ConditionedInstance(pcc)
    remaining = sorted(crowd.truth)
    for _ in range(budget):
        if not remaining:
            break
        before = binary_entropy(conditioned.query_probability(query, max_width=max_width))
        if before == 0.0:
            break
        if policy == "greedy":
            question = choose_question_greedy(conditioned, query, remaining, max_width)
        else:
            question = remaining[rng.randrange(len(remaining))]
        answer = crowd.ask(question)
        conditioned.observe_event(question, answer)
        remaining.remove(question)
        after = binary_entropy(conditioned.query_probability(query, max_width=max_width))
        session.steps.append(CrowdSessionStep(question, answer, before, after))
    session.final_probability = conditioned.query_probability(query, max_width=max_width)
    return session
