"""Tractable query evaluation on PrXML documents via circuits.

The bottom-up (A, D) pattern computation is lifted from concrete trees to the
uncertain document: for every document node we build one circuit gate per
reachable match state, guarded by fresh independent choice variables (for
ind/mux) and by the document's global event variables (for cie).

For **local** models ({ind, mux, det}) the resulting circuit is deterministic
and decomposable over independent variables, so the probability is a single
linear pass (:func:`repro.circuits.probability_dd`) — the
Cohen–Kimelfeld–Sagiv tractability result the paper builds on. With **cie**
nodes, shared event variables break decomposability; the circuit is evaluated
by junction-tree message passing instead, which stays tractable exactly when
the events' scopes keep the circuit tree-like — the paper's bounded-scope
condition (experiment E5 measures this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import Circuit, available_engines
from repro.circuits import probability as circuit_probability
from repro.events import EventSpace
from repro.prxml.model import CIE, DET, IND, MUX, REGULAR, PNode, PrXMLDocument
from repro.prxml.patterns import TreePattern
from repro.util import ReproError, check

AUTO = "auto"
DIRECT = "dd"
MESSAGE_PASSING = "message_passing"
SHANNON = "shannon"

State = tuple[frozenset, frozenset]


@dataclass
class PrXMLLineage:
    """Lineage of a tree-pattern query over a PrXML document."""

    circuit: Circuit
    space: EventSpace
    has_global: bool
    max_states: int

    def probability(self, method: str = AUTO, max_width: int = 24) -> float:
        """Evaluate the match probability with the chosen engine.

        ``method`` is any registered engine name of
        :mod:`repro.circuits.evaluation` (plus the ``"auto"`` default which
        picks the Theorem-1 ``dd`` pass for local documents and junction-tree
        message passing otherwise). The circuit is compiled once and reused
        across calls.
        """
        if method == AUTO:
            method = DIRECT if not self.has_global else MESSAGE_PASSING
        if method == DIRECT:
            check(
                not self.has_global,
                "direct d-D evaluation requires a local ({ind,mux,det}) document",
            )
            return circuit_probability(self.circuit, self.space, engine=DIRECT)
        if method == MESSAGE_PASSING:
            return circuit_probability(
                self.circuit, self.space, engine=MESSAGE_PASSING, max_width=max_width
            )
        if method in available_engines():
            return circuit_probability(self.circuit, self.space, engine=method)
        raise ReproError(f"unknown evaluation method {method!r}")


def build_pattern_lineage(doc: PrXMLDocument, pattern: TreePattern) -> PrXMLLineage:
    """Build the match-state circuit of ``pattern`` over ``doc``."""
    circuit = Circuit()
    space = EventSpace({e: doc.space.probability(e) for e in doc.space.events()})
    counter = {"node": 0}
    max_states = [1]

    def fold(
        acc: dict[State, int], options: dict[State, int]
    ) -> dict[State, int]:
        table: dict[State, list[int]] = {}
        for (ua1, ud1), g1 in acc.items():
            for (ua2, ud2), g2 in options.items():
                key = (ua1 | ua2, ud1 | ud2)
                table.setdefault(key, []).append(circuit.and_gate([g1, g2]))
        return {state: circuit.or_gate(gates) for state, gates in table.items()}

    def empty_contribution() -> dict[State, int]:
        return {(frozenset(), frozenset()): circuit.true()}

    def guard_options(options: dict[State, int], keep: int, drop: int) -> dict[State, int]:
        """Mix a contribution with its absence under a Boolean guard gate."""
        table: dict[State, list[int]] = {}
        for state, gate in options.items():
            table.setdefault(state, []).append(circuit.and_gate([gate, keep]))
        table.setdefault((frozenset(), frozenset()), []).append(drop)
        return {state: circuit.or_gate(gates) for state, gates in table.items()}

    def contributions(node: PNode) -> dict[State, int]:
        counter["node"] += 1
        node_id = counter["node"]
        if node.kind == REGULAR:
            acc = empty_contribution()
            for child in node.children:
                acc = fold(acc, contributions(child))
            table: dict[State, list[int]] = {}
            for (ua, ud), gate in acc.items():
                a, d = pattern.match_state_from_unions(node.label, ua, ud)
                table.setdefault((a, d), []).append(gate)
            result = {s: circuit.or_gate(gs) for s, gs in table.items()}
        elif node.kind == DET:
            result = empty_contribution()
            for child in node.children:
                result = fold(result, contributions(child))
        elif node.kind == IND:
            result = empty_contribution()
            for index, child in enumerate(node.children):
                name = f"c:ind:{node_id}:{index}"
                space.add(name, child.probability or 0.0)
                keep = circuit.variable(name)
                guarded = guard_options(
                    contributions(child), keep, circuit.negation(keep)
                )
                result = fold(result, guarded)
        elif node.kind == MUX:
            result = _mux_contributions(node, node_id, circuit, space, contributions)
        elif node.kind == CIE:
            result = empty_contribution()
            for child in node.children:
                literals = [
                    circuit.variable(e) if positive else circuit.negation(circuit.variable(e))
                    for e, positive in child.conditions
                ]
                keep = circuit.and_gate(literals)
                guarded = guard_options(
                    contributions(child), keep, circuit.negation(keep)
                )
                result = fold(result, guarded)
        else:  # pragma: no cover
            raise ReproError(f"unknown PrXML node kind {node.kind!r}")
        max_states[0] = max(max_states[0], len(result))
        return result

    root_states = contributions(doc.root)
    root_index = pattern.node_index(pattern.root)
    accepting = [
        gate for (_a, d), gate in root_states.items() if root_index in d
    ]
    circuit.set_output(circuit.or_gate(accepting))
    return PrXMLLineage(
        circuit=circuit,
        space=space,
        has_global=doc.has_global_uncertainty(),
        max_states=max_states[0],
    )


def _mux_contributions(node, node_id, circuit, space, contributions) -> dict[State, int]:
    """Chain-encode a mux choice with fresh independent Boolean variables.

    Child i is selected iff ``¬b_1 ∧ … ∧ ¬b_{i-1} ∧ b_i`` where
    ``P(b_i) = p_i / (1 − p_1 − … − p_{i-1})``; the leftover mass selects no
    child. The chain keeps variables independent and selections mutually
    exclusive, preserving determinism of the circuit.
    """
    table: dict[State, list[int]] = {}
    remaining = 1.0
    prefix_not: list[int] = []
    for index, child in enumerate(node.children):
        p = child.probability or 0.0
        conditional = 0.0 if remaining <= 1e-12 else min(1.0, p / remaining)
        name = f"c:mux:{node_id}:{index}"
        space.add(name, conditional)
        b = circuit.variable(name)
        select = circuit.and_gate(prefix_not + [b])
        for state, gate in contributions(child).items():
            table.setdefault(state, []).append(circuit.and_gate([gate, select]))
        prefix_not.append(circuit.negation(b))
        remaining -= p
    none_selected = circuit.and_gate(prefix_not)
    table.setdefault((frozenset(), frozenset()), []).append(none_selected)
    return {state: circuit.or_gate(gates) for state, gates in table.items()}


def query_probability(
    doc: PrXMLDocument,
    pattern: TreePattern,
    method: str = AUTO,
    max_width: int = 24,
) -> float:
    """Probability that ``pattern`` matches a random world of ``doc``."""
    lineage = build_pattern_lineage(doc, pattern)
    return lineage.probability(method=method, max_width=max_width)
