"""Propositional formulas over named Boolean events.

c-instances annotate facts with propositional formulas (Imielinski–Lipski);
pc-instances additionally give independent probabilities to the events.
This module provides an immutable formula AST with evaluation, simplification
and conversion helpers. Circuits (a DAG representation that can share
subformulas) live in :mod:`repro.circuits`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from functools import reduce

from repro.util import ReproError

Valuation = Mapping[str, bool]


class Formula:
    """Base class for propositional formulas.

    Formulas are immutable and hashable; ``&``, ``|`` and ``~`` build
    conjunctions, disjunctions and negations with light simplification
    (constant folding only — no normalization).
    """

    def evaluate(self, valuation: Valuation) -> bool:
        """Return the truth value of the formula under ``valuation``.

        Raises :class:`ReproError` when an event mentioned by the formula is
        missing from ``valuation``.
        """
        raise NotImplementedError

    def events(self) -> frozenset[str]:
        """Return the set of event names appearing in the formula."""
        raise NotImplementedError

    def substitute(self, partial: Valuation) -> "Formula":
        """Return the formula with events of ``partial`` replaced by constants."""
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        if isinstance(self, Const):
            return other if self.value else FALSE
        if isinstance(other, Const):
            return self if other.value else FALSE
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        if isinstance(self, Const):
            return TRUE if self.value else other
        if isinstance(other, Const):
            return TRUE if other.value else self
        return Or((self, other))

    def __invert__(self) -> "Formula":
        if isinstance(self, Const):
            return FALSE if self.value else TRUE
        if isinstance(self, Not):
            return self.child
        return Not(self)


@dataclass(frozen=True)
class Const(Formula):
    """The constant ``true`` or ``false``."""

    value: bool

    def evaluate(self, valuation: Valuation) -> bool:
        return self.value

    def events(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, partial: Valuation) -> Formula:
        return self

    def __repr__(self) -> str:
        return "⊤" if self.value else "⊥"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Var(Formula):
    """A single Boolean event, referred to by name."""

    name: str

    def evaluate(self, valuation: Valuation) -> bool:
        if self.name not in valuation:
            raise ReproError(f"valuation is missing event {self.name!r}")
        return bool(valuation[self.name])

    def events(self) -> frozenset[str]:
        return frozenset({self.name})

    def substitute(self, partial: Valuation) -> Formula:
        if self.name in partial:
            return TRUE if partial[self.name] else FALSE
        return self

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    """Negation of a formula."""

    child: Formula

    def evaluate(self, valuation: Valuation) -> bool:
        return not self.child.evaluate(valuation)

    def events(self) -> frozenset[str]:
        return self.child.events()

    def substitute(self, partial: Valuation) -> Formula:
        return ~self.child.substitute(partial)

    def __repr__(self) -> str:
        return f"¬{self.child!r}"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of zero or more formulas (empty conjunction is true)."""

    children: tuple[Formula, ...]

    def evaluate(self, valuation: Valuation) -> bool:
        return all(child.evaluate(valuation) for child in self.children)

    def events(self) -> frozenset[str]:
        return frozenset().union(*(c.events() for c in self.children)) if self.children else frozenset()

    def substitute(self, partial: Valuation) -> Formula:
        return conj(c.substitute(partial) for c in self.children)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of zero or more formulas (empty disjunction is false)."""

    children: tuple[Formula, ...]

    def evaluate(self, valuation: Valuation) -> bool:
        return any(child.evaluate(valuation) for child in self.children)

    def events(self) -> frozenset[str]:
        return frozenset().union(*(c.events() for c in self.children)) if self.children else frozenset()

    def substitute(self, partial: Valuation) -> Formula:
        return disj(c.substitute(partial) for c in self.children)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(c) for c in self.children) + ")"


def var(name: str) -> Var:
    """Return the formula consisting of the single event ``name``."""
    return Var(name)


def conj(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of ``formulas`` with constant folding."""
    return reduce(lambda a, b: a & b, formulas, TRUE)


def disj(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of ``formulas`` with constant folding."""
    return reduce(lambda a, b: a | b, formulas, FALSE)


def literal(name: str, positive: bool) -> Formula:
    """Return the literal ``name`` or ``¬name``."""
    return Var(name) if positive else Not(Var(name))
