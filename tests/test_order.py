"""Tests for order uncertainty: posets, algebra, counting, membership."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.order import (
    LabeledPoset,
    antichain,
    certain_pairs,
    chain,
    concat,
    count_linear_extensions,
    count_linear_extensions_sp,
    interleavings,
    is_linear_extension,
    is_possible_world,
    is_realizable_order,
    is_series_parallel,
    iter_linear_extensions,
    NotSeriesParallel,
    possible_worlds,
    poset_from_intervals,
    product_direct,
    product_lex,
    projection,
    sample_linear_extension,
    selection,
    union,
)
from repro.util import ReproError
from repro.workloads import generate_logs, true_interleaving


def n_poset() -> LabeledPoset:
    """The canonical non-series-parallel 'N' shape."""
    return LabeledPoset(
        {"a": "a", "b": "b", "c": "c", "d": "d"},
        [("a", "c"), ("b", "c"), ("b", "d")],
    )


class TestPosets:
    def test_cycle_rejected(self):
        poset = chain(["x", "y"], "p")
        with pytest.raises(ReproError, match="cycle"):
            poset.add_order("p1", "p0")

    def test_less_than_is_transitive(self):
        poset = chain(["x", "y", "z"], "p")
        assert poset.less_than("p0", "p2")

    def test_total_and_unordered_predicates(self):
        assert chain(["x", "y"]).is_total()
        assert antichain(["x", "y"]).is_unordered()
        assert not n_poset().is_total()

    def test_hasse_removes_transitive_edges(self):
        poset = LabeledPoset({1: "a", 2: "b", 3: "c"}, [(1, 2), (2, 3), (1, 3)])
        assert (1, 3) not in poset.hasse_edges()

    def test_restriction_keeps_induced_order(self):
        poset = chain(["x", "y", "z"], "p")
        sub = poset.restricted_to(["p0", "p2"])
        assert sub.less_than("p0", "p2")

    def test_minimal_elements(self):
        assert set(n_poset().minimal_elements()) == {"a", "b"}


class TestLinearExtensions:
    def test_chain_has_one_extension(self):
        assert count_linear_extensions(chain(range(5))) == 1

    def test_antichain_has_factorial(self):
        assert count_linear_extensions(antichain(range(4))) == 24

    def test_enumeration_matches_count(self):
        poset = n_poset()
        extensions = list(iter_linear_extensions(poset))
        assert len(extensions) == count_linear_extensions(poset)
        assert len(set(extensions)) == len(extensions)
        for ext in extensions:
            assert is_linear_extension(poset, ext)

    def test_sampling_is_uniform_ish(self):
        poset = union(chain(["x1", "x2"], "a"), chain(["y1"], "b"))
        counts = {}
        for seed in range(3000):
            ext = sample_linear_extension(poset, seed=seed)
            counts[ext] = counts.get(ext, 0) + 1
        assert len(counts) == 3
        for hits in counts.values():
            assert abs(hits / 3000 - 1 / 3) < 0.05

    def test_possible_worlds_deduplicate_labels(self):
        poset = antichain(["same", "same"])
        assert possible_worlds(poset) == [("same", "same")]


class TestAlgebra:
    def test_union_worlds_are_interleavings(self):
        left = chain(["x1", "x2"], "a")
        right = chain(["y1", "y2"], "b")
        worlds = set(possible_worlds(union(left, right)))
        assert worlds == set(interleavings(("x1", "x2"), ("y1", "y2")))

    def test_concat_orders_all_of_first_before_second(self):
        left = antichain(["x1", "x2"], "a")
        right = chain(["y"], "b")
        for world in possible_worlds(concat(left, right)):
            assert world[-1] == "y"

    def test_selection_keeps_induced_order(self):
        poset = chain([1, 2, 3, 4], "p")
        selected = selection(poset, lambda v: v % 2 == 0)
        assert possible_worlds(selected) == [(2, 4)]

    def test_projection_is_bag_semantics(self):
        poset = antichain([("a", 1), ("b", 1)], "p")
        projected = projection(poset, lambda t: t[1])
        assert possible_worlds(projected) == [(1, 1)]

    def test_product_direct_pairs(self):
        left = chain(["x"], "a")
        right = chain(["y1", "y2"], "b")
        product = product_direct(left, right)
        assert possible_worlds(product) == [(("x", "y1"), ("x", "y2"))]

    def test_product_lex_totally_orders_chains(self):
        left = chain(["x1", "x2"], "a")
        right = chain(["y1", "y2"], "b")
        assert product_lex(left, right).is_total()

    def test_product_direct_less_constrained_than_lex(self):
        left = chain(["x1", "x2"], "a")
        right = chain(["y1", "y2"], "b")
        direct = count_linear_extensions(product_direct(left, right))
        lex = count_linear_extensions(product_lex(left, right))
        assert direct >= lex


class TestSeriesParallel:
    def test_algebra_builds_sp(self):
        poset = concat(union(chain([1, 2]), chain([3])), chain([4]))
        assert is_series_parallel(poset)
        assert count_linear_extensions_sp(poset) == count_linear_extensions(poset)

    def test_n_poset_rejected(self):
        assert not is_series_parallel(n_poset())
        with pytest.raises(NotSeriesParallel):
            count_linear_extensions_sp(n_poset())

    def test_parallel_count_is_binomial(self):
        poset = union(chain(range(3)), chain(range(4)))
        assert count_linear_extensions_sp(poset) == math.comb(7, 3)

    def test_singleton(self):
        assert count_linear_extensions_sp(chain(["only"])) == 1


class TestMembership:
    def test_distinct_labels_polynomial_path(self):
        poset = union(chain(["a", "b"], "l"), chain(["c"], "r"))
        assert poset.has_distinct_labels()
        assert is_possible_world(poset, ("a", "c", "b"))
        assert not is_possible_world(poset, ("b", "a", "c"))

    def test_duplicate_labels_backtracking(self):
        poset = union(chain(["x", "y"], "l"), chain(["y", "x"], "r"))
        assert is_possible_world(poset, ("x", "y", "y", "x"))
        assert is_possible_world(poset, ("y", "x", "x", "y"))
        assert not is_possible_world(poset, ("x", "x", "x", "y"))

    def test_wrong_multiset_rejected_fast(self):
        poset = antichain(["a", "b"])
        assert not is_possible_world(poset, ("a", "a"))
        assert not is_possible_world(poset, ("a",))

    def test_membership_matches_enumeration(self):
        poset = union(chain(["a", "b"], "l"), chain(["b", "a"], "r"))
        worlds = set(possible_worlds(poset))
        import itertools

        for candidate in set(itertools.permutations(["a", "a", "b", "b"])):
            assert is_possible_world(poset, candidate) == (candidate in worlds)

    def test_certain_pairs(self):
        poset = concat(chain(["first"]), chain(["second"]))
        assert ("first", "second") in certain_pairs(poset)
        assert ("second", "first") not in certain_pairs(poset)


class TestNumericOrder:
    def test_disjoint_intervals_are_ordered(self):
        poset = poset_from_intervals({"a": (0, 1), "b": (2, 3)})
        assert poset.less_than("a", "b")

    def test_overlapping_intervals_incomparable(self):
        poset = poset_from_intervals({"a": (0, 2), "b": (1, 3)})
        assert not poset.comparable("a", "b")

    def test_empty_interval_rejected(self):
        with pytest.raises(ReproError, match="empty"):
            poset_from_intervals({"a": (2, 1)})

    def test_realizable_orders(self):
        intervals = {"a": (0, 2), "b": (1, 3)}
        assert is_realizable_order(intervals, ("a", "b"))
        assert is_realizable_order(intervals, ("b", "a"))
        assert not is_realizable_order({"a": (0, 1), "b": (2, 3)}, ("b", "a"))

    def test_realizable_iff_linear_extension_of_certain_order(self):
        intervals = {"a": (0.0, 1.0), "b": (0.5, 1.5), "c": (2.0, 3.0)}
        poset = poset_from_intervals(intervals)
        import itertools

        for perm in itertools.permutations(intervals):
            realizable = is_realizable_order(intervals, perm)
            extension = is_linear_extension(poset, perm)
            assert realizable == extension


class TestLogWorkload:
    def test_true_interleaving_is_possible_world(self):
        workload = generate_logs(machines=2, events_per_log=3, seed=5)
        truth = true_interleaving(workload, seed=1)
        assert is_possible_world(workload.merged, truth)

    def test_merged_size(self):
        workload = generate_logs(machines=3, events_per_log=2, seed=0)
        assert len(workload.merged) == 6

    def test_distinct_vocabulary_mode(self):
        workload = generate_logs(
            machines=2, events_per_log=3, seed=0, shared_vocabulary=False
        )
        assert workload.merged.has_distinct_labels()


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_union_count_equals_binomial_formula(seed):
    import random

    rng = random.Random(seed)
    m, n = rng.randint(1, 4), rng.randint(1, 4)
    merged = union(chain(range(m), "l"), chain(range(100, 100 + n), "r"))
    assert count_linear_extensions(merged) == math.comb(m + n, m)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_sp_count_matches_dp_on_algebra_terms(seed):
    import random

    rng = random.Random(seed)
    terms = [chain([rng.randint(0, 3)]) for _ in range(rng.randint(2, 4))]
    poset = terms[0]
    for term in terms[1:]:
        poset = union(poset, term) if rng.random() < 0.5 else concat(poset, term)
    assert count_linear_extensions_sp(poset) == count_linear_extensions(poset)
