"""E3 — Theorem 1: linear-time MSO evaluation on bounded-treewidth TIDs.

The paper's claim: for TIDs of treewidth bounded by a constant, evaluating a
fixed MSO query is PTIME, linear with unit-cost arithmetic. We measure the
engine's runtime over instance-size sweeps at fixed width (1, 2, 3) for both
a conjunctive query and an MSO reachability query, and contrast it with the
exponential possible-world enumeration baseline, which dies in the teens.

The shape to verify: per-fact time roughly flat as n grows (linear overall);
enumeration time doubling per added fact.

Run the table:  python benchmarks/bench_theorem1_scaling.py
Benchmarks:     pytest benchmarks/bench_theorem1_scaling.py --benchmark-only
"""

import time

import pytest

from repro.baselines import tid_probability_enumerate
from repro.core import STConnectivityAutomaton, tid_probability
from repro.queries import atom, cq, variables
from repro.workloads import partial_ktree_tid, rst_chain_tid

X, Y = variables("x", "y")
Q_RST = cq(atom("R", X), atom("S", X, Y), atom("T", Y))


@pytest.mark.parametrize("n", [20, 40, 80])
def test_cq_on_width1_chain(benchmark, n):
    tid = rst_chain_tid(n, seed=0)
    p = benchmark(tid_probability, Q_RST, tid)
    assert 0.0 <= p <= 1.0


@pytest.mark.parametrize("k", [1, 2, 3])
def test_reachability_on_certified_ktree(benchmark, k):
    generated = partial_ktree_tid(30, k, seed=1)
    vertices = sorted(
        {a for f in generated.tid.facts() for a in f.args}, key=str
    )
    auto = STConnectivityAutomaton(vertices[0], vertices[-1])
    p = benchmark(
        tid_probability, auto, generated.tid, generated.decomposition
    )
    assert 0.0 <= p <= 1.0


def test_enumeration_wall(benchmark):
    tid = rst_chain_tid(6, seed=0)  # 16 facts: 65k worlds
    p = benchmark(tid_probability_enumerate, Q_RST, tid)
    assert 0.0 <= p <= 1.0


def main() -> None:
    from repro.core import build_lineage, instance_decomposition

    print("E3 — Theorem 1: scaling at fixed treewidth")
    print("\nCQ R(x)S(x,y)T(y) on width-1 chains")
    print("(decomposition cost separated: the theorem assumes it given):")
    print(f"{'n facts':>8} {'decomp (s)':>11} {'engine (s)':>11} {'us/fact':>8} {'P':>8}")
    for n in [25, 50, 100, 200, 400]:
        tid = rst_chain_tid(n, seed=0)
        start = time.perf_counter()
        decomposition = instance_decomposition(tid.instance, heuristic="min_degree")
        decomp_time = time.perf_counter() - start
        start = time.perf_counter()
        lineage = build_lineage(tid.instance, Q_RST, decomposition)
        p = lineage.probability_tid(tid)
        engine_time = time.perf_counter() - start
        print(
            f"{len(tid):>8} {decomp_time:>11.3f} {engine_time:>11.3f}"
            f" {1e6 * engine_time / len(tid):>8.0f} {p:>8.4f}"
        )

    print("\nMSO reachability on certified partial k-trees (n=40 vertices):")
    print(f"{'width k':>8} {'facts':>6} {'time (s)':>10} {'P':>8}")
    for k in [1, 2, 3]:
        generated = partial_ktree_tid(40, k, seed=1)
        vertices = sorted({a for f in generated.tid.facts() for a in f.args}, key=str)
        auto = STConnectivityAutomaton(vertices[0], vertices[-1])
        start = time.perf_counter()
        p = tid_probability(auto, generated.tid, generated.decomposition)
        elapsed = time.perf_counter() - start
        print(f"{k:>8} {len(generated.tid):>6} {elapsed:>10.3f} {p:>8.4f}")

    print("\nEnumeration baseline (2^facts worlds) on the same chain workload:")
    print(f"{'n facts':>8} {'time (s)':>10}")
    for n in [4, 5, 6]:
        tid = rst_chain_tid(n, seed=0)
        start = time.perf_counter()
        tid_probability_enumerate(Q_RST, tid)
        elapsed = time.perf_counter() - start
        print(f"{len(tid):>8} {elapsed:>10.3f}")
    print("\nshape check: engine time grows ~linearly in n; enumeration doubles per fact.")


if __name__ == "__main__":
    main()
