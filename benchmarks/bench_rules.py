"""E10 — probabilistic rules: the trigger-level probabilistic chase.

Section 2.3's vision, measured: soft rules fire per-trigger with independent
probabilities, producing circuit-annotated derived facts. We measure chase
growth (facts and events per round), exact query probabilities through the
Theorem 2 machinery (cross-checked by enumeration where feasible), and the
semantic gap between the paper's trigger-level semantics and the rule-level
semantics of Gottlob et al. [25].

Run the table:  python benchmarks/bench_rules.py
Benchmarks:     pytest benchmarks/bench_rules.py --benchmark-only
"""

import math
import time

import pytest

from repro.baselines import pcc_probability_enumerate
from repro.core import pcc_probability
from repro.instances import Instance, fact
from repro.queries import atom, cq, variables
from repro.rules import (
    RULE_LEVEL,
    TRIGGER_LEVEL,
    is_weakly_acyclic,
    probabilistic_chase,
)
from repro.workloads import CITIZEN_RULES, advisor_kb, citizenship_kb

X, Y, Z = variables("x", "y", "z")


@pytest.mark.parametrize("people", [2, 4, 8])
def test_chase_scaling(benchmark, people):
    kb = citizenship_kb(people, countries=2, seed=0)
    chased = benchmark(probabilistic_chase, kb.instance, kb.rules, 3)
    assert len(chased) >= len(kb.instance)


def test_query_probability_via_engine(benchmark):
    kb = citizenship_kb(2, countries=1, seed=0)
    chased = probabilistic_chase(kb.instance, kb.rules, rounds=3)
    query = cq(atom("Speaks", X, Y))
    p = benchmark(pcc_probability, query, chased)
    if len(chased.space) <= 14:
        assert math.isclose(p, pcc_probability_enumerate(query, chased), abs_tol=1e-9)


def test_existential_chase(benchmark):
    kb = advisor_kb(4, seed=0)
    chased = benchmark(probabilistic_chase, kb.instance, kb.rules, 1)
    assert any(f.relation == "Author" for f in chased.facts())


def main() -> None:
    print("E10 — probabilistic rules (trigger-level probabilistic chase)")
    print(f"\nweakly acyclic rule set: "
          f"{is_weakly_acyclic([pr.rule for pr in CITIZEN_RULES])}")

    print("\nchase growth (citizenship KB):")
    print(f"{'people':>7} {'base facts':>11} {'derived':>8} {'events':>7} {'time (s)':>9}")
    for people in [2, 4, 8, 16]:
        kb = citizenship_kb(people, countries=2, seed=0)
        start = time.perf_counter()
        chased = probabilistic_chase(kb.instance, kb.rules, rounds=3)
        elapsed = time.perf_counter() - start
        derived = len(chased) - len(kb.instance)
        print(f"{people:>7} {len(kb.instance):>11} {derived:>8}"
              f" {len(chased.space):>7} {elapsed:>9.3f}")

    print("\nderived-fact marginals (alice: citizen only; bob: known resident):")
    kb = Instance(
        [
            fact("Citizen", "alice", "fr"),
            fact("Citizen", "bob", "fr"),
            fact("LivesIn", "bob", "fr"),
            fact("OfficialLanguage", "fr", "french"),
        ]
    )
    chased = probabilistic_chase(kb, CITIZEN_RULES, rounds=3)
    for person, expected in (("alice", 0.8 * 0.9), ("bob", 0.9)):
        speaks = fact("Speaks", person, "french")
        measured = chased.fact_probability_enumerate(speaks)
        print(f"  P[{speaks}] = {measured:.3f}  (expected {expected:.3f})")

    print("\ntrigger-level vs rule-level semantics"
          " (one 0.8-rule, two triggers, query: both heads):")
    two = Instance([fact("Citizen", "p1", "fr"), fact("Citizen", "p2", "fr")])
    both = cq(atom("LivesIn", "p1", "fr"), atom("LivesIn", "p2", "fr"))
    for semantics, expected in ((TRIGGER_LEVEL, 0.64), (RULE_LEVEL, 0.8)):
        chased = probabilistic_chase(
            two, CITIZEN_RULES[:1], rounds=1, semantics=semantics
        )
        p = pcc_probability_enumerate(both, chased)
        print(f"  {semantics:<8}: P = {p:.2f}  (expected {expected:.2f})")
    print("\nshape check: trigger-level multiplies per-trigger (0.8² = 0.64);"
          " rule-level is all-or-nothing (0.8).")


if __name__ == "__main__":
    main()
