"""The query service application: resident plans, coalescing, caching.

Transport-independent: :class:`QueryService` maps parsed JSON requests to
JSON responses (or a chunked stream factory) and owns all the resident
state the "always-on" argument is about — registered plans, the compile
and plan caches, the distributed :class:`~repro.circuits.distributed`
host pool, the result cache, the coalescer, and per-endpoint latency
histograms. :mod:`repro.service.http` binds it to a socket; tests can
also drive :meth:`QueryService.dispatch` directly.

Endpoints::

    GET  /health        liveness + uptime
    GET  /stats         pool/compile/cache/coalescer/latency counters
    POST /plans         register a wire plan {"plan_b64": ...}
    POST /compile       ingest an encoded instance + CQ/UCQ, compile, register
    POST /probability   {"digest", "rows": [[...]], "peers"?} -> marginals
    POST /sample        streaming Monte-Carlo {"digest", "row", "samples", ...}
    POST /shutdown      clean teardown (CI asserts no leaked state after)

Plans are identified everywhere by their wire digest
(:func:`repro.circuits.distributed.plan_checksum`). Registered plans are
written through to the on-disk plan cache, and a request for an unknown
digest falls back to that cache before erroring — so a service restart
keeps serving plans its previous life registered. Evaluation degrades
down the usual tier ladder (distributed hosts → process pool → in-process
kernels); a failure never produces a wrong marginal, only a slower one.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import math
import os
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.circuits import compiled as _compiled
from repro.circuits import distributed as _distributed
from repro.circuits import plancache as _plancache
from repro.circuits.evaluation import capabilities
from repro.service.cache import LatencyHistogram, ResultCache, valuation_hash
from repro.service.coalesce import DEFAULT_WINDOW, Coalescer
from repro.util import ReproError, check

#: Default cap on resident registered plans (LRU-evicted beyond it).
DEFAULT_MAX_PLANS = 256

#: Default cap on rows per /probability request.
DEFAULT_MAX_ROWS = 65536

#: Default and maximum chunk sizes for /sample streaming. The default is
#: the pool's shard size, so a stream with ``chunk`` unset (or set to a
#: multiple of it) accumulates hit counts bit-identical to
#: :func:`repro.circuits.parallel.monte_carlo_hits` at the same seed.
DEFAULT_SAMPLE_CAP = 100_000_000


class ServiceError(ReproError):
    """A request-level error carrying the HTTP status to report."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class StreamResponse:
    """A chunked-stream response: ``factory(cancel_event)`` yields dicts."""

    __slots__ = ("factory",)

    def __init__(self, factory):
        self.factory = factory


def _env_float(name: str, default):
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        return float(value)
    except ValueError:
        raise ReproError(f"{name} must be a number, got {value!r}") from None


def _env_int(name: str, default):
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        return int(value)
    except ValueError:
        raise ReproError(f"{name} must be an integer, got {value!r}") from None


def _parse_terms(raw_terms):
    from repro.queries.cq import Variable

    terms = []
    for term in raw_terms:
        if isinstance(term, str) and term.startswith("?"):
            name = term[1:]
            if not name:
                raise ServiceError(400, "query variable name must be non-empty")
            terms.append(Variable(name))
        elif isinstance(term, (str, int, float, bool)):
            terms.append(term)
        else:
            raise ServiceError(400, f"unsupported query term {term!r}")
    return terms


def _parse_cq(spec):
    from repro.queries.cq import Atom, ConjunctiveQuery

    raw_atoms = spec.get("atoms")
    if not isinstance(raw_atoms, list) or not raw_atoms:
        raise ServiceError(400, "query needs a non-empty 'atoms' list")
    atoms = []
    for raw in raw_atoms:
        if isinstance(raw, dict):
            relation, raw_terms = raw.get("relation"), raw.get("terms", [])
        elif isinstance(raw, list) and len(raw) == 2:
            relation, raw_terms = raw
        else:
            raise ServiceError(
                400, "each atom must be {'relation', 'terms'} or [relation, terms]"
            )
        if not isinstance(relation, str) or not relation:
            raise ServiceError(400, "atom relation must be a non-empty string")
        atoms.append(Atom(relation, tuple(_parse_terms(raw_terms))))
    return ConjunctiveQuery(tuple(atoms))


def parse_query(spec):
    """A CQ/UCQ from its JSON form: ``{"atoms": [...]}`` or disjuncts.

    Variables are strings starting with ``?`` (``"?x"``); every other
    string/number is a constant. A UCQ is ``{"disjuncts": [cq, ...]}``.
    """
    from repro.queries.cq import UnionOfConjunctiveQueries

    if not isinstance(spec, dict):
        raise ServiceError(400, "query must be a JSON object")
    if "disjuncts" in spec:
        raw = spec["disjuncts"]
        if not isinstance(raw, list) or not raw:
            raise ServiceError(400, "'disjuncts' must be a non-empty list")
        return UnionOfConjunctiveQueries(tuple(_parse_cq(d) for d in raw))
    return _parse_cq(spec)


class _PlanEntry:
    """One resident plan: evaluates rows, compiled or wire-only.

    Plans registered from wire bytes have no circuit arena (and no
    variable names) — they evaluate through :class:`WirePlan`, always
    in-process. Plans built by ``/compile`` keep the full
    :class:`CompiledCircuit`, so their passes ride the whole tier ladder
    (distributed hosts / process pool / in-process kernels) exactly like
    library callers' do.
    """

    __slots__ = ("digest", "compiled", "wire", "n_vars", "size", "hits")

    def __init__(self, digest: str, compiled=None, wire=None):
        check(compiled is not None or wire is not None,
              "a plan entry needs a compiled circuit or a wire plan")
        self.digest = digest
        self.compiled = compiled
        self.wire = wire
        source = compiled if compiled is not None else wire
        self.n_vars = (len(compiled.var_names) if compiled is not None
                       else wire.n_vars)
        self.size = source.size
        self.hits = 0

    def probability_rows(self, rows) -> list[float]:
        """One float pass over ``rows`` (slot order), one marginal per row."""
        if self.compiled is not None:
            np = _compiled.numpy_module()
            if np is not None:
                matrix = np.asarray(rows, dtype=np.float64)
                if matrix.ndim != 2:
                    matrix = matrix.reshape(len(rows), self.n_vars)
                return self.compiled.probability_batch(matrix)
            return self.compiled.probability_batch(rows)
        return self.wire.run_rows(rows, as_float=True)

    def wire_plan(self):
        """The decoded wire plan (built once) — the /sample evaluation path."""
        if self.wire is None:
            self.wire = _distributed.plan_from_bytes(self.compiled.wire_bytes())
        return self.wire


class QueryService:
    """The resident application behind ``repro serve-http``."""

    def __init__(self, *, coalesce: bool = True,
                 coalesce_window: float | None = None,
                 cache_size: int | None = None,
                 cache_ttl: float | None = None,
                 max_plans: int | None = None,
                 max_rows: int | None = None):
        if coalesce_window is None:
            coalesce_window = _env_float(
                "REPRO_SERVICE_COALESCE_MS", DEFAULT_WINDOW * 1e3
            ) / 1e3
        if cache_size is None:
            cache_size = _env_int("REPRO_SERVICE_CACHE_SIZE", None)
        if cache_ttl is None:
            cache_ttl = _env_float("REPRO_SERVICE_CACHE_TTL", None)
        self.cache = (ResultCache(cache_size, ttl=cache_ttl)
                      if cache_size is not None
                      else ResultCache(ttl=cache_ttl))
        self.coalescer = Coalescer(
            self._run_pass, window=coalesce_window, enabled=coalesce
        )
        self.max_plans = (max_plans if max_plans is not None
                          else _env_int("REPRO_SERVICE_MAX_PLANS",
                                        DEFAULT_MAX_PLANS))
        self.max_rows = (max_rows if max_rows is not None
                         else _env_int("REPRO_SERVICE_MAX_ROWS",
                                       DEFAULT_MAX_ROWS))
        self._plans: OrderedDict[str, _PlanEntry] = OrderedDict()
        # One compute thread on purpose: serializing passes is what lets
        # later arrivals pile into the next bucket while one pass runs,
        # and the batch kernels already use the cores (numpy / the pool /
        # distributed hosts) inside a single pass.
        self._compute = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-pass"
        )
        self._mc = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-mc"
        )
        self.histograms: dict[str, LatencyHistogram] = {}
        self.stream_stats = {
            "started": 0, "completed": 0, "cancelled": 0, "active": 0,
        }
        self.started_at = time.monotonic()
        self.shutdown_event = asyncio.Event()
        self._closed = False
        self._routes = {
            ("GET", "/health"): self._handle_health,
            ("GET", "/stats"): self._handle_stats,
            ("POST", "/plans"): self._handle_plans,
            ("POST", "/compile"): self._handle_compile,
            ("POST", "/probability"): self._handle_probability,
            ("POST", "/shutdown"): self._handle_shutdown,
        }

    # ------------------------------------------------------------------ #
    # dispatch

    async def dispatch(self, method: str, path: str, body: bytes):
        """Route one request; returns ``(status, payload)`` or a stream.

        Latency is recorded per path into :attr:`histograms` (for streams:
        the setup time; stream progress shows up in :attr:`stream_stats`).
        """
        started = time.perf_counter()
        error = False
        try:
            if method == "POST" and path == "/sample":
                return self._handle_sample(self._parse_body(body))
            handler = self._routes.get((method, path))
            if handler is None:
                known = {route_path for _m, route_path in self._routes}
                if path in known or path == "/sample":
                    raise ServiceError(405, f"method {method} not allowed on {path}")
                raise ServiceError(404, f"unknown path {path}")
            return await handler(self._parse_body(body))
        except ServiceError as exc:
            error = True
            return exc.status, {"error": str(exc)}
        except ReproError as exc:
            error = True
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the service must not die
            error = True
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            histogram = self.histograms.setdefault(path, LatencyHistogram())
            histogram.observe(time.perf_counter() - started, error=error)

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except (ValueError, UnicodeDecodeError):
            raise ServiceError(400, "request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return payload

    def shutdown_requested(self) -> bool:
        return self.shutdown_event.is_set()

    def close(self) -> None:
        """Release every resident resource (idempotent).

        Stops the compute threads, the multiprocess pool and its shared
        memory, and the distributed host pool — the "no leaked sockets or
        shared-memory segments" contract the CI service job asserts.
        """
        if self._closed:
            return
        self._closed = True
        self._compute.shutdown(wait=True)
        self._mc.shutdown(wait=True)
        from repro.circuits import parallel

        parallel.shutdown()
        _distributed.close_pool()

    # ------------------------------------------------------------------ #
    # plan registry

    def _register(self, entry: _PlanEntry) -> None:
        plans = self._plans
        plans[entry.digest] = entry
        plans.move_to_end(entry.digest)
        while len(plans) > self.max_plans:
            plans.popitem(last=False)

    def _plan_entry(self, digest) -> _PlanEntry:
        if not isinstance(digest, str) or not digest:
            raise ServiceError(400, "request needs a 'digest' string")
        entry = self._plans.get(digest)
        if entry is None:
            # A fresh service answers digests its previous life registered:
            # the on-disk plan cache is the write-through backing store.
            wire = _distributed._plan_from_disk(digest)
            if wire is None:
                raise ServiceError(
                    404,
                    f"unknown plan digest {digest}; register it via /plans "
                    "or /compile",
                )
            entry = _PlanEntry(digest, wire=wire)
            self._register(entry)
        else:
            self._plans.move_to_end(digest)
        entry.hits += 1
        return entry

    # ------------------------------------------------------------------ #
    # evaluation plumbing

    async def _run_pass(self, digest: str, rows) -> list[float]:
        """One matrix pass on the compute thread (the coalescer's hook)."""
        entry = self._plans.get(digest)
        if entry is None:  # evicted between lookup and flush; reload
            entry = self._plan_entry(digest)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._compute, entry.probability_rows, rows
        )

    def _validated_rows(self, payload, entry: _PlanEntry) -> list[list[float]]:
        rows = payload.get("rows")
        if not isinstance(rows, list) or not rows:
            raise ServiceError(400, "request needs a non-empty 'rows' list")
        if len(rows) > self.max_rows:
            raise ServiceError(
                400, f"request has {len(rows)} rows; the cap is {self.max_rows}"
            )
        validated = []
        for row in rows:
            if not isinstance(row, list) or len(row) != entry.n_vars:
                raise ServiceError(
                    400,
                    f"each row must list {entry.n_vars} marginals in slot "
                    "order",
                )
            try:
                values = [float(v) for v in row]
            except (TypeError, ValueError):
                raise ServiceError(400, "rows must contain numbers") from None
            validated.append(values)
        return validated

    # ------------------------------------------------------------------ #
    # handlers

    async def _handle_health(self, _payload) -> tuple[int, dict]:
        return 200, {
            "status": "ok",
            "uptime_s": time.monotonic() - self.started_at,
            "plans": len(self._plans),
        }

    async def _handle_stats(self, _payload) -> tuple[int, dict]:
        caps = capabilities()
        return 200, {
            "uptime_s": time.monotonic() - self.started_at,
            "plans": {
                "registered": len(self._plans),
                "max": self.max_plans,
                "hits": sum(e.hits for e in self._plans.values()),
            },
            "result_cache": self.cache.stats(),
            "coalescer": self.coalescer.stats(),
            "streams": dict(self.stream_stats),
            "pool": caps["distributed_pool"],
            "distributed_hosts": caps["distributed_hosts"],
            "transport": {
                "provider": caps["distributed_transport"],
                "auth": caps["distributed_auth"],
                "pipeline_depth": caps["distributed_pipeline"],
                "registered_hosts": caps["distributed_registered"],
            },
            "compile": caps["compile"],
            "batch": caps["batch"],
            "plan_cache": caps["plan_cache"],
            "plan_cache_dir": caps["plan_cache_dir"],
            "numpy": caps["numpy"],
            "endpoints": {
                path: histogram.stats()
                for path, histogram in sorted(self.histograms.items())
            },
        }

    async def _handle_plans(self, payload) -> tuple[int, dict]:
        encoded = payload.get("plan_b64")
        if not isinstance(encoded, str) or not encoded:
            raise ServiceError(400, "request needs 'plan_b64' (base64 wire plan)")
        try:
            blob = base64.b64decode(encoded, validate=True)
        except (binascii.Error, ValueError):
            raise ServiceError(400, "'plan_b64' is not valid base64") from None
        digest = _distributed.plan_checksum(blob)
        already = digest in self._plans
        if already:
            entry = self._plans[digest]
            self._plans.move_to_end(digest)
        else:
            try:
                wire = _distributed.plan_from_bytes(blob)
            except ReproError as exc:
                raise ServiceError(400, f"rejected wire plan: {exc}") from None
            _plancache.store_plan_blob(digest, blob)
            entry = _PlanEntry(digest, wire=wire)
            self._register(entry)
        return 200, {
            "digest": digest,
            "size": entry.size,
            "n_vars": entry.n_vars,
            "already_registered": already,
            "disk_cached": _plancache.has_plan(digest),
        }

    async def _handle_compile(self, payload) -> tuple[int, dict]:
        from repro.core.engine import compile_query_plan
        from repro.instances.columnar import ColumnarInstance

        instance_payload = payload.get("instance")
        if not isinstance(instance_payload, dict):
            raise ServiceError(400, "request needs an 'instance' payload object")
        query_spec = payload.get("query")
        if query_spec is None:
            raise ServiceError(400, "request needs a 'query' object")
        method = payload.get("method", "lineage")
        if method != "lineage":
            # Marginal serving needs a deterministic-decomposable circuit;
            # the monotone provenance build defines the same Boolean
            # function but its linear pass would return wrong marginals.
            raise ServiceError(
                400,
                f"compile method {method!r} is not probability-valid; "
                "this service only serves 'lineage' plans",
            )
        loop = asyncio.get_running_loop()

        def build():
            instance, fids = ColumnarInstance.ingest_payload(instance_payload)
            query = parse_query(query_spec)
            _lineage, plan = compile_query_plan(instance, query, method=method)
            return instance, fids, plan

        # Compilation can be heavy; keep the event loop serving.
        instance, fids, plan = await loop.run_in_executor(self._compute, build)
        digest = plan.plan_digest()
        blob = plan.wire_bytes()
        _plancache.store_plan_blob(digest, blob)
        self._register(_PlanEntry(digest, compiled=plan))
        variables = list(plan.variables())
        default_probability = payload.get("default_probability", 0.5)
        probability_by_name: dict[str, float] = {}
        raw_probabilities = payload.get("probabilities", {})
        if not isinstance(raw_probabilities, dict):
            raise ServiceError(400, "'probabilities' must map relations to lists")
        for relation, per_row in raw_probabilities.items():
            row_fids = fids.get(relation)
            if row_fids is None:
                raise ServiceError(
                    400, f"probabilities name unknown relation {relation!r}"
                )
            if not isinstance(per_row, list) or len(per_row) != len(row_fids):
                raise ServiceError(
                    400,
                    f"probabilities for {relation!r} must list one value per "
                    "payload row",
                )
            names = instance.variable_names_for(row_fids)
            for name, value in zip(names, per_row):
                probability_by_name[name] = float(value)
        default_row = [
            probability_by_name.get(name, float(default_probability))
            for name in variables
        ]
        return 200, {
            "digest": digest,
            "size": plan.size,
            "n_vars": len(variables),
            "variables": variables,
            "default_row": default_row,
            "facts": {relation: len(row_fids)
                      for relation, row_fids in fids.items()},
            "disk_cached": _plancache.has_plan(digest),
        }

    async def _handle_probability(self, payload) -> tuple[int, dict]:
        entry = self._plan_entry(payload.get("digest"))
        rows = self._validated_rows(payload, entry)
        peers = payload.get("peers")
        if peers is not None and (not isinstance(peers, int) or peers < 1):
            raise ServiceError(400, "'peers' must be a positive integer")
        hashes = [valuation_hash(row) for row in rows]
        results: dict[str, float] = {}
        missing_hashes, missing_rows, queued = [], [], set()
        for h, row in zip(hashes, rows):
            cached = self.cache.get((entry.digest, h))
            if cached is not None:
                results[h] = cached
            elif h not in queued:
                queued.add(h)
                missing_hashes.append(h)
                missing_rows.append(row)
        cache_hits = len(results)
        if missing_rows:
            values = await self.coalescer.submit(
                entry.digest, missing_hashes, missing_rows, peers=peers
            )
            for h, value in values.items():
                self.cache.put((entry.digest, h), value)
            results.update(values)
        return 200, {
            "digest": entry.digest,
            "marginals": [results[h] for h in hashes],
            "cache_hits": cache_hits,
            "cache_misses": len(rows) - cache_hits,
        }

    def _handle_sample(self, payload) -> StreamResponse:
        from repro.circuits.parallel import MC_SHARD

        entry = self._plan_entry(payload.get("digest"))
        row = payload.get("row")
        if not isinstance(row, list) or len(row) != entry.n_vars:
            raise ServiceError(
                400, f"'row' must list {entry.n_vars} marginals in slot order"
            )
        try:
            probs = [float(v) for v in row]
        except (TypeError, ValueError):
            raise ServiceError(400, "'row' must contain numbers") from None
        samples = payload.get("samples", MC_SHARD)
        if not isinstance(samples, int) or not 1 <= samples <= DEFAULT_SAMPLE_CAP:
            raise ServiceError(
                400, f"'samples' must be an integer in [1, {DEFAULT_SAMPLE_CAP}]"
            )
        chunk = payload.get("chunk", MC_SHARD)
        if not isinstance(chunk, int) or chunk < 1:
            raise ServiceError(400, "'chunk' must be a positive integer")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise ServiceError(400, "'seed' must be an integer")
        wire = entry.wire_plan()
        stats = self.stream_stats
        mc_pool = self._mc

        async def stream(cancel: asyncio.Event):
            loop = asyncio.get_running_loop()
            stats["started"] += 1
            stats["active"] += 1
            hits = drawn = index = 0
            try:
                while drawn < samples:
                    if cancel.is_set():
                        break
                    count = min(chunk, samples - drawn)
                    shard = await loop.run_in_executor(
                        mc_pool, wire.mc_shard_hits, probs, seed, index, count
                    )
                    hits += shard
                    drawn += count
                    index += 1
                    estimate = hits / drawn
                    stderr = math.sqrt(
                        max(estimate * (1.0 - estimate), 0.0) / drawn
                    )
                    yield {
                        "samples": drawn,
                        "hits": hits,
                        "estimate": estimate,
                        "stderr": stderr,
                        "done": drawn >= samples,
                    }
            finally:
                stats["active"] -= 1
                if drawn >= samples:
                    stats["completed"] += 1
                else:
                    stats["cancelled"] += 1

        return StreamResponse(stream)

    async def _handle_shutdown(self, _payload) -> tuple[int, dict]:
        self.shutdown_event.set()
        return 200, {"status": "shutting-down"}
