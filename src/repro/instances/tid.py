"""Tuple-independent (TID) probabilistic instances.

The simplest probabilistic relational model (ProbView, Lakshmanan et al.):
every fact is present independently with its own probability. Query
probability evaluation is #P-hard on arbitrary TIDs (Dalvi–Suciu) — the
paper's Theorem 1 shows it becomes linear-time on TIDs of bounded treewidth.

The underlying instance uses whichever backend
:func:`repro.instances.columnar.make_instance` selects (object by default;
``REPRO_INSTANCE_BACKEND=columnar`` or ``backend="columnar"`` for the
U-relation backend). On the columnar backend, probabilities live in a flat
float column aligned with the instance's fact ids, and
:meth:`TIDInstance.extend_encoded` bulk-loads encoded rows with their
probabilities without materializing any :class:`Fact` objects.
"""

from __future__ import annotations

import itertools
from array import array
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.events import EventSpace
from repro.instances.base import Fact, Instance
from repro.instances.columnar import ColumnarInstance, make_instance
from repro.util import check, stable_rng


class TIDInstance:
    """An instance plus an independent presence probability per fact.

    >>> tid = TIDInstance()
    >>> _ = tid.add(Fact("R", (1,)), 0.5)
    >>> tid.probability(Fact("R", (1,)))
    0.5
    """

    def __init__(
        self,
        rows: Mapping[Fact, float] | Iterable[tuple[Fact, float]] = (),
        backend: str | None = None,
    ):
        self.instance = make_instance(backend)
        self._columnar = isinstance(self.instance, ColumnarInstance)
        if self._columnar:
            # One float per fact id — stays aligned because TIDs are
            # append-only (there is no discard API on this wrapper).
            self._probs = array("d")
        else:
            self._probabilities: dict[Fact, float] = {}
        items = rows.items() if isinstance(rows, Mapping) else rows
        for f, p in items:
            self.add(f, p)

    def add(self, f: Fact, probability: float) -> Fact:
        """Insert fact ``f`` with the given presence probability."""
        check(0.0 <= probability <= 1.0, f"probability of {f!r} must be in [0,1]")
        if self._columnar:
            fid = self.instance.add_fact(f.relation, f.args)
            if fid == len(self._probs):
                self._probs.append(float(probability))
            else:
                self._probs[fid] = float(probability)
        else:
            self.instance.add(f)
            self._probabilities[f] = float(probability)
        return f

    def extend_encoded(
        self, relation: str, columns: Sequence, probabilities
    ) -> None:
        """Bulk-insert encoded rows with probabilities (columnar backend).

        ``columns`` and ``probabilities`` follow
        :meth:`repro.instances.columnar.ColumnarInstance.extend_encoded`;
        re-inserted rows overwrite their probability, matching :meth:`add`.
        """
        check(
            self._columnar,
            "extend_encoded requires the columnar instance backend",
        )
        fids = self.instance.extend_encoded(relation, columns)
        total = len(self.instance)
        if len(self._probs) < total:
            self._probs.extend([0.0] * (total - len(self._probs)))
        from repro.instances.columnar import columnar_numpy

        np = columnar_numpy()
        if np is not None:
            view = np.frombuffer(self._probs, dtype=np.float64)
            view[np.asarray(fids, dtype=np.int64)] = np.asarray(
                probabilities, dtype=np.float64
            )
        else:
            for fid, p in zip(fids, probabilities):
                self._probs[fid] = float(p)

    def probability(self, f: Fact) -> float:
        """Return the presence probability of ``f``."""
        if self._columnar:
            fid = self.instance.fact_id_of(f)
            check(fid is not None, f"unknown fact {f!r}")
            return self._probs[fid]
        check(f in self._probabilities, f"unknown fact {f!r}")
        return self._probabilities[f]

    def facts(self) -> list[Fact]:
        """Return the facts in insertion order."""
        return self.instance.facts()

    def __len__(self) -> int:
        return len(self.instance)

    def _items(self) -> list[tuple[Fact, float]]:
        """(fact, probability) pairs in insertion order (materializes)."""
        if self._columnar:
            return list(zip(self.instance.facts(), self._probs))
        return list(self._probabilities.items())

    def event_space(self) -> EventSpace:
        """Return the event space with one independent event per fact.

        Event names follow :attr:`repro.instances.base.Fact.variable_name`,
        the convention the lineage engine uses for its circuit leaves. On
        the columnar backend the names come straight off the columns — no
        Fact objects are materialized.
        """
        if self._columnar:
            names = self.instance.variable_names_for(range(len(self.instance)))
            return EventSpace(dict(zip(names, self._probs)))
        return EventSpace(
            {f.variable_name: p for f, p in self._probabilities.items()}
        )

    # ------------------------------------------------------------------ #
    # possible-world semantics

    def possible_worlds(self) -> Iterator[tuple[Instance, float]]:
        """Enumerate ``(world, probability)`` pairs — exponential oracle."""
        items = self._items()
        check(len(items) <= 20, "possible-world enumeration limited to 20 facts")
        for included in itertools.product([False, True], repeat=len(items)):
            world = Instance(
                f for (f, _p), keep in zip(items, included) if keep
            )
            weight = 1.0
            for (_f, p), keep in zip(items, included):
                weight *= p if keep else 1.0 - p
            yield world, weight

    def world_probability(self, world: Instance) -> float:
        """Return the probability of one specific world."""
        weight = 1.0
        for f, p in self._items():
            weight *= p if f in world else 1.0 - p
        return weight

    def sample_world(self, seed: int | None = None) -> Instance:
        """Draw a world at random (used by Monte-Carlo baselines)."""
        rng = stable_rng(seed)
        return Instance(f for f, p in self._items() if rng.random() < p)

    def world_sampler(self, seed: int | None = None):
        """Return a callable producing a fresh random world per call."""
        rng = stable_rng(seed)
        items = self._items()

        def draw() -> Instance:
            return Instance(f for f, p in items if rng.random() < p)

        return draw

    def treewidth_upper_bound(self, heuristic: str = "min_fill") -> int:
        """Treewidth (heuristic) of the underlying instance — Theorem 1's notion."""
        return self.instance.treewidth_upper_bound(heuristic)

    def __repr__(self) -> str:
        return f"TIDInstance(facts={len(self.instance)})"
