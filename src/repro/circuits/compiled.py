"""Compile-once/evaluate-many circuit backend: a flat CSR circuit IR.

The hash-consed :class:`repro.circuits.circuit.Circuit` is the right arena
for *building* lineages, but evaluating it repeatedly (per possible world,
per Monte-Carlo sample, per conditioning query) pays per-gate dict lookups
and a fresh valuation dict every time. A :class:`CompiledCircuit` lowers the
gate DAG once into flat, topologically-sorted arrays:

- ``kinds`` — one small int code per gate (``K_FALSE`` … ``K_OR``);
- ``offsets``/``indices`` — gate inputs in CSR form, as *positions* into the
  compiled arrays rather than arena gate ids;
- ``var_slot`` — for variable gates, the index of the interned variable
  name, so a valuation is just a flat sequence of booleans;
- cached variable order, moral graph, tree decompositions (per heuristic)
  and the binarized form, so repeated message-passing runs share all the
  structural preprocessing.

Every evaluation entry point then runs a single tight bottom-up loop over
these arrays: :meth:`CompiledCircuit.evaluate` for one world,
:meth:`CompiledCircuit.evaluate_batch` for many worlds at once,
:meth:`CompiledCircuit.probability` for the linear-time
deterministic-decomposable fast path (Theorem 1),
:meth:`CompiledCircuit.probability_batch` for many marginal vectors at
once, and :meth:`CompiledCircuit.probability_enumerate` for the
brute-force oracle.

**Batch evaluation** adds a third lowering stage on top of the flat IR.
When numpy is importable (:func:`numpy_available`), the topologically
sorted gates are grouped into *levels* — every gate's inputs live in
strictly earlier levels — and the CSR arrays are materialized as ``int32``
numpy buffers. A batch of worlds is a ``(n_worlds, n_vars)`` matrix; the
value buffer is gate-major (one row per gate, one column per world) and
each level evaluates in a handful of vectorized operations: NOT is a
whole-block negation, and the AND/OR gates of one fan-in are gathered as a
``(fan_in, count, n_worlds)`` stack and collapsed with one
``np.logical_and.reduce`` / ``np.logical_or.reduce`` (``np.multiply`` /
``np.add`` in the float pass of
:meth:`~CompiledCircuit.probability_batch`). Thousands of sampled worlds
are evaluated per pass instead of one kernel call per world; batches are
chunked so the value buffer stays within :data:`BATCH_BYTE_BUDGET` bytes.
Without numpy every batch entry point falls back to the scalar generated
kernels (or, above :data:`CODEGEN_GATE_LIMIT`, the array interpreter) —
same results, one world at a time.

**Sharded multi-process evaluation** is the fourth lowering stage, in
:mod:`repro.circuits.parallel`: the plan's int32 CSR buffers are published
once into ``multiprocessing.shared_memory``, a persistent worker pool
rebuilds the level schedule from them, and big world/marginal matrices are
split into row shards evaluated on every core.
:meth:`~CompiledCircuit.evaluate_batch` and
:meth:`~CompiledCircuit.probability_batch` route there automatically when
the ``parallel_workers`` knob is set and the batch is large enough
(``parallel.should_shard``); results are bit-identical to the in-process
kernels, and any pool failure falls back to them with a warning.

**Distributed execution** is the fifth stage, in
:mod:`repro.circuits.distributed`: :meth:`CompiledCircuit.wire_bytes`
serializes the plan to a versioned, checksummed wire format, and an asyncio
coordinator streams the same deterministic shards to remote worker
processes over TCP (knob: ``distributed_hosts`` /
``REPRO_DISTRIBUTED_HOSTS``), retrying on worker loss — again with
bit-identical results. The full pipeline is documented in
``ARCHITECTURE.md`` at the repository root.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.circuits.circuit import (
    AND,
    CONST,
    K_AND,
    K_FALSE,
    K_NOT,
    K_OR,
    K_TRUE,
    K_VAR,
    NOT,
    OR,
    VAR,
    Circuit,
)
from repro.util import ReproError, check

try:  # capability check: the vectorized batch kernels need numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None


def numpy_available() -> bool:
    """Whether the level-scheduled numpy batch kernels are active."""
    return _np is not None


def numpy_module():
    """The numpy module the batch kernels use, or ``None`` without numpy.

    Consumers that build their own world matrices (sampling baselines,
    benchmarks) go through this accessor so the capability check stays in
    one place and tests can disable the vectorized path by monkeypatching
    ``repro.circuits.compiled._np``.
    """
    return _np

# Gate kind codes of the flat IR (defined on the arena in ``circuit.py``,
# which maintains them incrementally; re-exported here for compatibility).
# CONST gates split into two codes so the payload never needs a side table.

KIND_NAMES = ("false", "true", "var", "not", "and", "or")

#: Largest variable count accepted by :meth:`CompiledCircuit.probability_enumerate`.
ENUMERATION_VARIABLE_CAP = 26

#: Above this gate count the specialized Python kernels are not generated
#: (source-compile time would dominate) and the generic array interpreter
#: runs instead.
CODEGEN_GATE_LIMIT = 200_000

#: Per-chunk cap on the ``(n_worlds, size)`` value buffer of the numpy
#: batch kernels, in bytes; larger batches are processed in slices.
BATCH_BYTE_BUDGET = 1 << 25

#: Below this gate count lowering stays on the plain Python passes even
#: with numpy available — per-call array overhead beats them on tiny
#: circuits, and the Python path is the reference the vectorized one is
#: pinned against.
VECTOR_MIN_GATES = 512

#: Iteration bound of the level-synchronous wavefront passes (one
#: iteration per circuit level). Deeper-than-this circuits are
#: pathologically chain-shaped for the frontier approach, so they fall
#: back to the per-gate Python pass instead of paying per-level overhead.
_WAVEFRONT_CAP = 8192

_UNBUILT = object()

#: Process-wide lowering counters: how often a full lowering ran, how many
#: compiles were answered from the arena memo / the delta-recompile fast
#: path / the on-disk plan cache. Read by :func:`compile_stats` (the CI
#: plan-cache job asserts on them) and reset by tests via
#: :func:`reset_compile_stats`.
_STATS = {
    "lowerings": 0,
    "arena_cache_hits": 0,
    "delta_recompiles": 0,
    "delta_fallbacks": 0,
    "disk_cache_hits": 0,
}

#: Folded-in totals from before each :func:`reset_compile_stats` call, so
#: ``compile_stats(lifetime=True)`` survives test-isolation resets — the
#: CI plan-cache job compares whole-suite totals across two runs.
_LIFETIME = dict.fromkeys(_STATS, 0)


def compile_stats(lifetime: bool = False) -> dict:
    """A snapshot of the process-wide compile counters.

    With ``lifetime=True`` the counts span the whole process, including
    everything zeroed by intervening :func:`reset_compile_stats` calls.
    """
    if lifetime:
        return {key: _STATS[key] + _LIFETIME[key] for key in _STATS}
    return dict(_STATS)


def reset_compile_stats() -> None:
    """Zero the compile counters (test isolation); totals are kept."""
    for key in _STATS:
        _LIFETIME[key] += _STATS[key]
        _STATS[key] = 0


#: Process-wide batch-execution counters: how many matrix passes the batch
#: entry points ran and how many rows they covered. The query service's
#: tests read these to prove coalescing really merged N requests into one
#: pass; ``/stats`` exposes them for operators.
_BATCH_STATS = {
    "probability_passes": 0,
    "probability_rows": 0,
    "evaluate_passes": 0,
    "evaluate_rows": 0,
}

_BATCH_LIFETIME = dict.fromkeys(_BATCH_STATS, 0)


def batch_stats(lifetime: bool = False) -> dict:
    """A snapshot of the process-wide batch-pass counters.

    One "pass" is one :meth:`CompiledCircuit.probability_batch` or
    :meth:`CompiledCircuit.evaluate_batch` call, whatever execution tier
    it lands on; "rows" counts the matrix rows those passes covered. With
    ``lifetime=True`` the counts span the whole process, including
    everything zeroed by intervening :func:`reset_batch_stats` calls.
    """
    if lifetime:
        return {key: _BATCH_STATS[key] + _BATCH_LIFETIME[key]
                for key in _BATCH_STATS}
    return dict(_BATCH_STATS)


def reset_batch_stats() -> None:
    """Zero the batch-pass counters (test isolation); totals are kept."""
    for key in _BATCH_STATS:
        _BATCH_LIFETIME[key] += _BATCH_STATS[key]
        _BATCH_STATS[key] = 0


def _csr_gather(starts, counts):
    """Flat element indices of many CSR ranges: ``concat(arange(s, s+c))``.

    The workhorse of the wavefront passes: given per-range start offsets
    and lengths it returns the indices of every element of every range,
    in range order, without a Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return _np.empty(0, dtype=_np.int64)
    cum = _np.cumsum(counts)
    shift = _np.repeat(
        starts.astype(_np.int64) - _np.concatenate(([0], cum[:-1])), counts
    )
    return shift + _np.arange(total, dtype=_np.int64)


def _levels_np(kinds, offsets, indices):
    """Vectorized :func:`gate_levels` over int32 arrays; ``None`` on cap.

    Level-synchronous Kahn wavefront: leaves seed level 0, and a gate is
    scheduled the round after its last input — which is exactly
    ``1 + max(input levels)``. Each round retires one whole level with a
    handful of array ops; circuits deeper than :data:`_WAVEFRONT_CAP`
    return ``None`` and the caller uses the per-gate Python pass.
    """
    size = kinds.shape[0]
    lengths = offsets[1:] - offsets[:-1]
    # Parent CSR (who consumes each gate), built by one stable argsort.
    owners = _np.repeat(_np.arange(size, dtype=_np.int32), lengths)
    parents_sorted = owners[_np.argsort(indices, kind="stable")]
    parent_counts = _np.bincount(indices, minlength=size)
    parent_offsets = _np.concatenate(([0], _np.cumsum(parent_counts)))
    depth = _np.zeros(size, dtype=_np.int32)
    remaining = lengths.copy()
    frontier = _np.flatnonzero(lengths == 0)
    level = 0
    while frontier.size:
        level += 1
        if level > _WAVEFRONT_CAP:
            return None
        touched = parents_sorted[
            _csr_gather(parent_offsets[frontier], parent_counts[frontier])
        ]
        if touched.size == 0:
            break
        hits = _np.bincount(touched, minlength=size)
        remaining -= hits
        frontier = _np.flatnonzero((hits > 0) & (remaining == 0))
        depth[frontier] = level
    # Degenerate zero-input op gates (impossible from a Circuit, legal in a
    # hand-built CSR) sit at level 1, matching the Python pass.
    nonleaf_empty = (kinds >= K_NOT) & (lengths == 0)
    if nonleaf_empty.any():
        depth[nonleaf_empty] = 1
    return depth


def gate_levels(kinds, offsets, indices) -> list[int]:
    """Per-gate level of the schedule: inputs live in strictly lower levels.

    Variables and constants sit at level 0; every other gate one past its
    deepest input. This is the schedule :class:`_BatchPlan` groups by and
    the one :mod:`repro.circuits.distributed` ships (and re-verifies) in
    the wire format, so both derive it from this single definition. Large
    inputs take a vectorized wavefront pass when numpy is available; the
    Python loop below is the definition both must match.
    """
    if _np is not None and len(kinds) >= VECTOR_MIN_GATES:
        arr = _levels_np(
            _np.asarray(kinds, dtype=_np.int32),
            _np.asarray(offsets, dtype=_np.int32),
            _np.asarray(indices, dtype=_np.int32),
        )
        if arr is not None:
            return arr.tolist()
    depth = [0] * len(kinds)
    for pos in range(len(kinds)):
        kind = kinds[pos]
        if kind == K_VAR or kind == K_TRUE or kind == K_FALSE:
            continue
        start, end = offsets[pos], offsets[pos + 1]
        depth[pos] = 1 + max(
            (depth[indices[j]] for j in range(start, end)), default=0
        )
    return depth


def levels_consistent(kinds, offsets, indices, levels) -> bool:
    """Whether ``levels`` is exactly :func:`gate_levels` of the CSR arrays.

    The arrays must already have passed :func:`check_plan_arrays`, which
    guarantees topological input references — then the level schedule is
    the unique fixed point of "one past the deepest input", so verifying
    the local equation at every gate against the *candidate* levels proves
    the whole schedule. That makes validation one O(edges) pass
    (``maximum.reduceat`` over the non-empty CSR segments, which are
    contiguous in ``indices``) instead of re-running the wavefront — the
    cost that used to dominate loading a cached or wire-shipped plan.
    """
    size = len(kinds)
    if len(levels) != size:
        return False
    if _np is not None and size >= VECTOR_MIN_GATES:
        akinds = _np.asarray(kinds, dtype=_np.int32)
        aoffsets = _np.asarray(offsets, dtype=_np.int64)
        aindices = _np.asarray(indices, dtype=_np.int64)
        alevels = _np.asarray(levels, dtype=_np.int64)
        # Degenerate zero-input op gates sit at level 1 (the python pass's
        # ``default=0`` branch); leaves at 0; everything else is checked
        # against its inputs below.
        expected = _np.ones(size, dtype=_np.int64)
        expected[akinds <= K_VAR] = 0
        nonempty = _np.flatnonzero(aoffsets[1:] > aoffsets[:-1])
        if nonempty.size:
            expected[nonempty] = (
                _np.maximum.reduceat(alevels[aindices], aoffsets[nonempty]) + 1
            )
        return bool(_np.array_equal(expected, alevels))
    return gate_levels(list(kinds), list(offsets), list(indices)) == list(levels)


def check_plan_arrays(*, size, kinds, offsets, indices, var_slot, n_vars,
                      output) -> None:
    """Structural validation of one flat CSR lowering; raises on damage.

    The shared gatekeeper for plans that arrive from outside this process —
    the wire format and the on-disk plan cache: consistent lengths, an
    in-range output, monotone offsets, known gate kinds, leaf gates without
    inputs, in-range variable slots, and strictly topological input
    references (every input position below its gate's). Vectorized when
    numpy is available; the Python loops below are the same checks.
    """
    check(size >= 1, "plan has no gates")
    check(
        len(kinds) == size
        and len(var_slot) == size
        and len(offsets) == size + 1,
        "plan sections disagree about the gate count",
    )
    check(0 <= output < size, "plan output gate out of range")
    check(
        offsets[0] == 0 and offsets[-1] == len(indices),
        "plan CSR offsets are inconsistent",
    )
    if _np is not None and size >= VECTOR_MIN_GATES:
        akinds = _np.asarray(kinds, dtype=_np.int64)
        aoffsets = _np.asarray(offsets, dtype=_np.int64)
        aindices = _np.asarray(indices, dtype=_np.int64)
        avar_slot = _np.asarray(var_slot, dtype=_np.int64)
        lengths = aoffsets[1:] - aoffsets[:-1]
        check(bool((lengths >= 0).all()), "plan CSR offsets are not monotone")
        check(
            bool(((akinds >= K_FALSE) & (akinds <= K_OR)).all()),
            "plan has an unknown gate kind",
        )
        leaf = akinds <= K_VAR
        check(
            bool((lengths[leaf] == 0).all()),
            "plan leaf gate has inputs",
        )
        var_mask = akinds == K_VAR
        check(
            bool(
                ((avar_slot[var_mask] >= 0) & (avar_slot[var_mask] < n_vars)).all()
            ),
            "plan variable slot out of range",
        )
        owners = _np.repeat(_np.arange(size, dtype=_np.int64), lengths)
        check(
            bool(((aindices >= 0) & (aindices < owners)).all()),
            "plan gate input does not precede its gate",
        )
        return
    for pos in range(size):
        check(
            offsets[pos] <= offsets[pos + 1],
            "plan CSR offsets are not monotone",
        )
        kind = kinds[pos]
        check(K_FALSE <= kind <= K_OR, f"plan has unknown gate kind {kind}")
        if kind <= K_VAR:
            check(
                offsets[pos] == offsets[pos + 1],
                "plan leaf gate has inputs",
            )
        if kind == K_VAR:
            check(
                0 <= var_slot[pos] < n_vars,
                "plan variable slot out of range",
            )
        for j in range(offsets[pos], offsets[pos + 1]):
            check(
                0 <= indices[j] < pos,
                "plan gate input does not precede its gate",
            )


#: Fan-in up to which AND/OR are emitted as infix chains; larger gates use
#: list-based reductions to keep the generated AST shallow.
_INFIX_FAN_IN = 32


class _GroupOp:
    """One vectorized step: all of a level's gates of one kind and fan-in.

    ``rows`` is the contiguous ``(start, end)`` output-row block the
    renumbering gave the group; ``gather`` holds the input rows — shape
    ``(count,)`` for NOT, ``(fan_in, count)`` for AND/OR, so indexing the
    value matrix with it stacks every gate's ``j``-th input in plane ``j``
    and one ``ufunc.reduce`` over axis 0 evaluates the whole group.
    (``reduceat`` over CSR segments would express the same reduction, but
    its axis-0 inner loop measures ~80x slower than the grouped
    ``reduce``, so the plan pre-groups by fan-in instead.)
    """

    __slots__ = ("kind", "rows", "gather")

    def __init__(self, kind: int, rows: tuple[int, int], gather):
        self.kind = kind
        self.rows = rows
        self.gather = gather


class _BatchPlan:
    """The third lowering stage: level-scheduled numpy batch arrays.

    Gates are grouped into *levels* — every gate's inputs live in strictly
    earlier levels — and renumbered into a gate-major layout: the value
    matrix is ``(size, n_worlds)``, variables first, then constants, then
    one contiguous row block per (level, kind, fan-in) group. Each world
    is a column, so gathering a gate's inputs reads whole contiguous rows,
    every scatter is a slice assignment, and each group is one gather plus
    one reduction regardless of the world count.

    The plan also materializes the compiled CSR arrays (``kinds``,
    ``offsets``, ``indices``, ``var_slot``) as int32 numpy buffers — the
    exact form :mod:`repro.circuits.parallel` publishes into shared memory
    so worker processes can rebuild this plan without repickling the
    circuit. :meth:`run` executes one pass; :meth:`run_into` chunks it.
    """

    __slots__ = (
        "size",
        "kinds",
        "offsets",
        "indices",
        "var_slot",
        "row_of",
        "var_slots",
        "const_rows",
        "const_values",
        "levels",
        "output_row",
    )

    def __init__(self, compiled: "CompiledCircuit"):
        size = compiled.size
        self.size = size
        arrays = getattr(compiled, "_np32", None)
        if arrays is not None:
            kinds, offsets, indices, var_slot = arrays
        else:
            kinds = _np.asarray(compiled.kinds, dtype=_np.int32)
            offsets = _np.asarray(compiled.offsets, dtype=_np.int32)
            indices = _np.asarray(compiled.indices, dtype=_np.int32)
            var_slot = _np.asarray(compiled.var_slot, dtype=_np.int32)
        self.kinds = kinds
        self.offsets = offsets
        self.indices = indices
        self.var_slot = var_slot

        # The level schedule: reuse the lowering's cached copy when the
        # source carries one (CompiledCircuit / WirePlan), else derive it.
        depth = None
        lister = getattr(compiled, "levels_list", None)
        if lister is not None:
            depth = _np.asarray(lister(), dtype=_np.int32)
        else:
            shipped = getattr(compiled, "levels", None)
            if isinstance(shipped, (list, tuple)):
                depth = _np.asarray(shipped, dtype=_np.int32)
        if depth is None:
            if size >= VECTOR_MIN_GATES:
                depth = _levels_np(kinds, offsets, indices)
            if depth is None:
                depth = _np.asarray(
                    gate_levels(
                        kinds.tolist(), offsets.tolist(), indices.tolist()
                    ),
                    dtype=_np.int32,
                )

        # Renumber: variables, constants, then level by level, group by
        # group — one stable lexsort; ties keep topological order, exactly
        # like the historical per-gate bucketing.
        lengths = offsets[1:] - offsets[:-1]
        var_positions = _np.flatnonzero(kinds == K_VAR)
        const_positions = _np.flatnonzero(
            (kinds == K_TRUE) | (kinds == K_FALSE)
        )
        op_positions = _np.flatnonzero(kinds >= K_NOT)
        order = _np.lexsort(
            (lengths[op_positions], kinds[op_positions], depth[op_positions])
        )
        sorted_ops = op_positions[order]
        n_vars = var_positions.size
        n_consts = const_positions.size
        leaf_rows = n_vars + n_consts
        row_of = _np.empty(size, dtype=_np.intp)
        row_of[var_positions] = _np.arange(n_vars)
        row_of[const_positions] = n_vars + _np.arange(n_consts)
        row_of[sorted_ops] = leaf_rows + _np.arange(sorted_ops.size)
        self.row_of = row_of
        self.var_slots = var_slot[var_positions].astype(_np.intp)
        self.const_rows = (int(n_vars), int(leaf_rows))
        self.const_values = kinds[const_positions] == K_TRUE

        # Group boundaries over the sorted (level, kind, fan-in) keys; each
        # group's gather is one fancy-index over a broadcast offset block.
        op_depth = depth[sorted_ops]
        op_kind = kinds[sorted_ops]
        op_fan = lengths[sorted_ops]
        if sorted_ops.size:
            cuts = (
                _np.flatnonzero(
                    (op_depth[1:] != op_depth[:-1])
                    | (op_kind[1:] != op_kind[:-1])
                    | (op_fan[1:] != op_fan[:-1])
                )
                + 1
            )
            starts = _np.concatenate(([0], cuts))
            ends = _np.concatenate((cuts, [sorted_ops.size]))
            n_levels = int(op_depth[-1])
        else:
            starts = ends = _np.empty(0, dtype=_np.intp)
            n_levels = 0
        buckets: list[list[_GroupOp]] = [[] for _ in range(n_levels)]
        for start, end in zip(starts.tolist(), ends.tolist()):
            positions = sorted_ops[start:end]
            kind = int(op_kind[start])
            rows = (int(leaf_rows + start), int(leaf_rows + end))
            if kind == K_NOT:
                gather = row_of[indices[offsets[positions]]]
            else:
                # gather[j, i] = row of the j-th input of the i-th gate
                fan_in = int(op_fan[start])
                block = offsets[positions][:, None] + _np.arange(fan_in)
                gather = row_of[indices[block]].T
            buckets[int(op_depth[start]) - 1].append(_GroupOp(kind, rows, gather))
        self.levels = tuple(tuple(ops) for ops in buckets)
        self.output_row = int(row_of[compiled.output])

    def run(self, matrix, as_float: bool):
        """One level-scheduled pass over a ``(n_worlds, n_vars)`` matrix.

        ``matrix`` holds one row per world (bool) or per marginal vector
        (float64), columns indexed by variable slot. Returns the output
        values as a 1-D array, one entry per input row. Internally the
        value matrix is gate-major — ``(size, n_worlds)``, rows in plan
        order — so each group's gather reads contiguous rows and each
        scatter is a slice assignment; per (level, kind, fan-in) group the
        work is one gather plus one reduction over the stacked inputs.
        This is the kernel the sharded workers of
        :mod:`repro.circuits.parallel` execute after rebuilding the plan
        from the shared CSR arrays.
        """
        n_worlds = matrix.shape[0]
        if as_float and n_worlds == 1:
            # A single-column value buffer makes numpy's reduce kernels
            # pick a different inner loop than wider batches do (a few
            # ulps of drift on deep plans), while batches of two or more
            # rows are bitwise identical to each other. Evaluate the row
            # as a width-2 pass (a zero-copy broadcast view) so every
            # batch shape shares one reduction order, and keep element 0.
            widened = _np.broadcast_to(matrix, (2, matrix.shape[1]))
            return self.run(widened, as_float)[:1].copy()
        values = _np.empty(
            (self.size, n_worlds), dtype=_np.float64 if as_float else _np.bool_
        )
        n_vars = self.var_slots.size
        if n_vars:
            values[:n_vars] = matrix.T[self.var_slots]
        const_start, const_end = self.const_rows
        if const_end > const_start:
            values[const_start:const_end] = self.const_values[:, None]
        and_reduce = _np.multiply.reduce if as_float else _np.logical_and.reduce
        or_reduce = _np.add.reduce if as_float else _np.logical_or.reduce
        for level in self.levels:
            for op in level:
                start, end = op.rows
                if op.kind == K_NOT:
                    children = values[op.gather]
                    values[start:end] = 1.0 - children if as_float else ~children
                else:
                    reduce = and_reduce if op.kind == K_AND else or_reduce
                    reduce(values[op.gather], axis=0, out=values[start:end])
        return values[self.output_row].copy()

    def run_into(self, matrix, out, as_float: bool) -> None:
        """Run :meth:`run` into ``out`` row range by row range.

        Chunks the input so the gate-major value buffer stays under
        :data:`BATCH_BYTE_BUDGET` bytes regardless of the batch size;
        ``out`` must be a 1-D array with one entry per matrix row.
        """
        itemsize = 8 if as_float else 1
        step = max(1, BATCH_BYTE_BUDGET // max(1, self.size * itemsize))
        for start in range(0, matrix.shape[0], step):
            out[start : start + step] = self.run(matrix[start : start + step], as_float)


class CompiledCircuit:
    """An immutable, flat, topologically-sorted lowering of a :class:`Circuit`.

    Positions ``0 .. size-1`` enumerate the gates reachable from the output
    in topological order; ``output`` is the position of the output gate.
    Construct through :func:`compile_circuit`, which caches the compiled
    form on the source circuit.
    """

    __slots__ = (
        "source",
        "size",
        "_kinds",
        "_offsets",
        "_indices",
        "_var_slot",
        "var_names",
        "output",
        "has_negation",
        "arena_version",
        "arena_size",
        "_gate_ids",
        "_position_of",
        "_var_index",
        "_levels",
        "_levels32",
        "_np32",
        "_binarized",
        "_decompositions",
        "_bool_kernel",
        "_float_kernel",
        "_batch_plan",
        "_shared_plan",
        "_wire_cache",
        "_wire_digest",
        "__weakref__",
    )

    def __init__(self, circuit: Circuit):
        check(circuit.output is not None, "circuit has no output gate")
        self._init_lazy()
        self.source = circuit
        lowered = (
            _np is not None
            and len(circuit) >= VECTOR_MIN_GATES
            and getattr(circuit, "_kind_codes", None) is not None
            and self._lower_vector(circuit)
        )
        if not lowered:
            self._lower_python(circuit)
        self.arena_version = circuit.version
        self.arena_size = len(circuit)
        _STATS["lowerings"] += 1

    def _init_lazy(self) -> None:
        """Fresh derived-state caches (shared by every construction path)."""
        # The CSR lists; ``None`` means "materialize from _np32 on demand"
        # (the vectorized paths never pay ``tolist`` unless a scalar
        # consumer actually asks for the lists).
        self._kinds = None
        self._offsets = None
        self._indices = None
        self._var_slot = None
        self._gate_ids = None  # tuple, or an int64 array from _lower_vector
        self._position_of = None
        self._var_index = None
        self._levels = None  # per-gate level schedule (gate_levels), cached
        self._levels32 = None  # same schedule as an int32 array, if cheaper
        self._np32 = None  # (kinds, offsets, indices, var_slot) as int32
        self._binarized: CompiledCircuit | None = None
        self._decompositions: dict[str, object] = {}
        self._bool_kernel = _UNBUILT
        self._float_kernel = _UNBUILT
        self._batch_plan = _UNBUILT
        self._shared_plan = None  # lazily published by repro.circuits.parallel
        self._wire_cache = None  # lazily packed by repro.circuits.distributed
        self._wire_digest = None  # content digest of _wire_cache, cached with it

    def _lower_python(self, circuit: Circuit) -> None:
        """The reference per-gate lowering (numpy-free, and small circuits)."""
        gate_ids = circuit.reachable_from_output()
        self._gate_ids = tuple(gate_ids)
        position_of: dict[int, int] = {gid: pos for pos, gid in enumerate(gate_ids)}
        self._position_of = position_of
        self.size = len(gate_ids)
        kinds: list[int] = []
        offsets: list[int] = [0]
        indices: list[int] = []
        var_slot: list[int] = []
        var_names: list[str] = []
        var_index: dict[str, int] = {}
        for gid in gate_ids:
            gate = circuit.gate(gid)
            slot = -1
            if gate.kind == VAR:
                kind = K_VAR
                name = gate.payload
                slot = var_index.get(name, -1)
                if slot < 0:
                    slot = len(var_names)
                    var_index[name] = slot
                    var_names.append(name)
            elif gate.kind == CONST:
                kind = K_TRUE if gate.payload else K_FALSE
            elif gate.kind == NOT:
                kind = K_NOT
            elif gate.kind == AND:
                kind = K_AND
            elif gate.kind == OR:
                kind = K_OR
            else:  # pragma: no cover - guarded by Circuit construction
                raise ReproError(f"unknown gate kind {gate.kind!r}")
            kinds.append(kind)
            var_slot.append(slot)
            indices.extend(position_of[i] for i in gate.inputs)
            offsets.append(len(indices))
        self._kinds = kinds
        self._offsets = offsets
        self._indices = indices
        self._var_slot = var_slot
        self.var_names: tuple[str, ...] = tuple(var_names)
        self._var_index = var_index
        self.output = position_of[circuit.output]  # type: ignore[index]
        #: Whether any NOT gate is reachable — precomputed once here rather
        #: than rescanning ``kinds`` on every property access.
        self.has_negation: bool = K_NOT in kinds

    def _lower_vector(self, circuit: Circuit) -> bool:
        """Array-pass lowering over the arena's flat mirrors (numpy).

        Reachability is a frontier BFS from the output, topological order
        is gate-id order (creation order), CSR remapping is one boolean
        edge mask plus an inverse-permutation gather, and variable
        interning is a rank map over the arena's (already first-occurrence
        ordered) slot numbers. Produces exactly the arrays of
        :meth:`_lower_python`; returns ``False`` (caller falls back) for
        wavefront-hostile shapes, i.e. depth beyond :data:`_WAVEFRONT_CAP`.
        """
        n = len(circuit)
        akinds = _np.frombuffer(circuit._kind_codes, dtype=_np.int8)
        avar_slots = _np.frombuffer(circuit._var_slots, dtype=_np.int32)
        ainputs = (
            _np.frombuffer(circuit._inputs_flat, dtype=_np.int32)
            if len(circuit._inputs_flat)
            else _np.empty(0, dtype=_np.int32)
        )
        aoffsets = _np.frombuffer(circuit._input_offsets, dtype=_np.int32)
        lengths = aoffsets[1:] - aoffsets[:-1]
        reach = _np.zeros(n, dtype=_np.bool_)
        fresh = _np.zeros(n, dtype=_np.bool_)
        reach[circuit.output] = True
        frontier = _np.asarray([circuit.output], dtype=_np.int64)
        rounds = 0
        cumsum = _np.cumsum
        repeat = _np.repeat
        arange = _np.arange
        flatnonzero = _np.flatnonzero
        while frontier.size:
            rounds += 1
            if rounds > _WAVEFRONT_CAP:
                return False
            # Inlined _csr_gather (keeps the per-round call count down —
            # the loop runs once per cone level).
            counts = lengths[frontier]
            cum = cumsum(counts)
            total = int(cum[-1])
            if total == 0:
                break
            shift = repeat(aoffsets[frontier] - cum + counts, counts)
            children = ainputs[shift + arange(total, dtype=_np.int64)]
            children = children[~reach[children]]
            if children.size == 0:
                break
            reach[children] = True
            # Dedup without sorting: scatter into a scratch mask, read the
            # set bits back out, clear them for the next round.
            fresh[children] = True
            frontier = flatnonzero(fresh)
            fresh[frontier] = False
        gate_ids = _np.flatnonzero(reach)
        size = int(gate_ids.size)
        pos_of = _np.zeros(n, dtype=_np.int32)
        pos_of[gate_ids] = _np.arange(size, dtype=_np.int32)
        kinds32 = akinds[gate_ids].astype(_np.int32)
        counts = lengths[gate_ids]
        offsets32 = _np.zeros(size + 1, dtype=_np.int32)
        _np.cumsum(counts, out=offsets32[1:])
        indices32 = pos_of[ainputs[_np.repeat(reach, lengths)]]
        var_mask = kinds32 == K_VAR
        arena_slots = avar_slots[gate_ids[var_mask]]  # increasing: see _add
        slot_rank = _np.full(len(circuit._slot_names), -1, dtype=_np.int32)
        slot_rank[arena_slots] = _np.arange(arena_slots.size, dtype=_np.int32)
        var_slot32 = _np.full(size, -1, dtype=_np.int32)
        var_slot32[var_mask] = slot_rank[arena_slots]
        slot_names = circuit._slot_names
        self.size = size
        # The lists stay unmaterialized (the properties build them from
        # ``_np32`` if a scalar consumer asks); the level schedule is a
        # single gather from the arena's incrementally maintained levels.
        self.var_names = tuple(slot_names[s] for s in arena_slots.tolist())
        self.output = int(pos_of[circuit.output])
        self.has_negation = bool((kinds32 == K_NOT).any())
        self._gate_ids = gate_ids
        self._np32 = (kinds32, offsets32, indices32, var_slot32)
        self._levels32 = _np.frombuffer(
            circuit._gate_levels, dtype=_np.int32
        )[gate_ids]
        return True

    @classmethod
    def _from_arrays(
        cls, circuit: Circuit, *, size, kinds, offsets, indices, var_slot,
        var_names, levels, gate_ids, output,
    ) -> "CompiledCircuit":
        """Rebuild a lowering from stored arrays (the on-disk plan cache).

        Everything is structurally validated (:func:`check_plan_arrays`
        plus a level-schedule match and arena-range checks on
        ``gate_ids``), so a corrupt cache entry raises
        :class:`~repro.util.ReproError` instead of producing a plan that
        silently disagrees with a fresh compile.
        """
        check(circuit.output is not None, "circuit has no output gate")
        check_plan_arrays(
            size=size, kinds=kinds, offsets=offsets, indices=indices,
            var_slot=var_slot, n_vars=len(var_names), output=output,
        )
        check(
            levels_consistent(kinds, offsets, indices, levels),
            "cached plan level schedule does not match its CSR arrays",
        )
        if _np is not None:
            ids = _np.asarray(gate_ids, dtype=_np.int64)
            ids_ok = (
                ids.size == size
                and bool((ids[1:] > ids[:-1]).all())
                and 0 <= int(ids[0])
                and int(ids[-1]) < len(circuit)
            )
        else:
            ids_ok = (
                len(gate_ids) == size
                and all(a < b for a, b in zip(gate_ids, gate_ids[1:]))
                and 0 <= gate_ids[0]
                and gate_ids[-1] < len(circuit)
            )
        check(ids_ok, "cached plan gate ids do not fit the arena")
        check(
            gate_ids[output] == circuit.output,
            "cached plan output does not match the arena output",
        )
        compiled = cls.__new__(cls)
        compiled._init_lazy()
        compiled.source = circuit
        compiled.size = size
        compiled.var_names = tuple(var_names)
        compiled.output = int(output)
        compiled.arena_version = circuit.version
        compiled.arena_size = len(circuit)
        # ``tolist`` keeps the elements python ints whatever sequence type
        # the decoder handed over (ndarray, array.array, list).
        compiled._gate_ids = tuple(
            gate_ids.tolist() if hasattr(gate_ids, "tolist") else gate_ids
        )
        compiled._levels = (
            levels.tolist() if hasattr(levels, "tolist") else list(levels)
        )
        if _np is not None:
            kinds32 = _np.asarray(kinds, dtype=_np.int32)
            compiled._np32 = (
                kinds32,
                _np.asarray(offsets, dtype=_np.int32),
                _np.asarray(indices, dtype=_np.int32),
                _np.asarray(var_slot, dtype=_np.int32),
            )
            compiled.has_negation = bool((kinds32 == K_NOT).any())
        else:
            compiled._kinds = list(kinds)
            compiled._offsets = list(offsets)
            compiled._indices = list(indices)
            compiled._var_slot = list(var_slot)
            compiled.has_negation = K_NOT in compiled._kinds
        return compiled

    # ------------------------------------------------------------------ #
    # inspection

    @property
    def kinds(self) -> list[int]:
        """Gate kind codes by position (list, materialized on demand)."""
        value = self._kinds
        if value is None:
            value = self._kinds = self._np32[0].tolist()
        return value

    @property
    def offsets(self) -> list[int]:
        """CSR input offsets, one past the last gate (materialized lazily)."""
        value = self._offsets
        if value is None:
            value = self._offsets = self._np32[1].tolist()
        return value

    @property
    def indices(self) -> list[int]:
        """CSR input positions, flat (materialized lazily)."""
        value = self._indices
        if value is None:
            value = self._indices = self._np32[2].tolist()
        return value

    @property
    def var_slot(self) -> list[int]:
        """Variable slot per position, ``-1`` off VAR gates (lazy)."""
        value = self._var_slot
        if value is None:
            value = self._var_slot = self._np32[3].tolist()
        return value

    @property
    def gate_ids(self) -> tuple[int, ...]:
        """Arena gate ids by compiled position (ascending), built lazily."""
        ids = self._gate_ids
        if type(ids) is not tuple:
            ids = self._gate_ids = tuple(ids.tolist())
        return ids

    @property
    def position_of(self) -> dict[int, int]:
        """Arena gate id → compiled position, built lazily."""
        mapping = self._position_of
        if mapping is None:
            mapping = self._position_of = {
                gid: pos for pos, gid in enumerate(self.gate_ids)
            }
        return mapping

    @property
    def var_index(self) -> dict[str, int]:
        """Variable name → slot, built lazily (inverse of ``var_names``)."""
        mapping = self._var_index
        if mapping is None:
            mapping = self._var_index = {
                name: slot for slot, name in enumerate(self.var_names)
            }
        return mapping

    def levels_list(self) -> list[int]:
        """The :func:`gate_levels` schedule of this lowering, computed once.

        Shared by the batch plan, the wire encoding and delta
        recompilation, which patches it in O(|delta|) instead of
        recomputing.
        """
        if self._levels is None:
            if self._levels32 is not None:
                self._levels = self._levels32.tolist()
            elif self._np32 is not None:
                arr = _levels_np(*self._np32[:3])
                if arr is not None:
                    self._levels = arr.tolist()
            if self._levels is None:
                self._levels = gate_levels(self.kinds, self.offsets, self.indices)
        return self._levels

    def variables(self) -> tuple[str, ...]:
        """Variable names in slot order (first topological occurrence)."""
        return self.var_names

    def inputs_of(self, position: int) -> list[int]:
        """Input positions of the gate at ``position``."""
        return self.indices[self.offsets[position] : self.offsets[position + 1]]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit(gates={self.size}, variables={len(self.var_names)},"
            f" output={self.output})"
        )

    # ------------------------------------------------------------------ #
    # valuation plumbing

    def slot_values(self, valuation) -> Sequence:
        """Normalize a valuation to a sequence of truth values by var slot.

        Accepts a mapping from variable name to bool (extra names are
        ignored, missing names raise) or a sequence already indexed by slot.
        """
        if isinstance(valuation, Mapping):
            values = []
            for name in self.var_names:
                if name not in valuation:
                    raise ReproError(f"valuation is missing variable {name!r}")
                values.append(1 if valuation[name] else 0)
            return values
        check(
            len(valuation) == len(self.var_names),
            f"valuation has {len(valuation)} entries for {len(self.var_names)} variables",
        )
        return valuation

    def slot_marginals(self, marginals) -> Sequence[float]:
        """Normalize marginals to a float sequence by var slot.

        Accepts an :class:`repro.events.EventSpace`, a mapping from variable
        name to probability, or a sequence indexed by slot. Anything else —
        including another circuit passed by mistake — is rejected with a
        clear error instead of being duck-typed on a ``probability``
        attribute.
        """
        from repro.events import EventSpace

        if isinstance(marginals, EventSpace):
            probability = marginals.probability
            return [probability(name) for name in self.var_names]
        if isinstance(marginals, Mapping):
            missing = [n for n in self.var_names if n not in marginals]
            check(not missing, f"marginals are missing variables {missing!r}")
            return [float(marginals[name]) for name in self.var_names]
        if hasattr(marginals, "__len__") and hasattr(marginals, "__getitem__"):
            check(
                len(marginals) == len(self.var_names),
                f"marginals have {len(marginals)} entries for "
                f"{len(self.var_names)} variables",
            )
            return marginals
        raise ReproError(
            f"unsupported marginals type {type(marginals).__name__}; expected an "
            "EventSpace, a name→probability mapping, or a slot-indexed sequence"
        )

    # ------------------------------------------------------------------ #
    # kernel generation

    def _build_kernel(self, mode: str):
        """Specialize the circuit into one straight-line Python function.

        The second lowering stage: each gate becomes a single assignment
        over local variables (``v7 = v3 * v5``), so repeated evaluation
        costs plain bytecode instead of an interpreted dispatch loop per
        gate. ``mode`` is ``"bool"`` (0/1 ints, ``&``/``|``/``^``) or
        ``"float"`` (the d-D probability pass: ``*`` at AND, ``+`` at OR).
        Returns ``None`` above :data:`CODEGEN_GATE_LIMIT`; callers then use
        the generic array interpreter.
        """
        if self.size > CODEGEN_GATE_LIMIT:
            return None
        as_float = mode == "float"
        lines = ["def _kernel(s):"]
        for pos in range(self.size):
            kind = self.kinds[pos]
            if kind == K_VAR:
                slot = self.var_slot[pos]
                expr = f"s[{slot}]" if as_float else f"1 if s[{slot}] else 0"
            elif kind == K_TRUE:
                expr = "1.0" if as_float else "1"
            elif kind == K_FALSE:
                expr = "0.0" if as_float else "0"
            elif kind == K_NOT:
                child = self.indices[self.offsets[pos]]
                expr = f"1.0 - v{child}" if as_float else f"v{child} ^ 1"
            else:
                terms = [f"v{i}" for i in self.inputs_of(pos)]
                if len(terms) <= _INFIX_FAN_IN:
                    if as_float:
                        op = " * " if kind == K_AND else " + "
                    else:
                        op = " & " if kind == K_AND else " | "
                    expr = op.join(terms)
                else:
                    listing = ", ".join(terms)
                    if as_float:
                        fn = "_prod" if kind == K_AND else "sum"
                        expr = f"{fn}([{listing}])"
                    else:
                        fn = "all" if kind == K_AND else "any"
                        expr = f"1 if {fn}([{listing}]) else 0"
            lines.append(f"    v{pos} = {expr}")
        lines.append(f"    return v{self.output}")
        import math

        namespace: dict[str, object] = {"_prod": math.prod}
        exec(compile("\n".join(lines), "<compiled-circuit>", "exec"), namespace)
        return namespace["_kernel"]

    def _kernel(self, mode: str):
        if mode == "float":
            if self._float_kernel is _UNBUILT:
                self._float_kernel = self._build_kernel("float")
            return self._float_kernel
        if self._bool_kernel is _UNBUILT:
            self._bool_kernel = self._build_kernel("bool")
        return self._bool_kernel

    # ------------------------------------------------------------------ #
    # level-scheduled numpy batch kernels (third lowering stage)

    def batch_plan(self) -> _BatchPlan | None:
        """The level-scheduled numpy plan, built once; ``None`` without numpy."""
        if _np is None:
            return None
        if self._batch_plan is _UNBUILT:
            self._batch_plan = _BatchPlan(self)
        return self._batch_plan

    def _batch_pass(self, matrix, as_float: bool):
        """One level-scheduled pass over a matrix (see :meth:`_BatchPlan.run`)."""
        return self.batch_plan().run(matrix, as_float)

    def wire_bytes(self) -> bytes:
        """This circuit's plan in the versioned wire format, packed once.

        The stage-5 export hook: the blob
        (:func:`repro.circuits.distributed.plan_to_bytes`) carries the int32
        CSR buffers, the level schedule and the plan metadata, and round-trips
        through :func:`repro.circuits.distributed.plan_from_bytes` on any
        host — with or without numpy on either side.
        """
        from repro.circuits import distributed

        return distributed.plan_to_bytes(self)

    def plan_digest(self) -> str:
        """Content digest of :meth:`wire_bytes`, computed once per circuit.

        The identity the distributed runtime keys its caches on: workers
        cache decoded plans by it and the coordinator's ``PLAN_OFFER``
        handshake sends it instead of the plan, so a plan crosses the wire
        at most once per worker per circuit.
        """
        if self._wire_digest is None:
            from repro.circuits import distributed

            self._wire_digest = distributed.plan_checksum(self.wire_bytes())
        return self._wire_digest

    def _maybe_sharded(self, matrix, as_float: bool):
        """Route a big batch to distributed hosts or the worker pool.

        The knob ladder, top down: distributed hosts (stage 5) when the
        ``distributed_hosts`` knob names workers and the batch is large
        enough; the multi-process pool (stage 4) when ``parallel_workers``
        says so; otherwise ``None`` — the caller's in-process kernels.
        Either backend failing falls through to the next tier (warned once
        per process) rather than losing the batch.
        """
        from repro.circuits import distributed, parallel

        n_rows = matrix.shape[0]
        if distributed.should_distribute(n_rows):
            try:
                return distributed._distributed_matrix_pass(
                    self, matrix, as_float, None
                )
            except (ReproError, OSError):
                parallel.warn_serial_fallback(
                    "distributed batch evaluation failed; falling back to "
                    "the local execution tiers"
                )
        if not parallel.should_shard(n_rows):
            return None
        try:
            return parallel._sharded_matrix_pass(self, matrix, as_float, None)
        except (ReproError, OSError):
            # OSError covers shared-memory allocation (ENOSPC on a small
            # /dev/shm) and process-spawn failures; the in-process kernels
            # below need neither.
            parallel.warn_serial_fallback(
                "sharded batch evaluation failed; falling back to the "
                "single-process kernels"
            )
            return None

    def _batch_chunk(self, as_float: bool) -> int:
        """Rows per chunk so the value buffer stays under the byte budget."""
        itemsize = 8 if as_float else 1
        return max(1, BATCH_BYTE_BUDGET // max(1, self.size * itemsize))

    def _as_world_matrix(self, valuations):
        """Normalize worlds to a ``(n_worlds, n_vars)`` bool matrix.

        Accepts a 2-D numpy array of truth values in slot order (any dtype
        with a sensible truthiness: ``bool``, 0/1 ints, ``np.bool_``) or an
        iterable of per-world valuations as taken by :meth:`evaluate`. Rows
        are copied as they are drawn, so generators that refill one shared
        row buffer are safe.
        """
        n_vars = len(self.var_names)
        if isinstance(valuations, _np.ndarray) and valuations.ndim == 2:
            check(
                valuations.shape[1] == n_vars,
                f"world matrix has {valuations.shape[1]} columns for "
                f"{n_vars} variables",
            )
            return valuations.astype(_np.bool_, copy=False)
        rows = [tuple(self.slot_values(v)) for v in valuations]
        if not rows:
            return _np.empty((0, n_vars), dtype=_np.bool_)
        return _np.asarray(rows, dtype=_np.bool_)

    # ------------------------------------------------------------------ #
    # Boolean evaluation

    def _evaluate_into(self, buffer: bytearray, slot_values: Sequence) -> int:
        """One bottom-up pass over the flat arrays; returns the output bit."""
        kinds = self.kinds
        offsets = self.offsets
        indices = self.indices
        var_slot = self.var_slot
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == K_VAR:
                value = 1 if slot_values[var_slot[pos]] else 0
            elif kind == K_AND:
                value = 1
                for j in range(offsets[pos], offsets[pos + 1]):
                    if not buffer[indices[j]]:
                        value = 0
                        break
            elif kind == K_OR:
                value = 0
                for j in range(offsets[pos], offsets[pos + 1]):
                    if buffer[indices[j]]:
                        value = 1
                        break
            elif kind == K_NOT:
                value = 1 - buffer[indices[offsets[pos]]]
            else:
                value = kind  # K_TRUE == 1, K_FALSE == 0
            buffer[pos] = value
        return buffer[self.output]

    def evaluate(self, valuation) -> bool:
        """Evaluate the output gate under one valuation."""
        kernel = self._kernel("bool")
        if kernel is not None:
            return bool(kernel(self.slot_values(valuation)))
        buffer = bytearray(self.size)
        return bool(self._evaluate_into(buffer, self.slot_values(valuation)))

    def evaluate_batch(self, valuations: Iterable) -> list[bool]:
        """Evaluate many valuations at once; returns one boolean per world.

        ``valuations`` is an iterable of valuations as accepted by
        :meth:`evaluate`, or a ``(n_worlds, n_vars)`` numpy matrix in slot
        order. With numpy available the whole batch runs through the
        level-scheduled vectorized kernels (:meth:`batch_plan`), chunked to
        bound memory — and row-sharded across the worker processes of
        :mod:`repro.circuits.parallel` when the ``parallel_workers`` knob
        is set and the batch is big enough, with identical results.
        Without numpy each world costs one generated-kernel call (or,
        above the codegen limit, one pass of the array interpreter over a
        single reusable buffer) — no per-world dict or buffer allocation
        either way.
        """
        if _np is not None:
            matrix = self._as_world_matrix(valuations)
            n_worlds = matrix.shape[0]
            if n_worlds == 0:
                return []
            _BATCH_STATS["evaluate_passes"] += 1
            _BATCH_STATS["evaluate_rows"] += n_worlds
            sharded = self._maybe_sharded(matrix, as_float=False)
            if sharded is not None:
                return sharded.tolist()
            out = _np.empty(n_worlds, dtype=_np.bool_)
            self.batch_plan().run_into(matrix, out, as_float=False)
            return out.tolist()
        kernel = self._kernel("bool")
        slot_values = self.slot_values
        if kernel is not None:
            results = [
                bool(kernel(slot_values(valuation))) for valuation in valuations
            ]
        else:
            buffer = bytearray(self.size)
            results = [
                bool(self._evaluate_into(buffer, slot_values(valuation)))
                for valuation in valuations
            ]
        _BATCH_STATS["evaluate_passes"] += 1
        _BATCH_STATS["evaluate_rows"] += len(results)
        return results

    # ------------------------------------------------------------------ #
    # probability fast paths

    def probability(self, marginals) -> float:
        """Linear-time probability for deterministic decomposable circuits.

        One bottom-up float pass: ``P(OR) = Σ``, ``P(AND) = Π``,
        ``P(NOT) = 1 − P``. Correct only on d-D circuits over independent
        variables (Theorem 1); use the ``message_passing`` engine otherwise.
        """
        probs = self.slot_marginals(marginals)
        kernel = self._kernel("float")
        if kernel is not None:
            return float(kernel(probs))
        kinds = self.kinds
        offsets = self.offsets
        indices = self.indices
        var_slot = self.var_slot
        values = [0.0] * self.size
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == K_VAR:
                value = probs[var_slot[pos]]
            elif kind == K_AND:
                value = 1.0
                for j in range(offsets[pos], offsets[pos + 1]):
                    value *= values[indices[j]]
            elif kind == K_OR:
                value = 0.0
                for j in range(offsets[pos], offsets[pos + 1]):
                    value += values[indices[j]]
            elif kind == K_NOT:
                value = 1.0 - values[indices[offsets[pos]]]
            else:
                value = float(kind)  # K_TRUE == 1, K_FALSE == 0
            values[pos] = value
        return values[self.output]

    def probability_batch(self, marginals_batch) -> list[float]:
        """The d-D probability pass of :meth:`probability`, over many rows.

        ``marginals_batch`` is an iterable of marginal assignments as
        accepted by :meth:`probability` (event spaces, mappings, slot
        sequences), or a ``(n_rows, n_vars)`` float matrix in slot order.
        With numpy available all rows share one level-scheduled float pass
        (grouped ``np.multiply.reduce`` at AND, ``np.add.reduce`` at OR),
        row-sharded across worker processes for big batches when the
        ``parallel_workers`` knob is set; otherwise each row costs one
        scalar :meth:`probability` call. Like
        :meth:`probability`, correct only on deterministic decomposable
        circuits over independent variables.
        """
        if _np is None:
            results = [float(self.probability(row)) for row in marginals_batch]
            _BATCH_STATS["probability_passes"] += 1
            _BATCH_STATS["probability_rows"] += len(results)
            return results
        n_vars = len(self.var_names)
        if isinstance(marginals_batch, _np.ndarray) and marginals_batch.ndim == 2:
            check(
                marginals_batch.shape[1] == n_vars,
                f"marginal matrix has {marginals_batch.shape[1]} columns for "
                f"{n_vars} variables",
            )
            matrix = marginals_batch.astype(_np.float64, copy=False)
        else:
            rows = [tuple(self.slot_marginals(row)) for row in marginals_batch]
            if not rows:
                return []
            matrix = _np.asarray(rows, dtype=_np.float64)
        _BATCH_STATS["probability_passes"] += 1
        _BATCH_STATS["probability_rows"] += matrix.shape[0]
        sharded = self._maybe_sharded(matrix, as_float=True)
        if sharded is not None:
            return sharded.tolist()
        out = _np.empty(matrix.shape[0], dtype=_np.float64)
        self.batch_plan().run_into(matrix, out, as_float=True)
        return out.tolist()

    def probability_enumerate(
        self, marginals, max_vars: int = ENUMERATION_VARIABLE_CAP
    ) -> float:
        """Exact probability by enumerating all variable valuations.

        With numpy available the ``2^n`` worlds are unpacked from bitmask
        ranges into world matrices and evaluated through the batch kernels,
        chunk by chunk; otherwise a reusable slot array iterates the masks
        one kernel call at a time — no per-world dict allocation either
        way. Exponential; capped at ``max_vars`` (default
        :data:`ENUMERATION_VARIABLE_CAP`) variables.
        """
        n = len(self.var_names)
        if n > max_vars:
            raise ReproError(
                f"enumeration oracle limited to {max_vars} variables "
                f"(circuit has {n}; 2^{n} worlds); use the 'shannon' or "
                "'message_passing' engine instead"
            )
        probs = self.slot_marginals(marginals)
        if _np is not None:
            return self._enumerate_batched(probs, n)
        slot_values = [0] * n
        kernel = self._kernel("bool")
        buffer = None if kernel is not None else bytearray(self.size)
        total = 0.0
        for mask in range(1 << n):
            for i in range(n):
                slot_values[i] = (mask >> i) & 1
            satisfied = (
                kernel(slot_values)
                if kernel is not None
                else self._evaluate_into(buffer, slot_values)
            )
            if satisfied:
                weight = 1.0
                for i in range(n):
                    p = probs[i]
                    weight *= p if slot_values[i] else 1.0 - p
                total += weight
        return total

    def _enumerate_batched(self, probs, n: int) -> float:
        """Enumeration oracle over the numpy batch kernels, chunked."""
        probs = _np.asarray(probs, dtype=_np.float64)
        world_count = 1 << n
        step = max(1, min(world_count, self._batch_chunk(as_float=False)))
        bits = _np.arange(n, dtype=_np.uint64)
        total = 0.0
        for start in range(0, world_count, step):
            masks = _np.arange(
                start, min(start + step, world_count), dtype=_np.uint64
            )
            worlds = ((masks[:, None] >> bits) & 1).astype(_np.bool_)
            satisfied = self._batch_pass(worlds, False)
            if satisfied.any():
                weights = _np.where(worlds[satisfied], probs, 1.0 - probs)
                total += float(weights.prod(axis=1).sum())
        return total

    # ------------------------------------------------------------------ #
    # semiring evaluation

    def evaluate_semiring(self, semiring, annotate) -> object:
        """Fold the circuit in a semiring: ``⊕`` at OR, ``⊗`` at AND.

        ``annotate`` maps a variable *name* to its semiring element.
        Negation is rejected — provenance is defined for monotone circuits.
        """
        kinds = self.kinds
        values: list[object] = [None] * self.size
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == K_VAR:
                values[pos] = annotate(self.var_names[self.var_slot[pos]])
            elif kind == K_AND:
                values[pos] = semiring.multiply_all(
                    values[i] for i in self.inputs_of(pos)
                )
            elif kind == K_OR:
                values[pos] = semiring.add_all(values[i] for i in self.inputs_of(pos))
            elif kind == K_NOT:
                raise ReproError("provenance circuits must be monotone (no NOT gates)")
            else:
                values[pos] = semiring.one() if kind == K_TRUE else semiring.zero()
        return values[self.output]

    # ------------------------------------------------------------------ #
    # cached structure for the message-passing engine

    def binarized(self) -> "CompiledCircuit":
        """The compiled form of the fan-in-≤2 rewrite, built once.

        Always lowers ``source.binarized()`` — even when the source is
        already binary — so the compiled positions stay aligned with the
        densely renumbered arena that external decompositions (built over
        ``circuit.binarized()`` gate ids) refer to.
        """
        if self._binarized is None:
            self._binarized = compile_circuit(self.source.binarized())
        return self._binarized

    def moral_graph(self):
        """Moral graph over compiled positions (gate–input cliques)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.size))
        for pos in range(self.size):
            inputs = self.inputs_of(pos)
            for child in inputs:
                graph.add_edge(pos, child)
            for i, a in enumerate(inputs):
                for b in inputs[i + 1 :]:
                    graph.add_edge(a, b)
        return graph

    def decomposition(self, heuristic: str = "min_fill"):
        """A tree decomposition of the moral graph, cached per heuristic."""
        cached = self._decompositions.get(heuristic)
        if cached is None:
            from repro.treewidth import decompose

            cached = decompose(self.moral_graph(), heuristic)
            self._decompositions[heuristic] = cached
        return cached


#: Entries kept in the per-arena ``(version, output)`` compile memo; small,
#: because each entry pins a full lowering alive for the arena's lifetime.
ARENA_CACHE_LIMIT = 8

#: Dirty cones larger than this fraction of the predecessor abandon the
#: delta path — a full vectorized lowering is cheaper than patching most
#: of the arrays row by row in Python.
_DELTA_MAX_FRACTION = 0.5


def _arena_memo(circuit: Circuit) -> dict | None:
    """The arena's ``(version, output) -> CompiledCircuit`` memo (LRU)."""
    memo = getattr(circuit, "_compiled_cache", None)
    if not isinstance(memo, dict):
        memo = {}
        try:
            circuit._compiled_cache = memo
        except AttributeError:  # pragma: no cover - exotic circuit subclass
            return None
    return memo


def _delta_lower(prev: CompiledCircuit, circuit: Circuit) -> CompiledCircuit | None:
    """Patch ``prev``'s arrays into a lowering of the edited ``circuit``.

    The hash-consed arena is append-only, so an edit can only add gates
    and move the output. The fast path applies when the old lowering is a
    *prefix* of the new one: every old gate stays reachable (the old
    output is in the new output's cone) and every dirty gate — the new
    output's cone minus the old reachable set — has a gate id above every
    old one. Then the new topological order is exactly ``old positions ++
    sorted(dirty)``: the CSR/level/var arrays survive verbatim and only
    the appended rows are computed, in O(|delta|) gate visits. Returns
    ``None`` when the conditions fail (output moved into the past, an old
    gate became newly reachable, or the cone is a large fraction of the
    circuit) — the caller does a fresh full lowering instead.
    """
    from bisect import bisect_left

    out = circuit.output
    old_ids = prev.gate_ids
    old_n = prev.size
    max_old = old_ids[-1]
    old_out_id = old_ids[prev.output]
    limit = max(64, int(old_n * _DELTA_MAX_FRACTION))
    seen: set[int] = set()
    dirty: list[int] = []
    stack = [out]
    old_out_seen = False
    while stack:
        gid = stack.pop()
        if gid in seen:
            continue
        seen.add(gid)
        if gid <= max_old:
            at = bisect_left(old_ids, gid)
            if at < old_n and old_ids[at] == gid:
                # Boundary: this cone is already lowered; stop descending.
                if gid == old_out_id:
                    old_out_seen = True
                continue
        dirty.append(gid)
        if len(dirty) > limit:
            return None
        stack.extend(circuit.gate(gid).inputs)
    if not old_out_seen:
        return None
    if not dirty:
        # The output is an old gate whose cone contains the old output —
        # by acyclicity that makes it *the* old output: same lowering.
        return prev
    dirty.sort()
    if dirty[0] <= max_old:
        return None

    kind_codes = circuit._kind_codes
    var_slots = circuit._var_slots
    slot_names = circuit._slot_names
    arena_levels = circuit._gate_levels
    old_levels = prev.levels_list()
    position: dict[int, int] = {}
    add_kinds: list[int] = []
    add_indices: list[int] = []
    add_offsets: list[int] = []
    add_var_slot: list[int] = []
    new_names: list[str] = []
    prev_np = prev._np32
    running = (
        int(prev_np[1][-1]) if prev_np is not None else prev.offsets[-1]
    )
    has_negation = prev.has_negation
    n_old_vars = len(prev.var_names)

    for i, gid in enumerate(dirty):
        position[gid] = old_n + i
    for gid in dirty:
        kind = kind_codes[gid]
        add_kinds.append(kind)
        slot = -1
        if kind == K_VAR:
            # A dirty VAR gate is a genuinely new name: hash-consing keeps
            # one gate per name, and old names' gates are all old gates.
            slot = n_old_vars + len(new_names)
            new_names.append(slot_names[var_slots[gid]])
        elif kind == K_NOT:
            has_negation = True
        add_var_slot.append(slot)
        inputs = circuit.gate(gid).inputs
        for child in inputs:
            at = position.get(child)
            add_indices.append(
                at if at is not None else bisect_left(old_ids, child)
            )
        running += len(inputs)
        add_offsets.append(running)
    # The level of a gate depends only on its input cone, so the arena's
    # incrementally maintained levels are already the compiled levels.
    add_levels = [arena_levels[gid] for gid in dirty]

    compiled = CompiledCircuit.__new__(CompiledCircuit)
    compiled._init_lazy()
    compiled.source = circuit
    compiled.size = old_n + len(dirty)
    if _np is not None and prev_np is not None:
        old_kinds32, old_offsets32, old_indices32, old_var32 = prev_np
        compiled._np32 = (
            _np.concatenate([old_kinds32, _np.asarray(add_kinds, _np.int32)]),
            _np.concatenate([old_offsets32, _np.asarray(add_offsets, _np.int32)]),
            _np.concatenate([old_indices32, _np.asarray(add_indices, _np.int32)]),
            _np.concatenate([old_var32, _np.asarray(add_var_slot, _np.int32)]),
        )
        # Lists stay lazy: the surviving prefix is only re-materialized if
        # a scalar consumer asks, keeping the patch O(|delta|).
    else:
        compiled._kinds = prev.kinds + add_kinds
        compiled._offsets = prev.offsets + add_offsets
        compiled._indices = prev.indices + add_indices
        compiled._var_slot = prev.var_slot + add_var_slot
    compiled.var_names = prev.var_names + tuple(new_names)
    compiled.output = position[out] if out in position else bisect_left(old_ids, out)
    compiled.has_negation = has_negation
    compiled.arena_version = circuit.version
    compiled.arena_size = len(circuit)
    compiled._gate_ids = old_ids + tuple(dirty)
    compiled._levels = old_levels + add_levels
    _STATS["delta_recompiles"] += 1
    return compiled


def _compile_cached(circuit: Circuit, prev: CompiledCircuit | None) -> CompiledCircuit:
    """The shared compile path: memo, delta, disk cache, full lowering.

    The delta patch comes before the disk cache on purpose: patching the
    predecessor's arrays is O(|edit|) and beats even a cache hit (which
    still reads, checksums and re-validates the whole lowering) — and a
    grown arena's fingerprint would usually miss anyway.
    """
    check(circuit.output is not None, "circuit has no output gate")
    key = (circuit.version, circuit.output)
    memo = _arena_memo(circuit)
    if memo is not None:
        hit = memo.get(key)
        if hit is not None:
            _STATS["arena_cache_hits"] += 1
            # Move to the LRU tail so flipping between outputs keeps both.
            del memo[key]
            memo[key] = hit
            return hit
    compiled = None
    from repro.circuits import plancache

    if prev is None and memo:
        prev = max(memo.values(), key=lambda c: c.arena_version)
    if prev is not None and prev.source is circuit:
        compiled = _delta_lower(prev, circuit)
        if compiled is None:
            _STATS["delta_fallbacks"] += 1
    if compiled is None:
        fingerprint = None
        if plancache.enabled() and len(circuit) >= plancache.min_gates():
            fingerprint = plancache.arena_fingerprint(circuit)
        if fingerprint is not None:
            compiled = plancache.load_compiled(circuit, fingerprint)
            if compiled is not None:
                _STATS["disk_cache_hits"] += 1
        if compiled is None:
            compiled = CompiledCircuit(circuit)
            if fingerprint is not None:
                plancache.store_compiled(compiled, fingerprint)
    if memo is not None:
        memo[key] = compiled
        while len(memo) > ARENA_CACHE_LIMIT:
            memo.pop(next(iter(memo)))
    return compiled


def compile_circuit(circuit: Circuit | CompiledCircuit) -> CompiledCircuit:
    """Lower ``circuit`` to its flat IR, caching the result on the arena.

    Passing an already-compiled circuit returns it unchanged. Compiles are
    memoized per ``(arena version, output)`` — flipping ``set_output``
    between gates returns each output's own lowering, never a stale one —
    and a recompile of a grown arena takes the O(|delta|) patch path of
    :func:`recompile` against the newest memoized predecessor. With
    ``REPRO_PLAN_CACHE_DIR`` set, lowerings round-trip through the
    persistent on-disk cache (:mod:`repro.circuits.plancache`), so fresh
    processes skip lowering entirely.
    """
    if isinstance(circuit, CompiledCircuit):
        return circuit
    return _compile_cached(circuit, None)


def recompile(old: CompiledCircuit, circuit: Circuit | CompiledCircuit) -> CompiledCircuit:
    """Relower ``circuit`` reusing ``old``, patching only the dirty cone.

    ``old`` must be a previous lowering of the *same arena*; appended
    gates and a moved output are patched in O(|delta|) — the surviving
    prefix of the kind/CSR/level/variable arrays is shared, and the
    derived caches (``wire_bytes``/``plan_digest``/``batch_plan``/kernels)
    start fresh on the returned object so nothing stale leaks. When the
    edit is not an append (or ``old`` lowers a different arena) this falls
    back to a full — still vectorized — compile; either way the result is
    gate-for-gate identical to ``compile_circuit(circuit)`` on a cold
    arena, and is entered into the same arena memo.
    """
    check(
        isinstance(old, CompiledCircuit),
        "recompile needs the previous CompiledCircuit",
    )
    if isinstance(circuit, CompiledCircuit):
        return circuit
    prev = old if old.source is circuit else None
    return _compile_cached(circuit, prev)
