"""Tests for semirings and the provenance-circuit agreement theorem."""

import math
import random

import pytest

from repro.instances import Instance, fact
from repro.queries import atom, cq, ucq, variables
from repro.semirings import (
    ABSORPTIVE_SEMIRINGS,
    NON_ABSORPTIVE_SEMIRINGS,
    PUBLIC,
    SECRET,
    TOP_SECRET,
    BooleanSemiring,
    CountingSemiring,
    PolynomialSemiring,
    PosBoolSemiring,
    SecuritySemiring,
    TropicalSemiring,
    circuit_provenance,
    default_tokens,
    evaluate_circuit,
    reference_provenance,
)
from repro.util import ReproError

X, Y = variables("x", "y")
Q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))


def chain_instance(n: int = 3) -> Instance:
    inst = Instance()
    for i in range(n):
        inst.add(fact("R", i))
        inst.add(fact("T", i))
        if i + 1 < n:
            inst.add(fact("S", i, i + 1))
    return inst


class TestSemiringAxioms:
    @pytest.mark.parametrize(
        "semiring", ABSORPTIVE_SEMIRINGS + NON_ABSORPTIVE_SEMIRINGS, ids=lambda s: s.name
    )
    def test_identities(self, semiring):
        one, zero = semiring.one(), semiring.zero()
        sample = semiring.one()
        assert semiring.add(sample, zero) == sample
        assert semiring.multiply(sample, one) == sample
        assert semiring.multiply(sample, zero) == zero

    def test_tropical(self):
        s = TropicalSemiring()
        assert s.add(3.0, 5.0) == 3.0
        assert s.multiply(3.0, 5.0) == 8.0

    def test_security_ordering(self):
        s = SecuritySemiring()
        assert s.add(SECRET, PUBLIC) == PUBLIC  # easiest access among derivations
        assert s.multiply(SECRET, TOP_SECRET) == TOP_SECRET  # need all facts

    def test_posbool_absorption(self):
        s = PosBoolSemiring()
        a = s.variable("a")
        ab = s.multiply(a, s.variable("b"))
        assert s.add(a, ab) == a

    def test_counting_not_absorptive(self):
        s = CountingSemiring()
        assert s.add(2, s.multiply(2, 3)) != 2

    @pytest.mark.parametrize("semiring", ABSORPTIVE_SEMIRINGS, ids=lambda s: s.name)
    def test_absorptivity_samples(self, semiring):
        if isinstance(semiring, PosBoolSemiring):
            samples = [(semiring.variable("a"), semiring.variable("b"))]
        elif isinstance(semiring, BooleanSemiring):
            samples = [(True, False), (True, True), (False, True)]
        elif isinstance(semiring, SecuritySemiring):
            samples = [(SECRET, PUBLIC), (PUBLIC, TOP_SECRET)]
        elif isinstance(semiring, TropicalSemiring):
            samples = [(2.0, 3.0), (0.0, 5.0)]
        else:
            samples = [(0.4, 0.9), (1.0, 0.2)]
        assert semiring.is_absorptive_on(samples)


class TestReferenceProvenance:
    def test_boolean_matches_query(self):
        inst = chain_instance()
        s = BooleanSemiring()
        value = reference_provenance(Q, inst, s, lambda f: True)
        assert value == Q.holds_in(inst)

    def test_counting_counts_homomorphisms(self):
        inst = chain_instance(4)
        s = CountingSemiring()
        value = reference_provenance(Q, inst, s, lambda f: 1)
        assert value == len(list(Q.homomorphisms(inst)))

    def test_tropical_cheapest_derivation(self):
        inst = Instance(
            [fact("R", 1), fact("S", 1, 2), fact("T", 2), fact("R", 3), fact("S", 3, 4), fact("T", 4)]
        )
        costs = {f: float(i) for i, f in enumerate(inst.facts())}
        s = TropicalSemiring()
        value = reference_provenance(Q, inst, s, costs.__getitem__)
        assert value == 0.0 + 1.0 + 2.0

    def test_ucq_sums_disjuncts(self):
        inst = chain_instance()
        q = ucq(cq(atom("R", X)), cq(atom("T", X)))
        s = CountingSemiring()
        assert reference_provenance(q, inst, s, lambda f: 1) == 6


class TestCircuitProvenance:
    @pytest.mark.parametrize("semiring", ABSORPTIVE_SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_on_absorptive_semirings(self, semiring, seed):
        rng = random.Random(seed)
        inst = Instance()
        n = rng.randint(2, 4)
        for i in range(n):
            if rng.random() < 0.8:
                inst.add(fact("R", i))
            if rng.random() < 0.8:
                inst.add(fact("T", i))
        for _ in range(rng.randint(1, n + 1)):
            inst.add(fact("S", rng.randrange(n), rng.randrange(n)))

        if isinstance(semiring, PosBoolSemiring):
            annotation = {f: semiring.variable(f.variable_name) for f in inst.facts()}
        elif isinstance(semiring, BooleanSemiring):
            annotation = {f: True for f in inst.facts()}
        elif isinstance(semiring, SecuritySemiring):
            levels = [PUBLIC, SECRET, TOP_SECRET]
            annotation = {f: rng.choice(levels) for f in inst.facts()}
        elif isinstance(semiring, TropicalSemiring):
            annotation = {f: float(rng.randint(0, 9)) for f in inst.facts()}
        else:  # viterbi, fuzzy: values in [0,1]
            annotation = {f: round(rng.uniform(0.1, 1.0), 2) for f in inst.facts()}

        reference = reference_provenance(Q, inst, semiring, annotation)
        through_circuit = circuit_provenance(Q, inst, semiring, annotation)
        assert through_circuit == reference or (
            isinstance(reference, float)
            and math.isclose(through_circuit, reference, abs_tol=1e-9)
        )

    def test_posbool_on_chain(self):
        inst = chain_instance(3)
        s = PosBoolSemiring()
        annotation = {f: s.variable(f.variable_name) for f in inst.facts()}
        value = circuit_provenance(Q, inst, s, annotation)
        reference = reference_provenance(Q, inst, s, annotation)
        assert value == reference
        # Two homomorphisms on the chain → two minimal monomials.
        assert len(reference) == 2

    def test_counting_may_disagree_documented_limitation(self):
        # ℕ[X]-style semirings are not absorptive; the circuit may overcount
        # because automaton runs can use spare facts. We assert the circuit
        # value dominates the true count (every hom is a run).
        inst = chain_instance(4)
        s = CountingSemiring()
        annotation = {f: 1 for f in inst.facts()}
        reference = reference_provenance(Q, inst, s, annotation)
        through_circuit = circuit_provenance(Q, inst, s, annotation)
        assert through_circuit >= reference

    def test_non_monotone_circuit_rejected(self):
        from repro.circuits import Circuit

        c = Circuit()
        c.set_output(c.negation(c.variable("x")))
        with pytest.raises(ReproError, match="monotone"):
            evaluate_circuit(c, BooleanSemiring(), lambda name: True)

    def test_default_tokens_are_fact_names(self):
        inst = chain_instance(2)
        tokens = default_tokens(inst)
        assert tokens[fact("R", 0)] == fact("R", 0).variable_name


class TestPolynomialSemiring:
    def test_polynomial_addition_merges_monomials(self):
        s = PolynomialSemiring()
        x = s.variable("x")
        two_x = s.add(x, x)
        assert s._to_dict(two_x)[frozenset({("x", 1)})] == 2

    def test_polynomial_multiplication_adds_exponents(self):
        s = PolynomialSemiring()
        x = s.variable("x")
        x_squared = s.multiply(x, x)
        assert s._to_dict(x_squared)[frozenset({("x", 2)})] == 1

    def test_reference_polynomial_provenance(self):
        inst = Instance([fact("R", 1), fact("S", 1, 1), fact("T", 1)])
        s = PolynomialSemiring()
        annotation = {f: s.variable(f.variable_name) for f in inst.facts()}
        value = reference_provenance(Q, inst, s, annotation)
        # Single homomorphism, product of three distinct tokens.
        (monomial, coefficient), = value
        assert coefficient == 1
        assert len(monomial) == 3
