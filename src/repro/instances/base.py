"""Relational instances: schemas, facts, and Gaifman graphs.

The deterministic substrate on which all uncertainty formalisms are layered.
A fact is a relation name applied to a tuple of constants; an instance is a
finite set of facts. The *Gaifman graph* of an instance connects two domain
elements when they co-occur in a fact — its treewidth is what "tree-like
data" means in the paper (Theorem 1 defines the treewidth of a TID as that of
its underlying instance).

Two interchangeable backends implement the instance contract:

- :class:`Instance` — the object backend: a set of :class:`Fact` dataclasses
  with insertion order, convenient for small inputs and used as the oracle;
- :class:`repro.instances.columnar.ColumnarInstance` — the U-relation-style
  columnar backend: dictionary-encoded int32 columns, built for bulk loads
  and vectorized query evaluation at millions of facts.

:class:`AbstractInstance` is the shared protocol: the handful of primitive
accessors each backend provides, plus the derived structure (domain, Gaifman
graph, treewidth, equality) every consumer relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

import networkx as nx

from repro.util import check

Constant = Hashable


@dataclass(frozen=True)
class Fact:
    """A ground fact ``relation(args...)``.

    >>> Fact("From", ("CDG", "MEL"))
    From(CDG, MEL)
    """

    relation: str
    args: tuple[Constant, ...]

    def __post_init__(self):
        check(isinstance(self.args, tuple), "fact arguments must be a tuple")

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def variable_name(self) -> str:
        """Canonical Boolean-variable name for the presence of this fact.

        Memoized on first access: the name sits on the provenance hot path
        (one lookup per witness fact) and rebuilding the f-string every call
        measurably slows lineage construction on large instances.
        """
        name = self.__dict__.get("_variable_name")
        if name is None:
            inside = ",".join(str(a) for a in self.args)
            name = f"f:{self.relation}({inside})"
            object.__setattr__(self, "_variable_name", name)
        return name

    def __repr__(self) -> str:
        inside = ", ".join(str(a) for a in self.args)
        return f"{self.relation}({inside})"


def fact(relation: str, *args: Constant) -> Fact:
    """Convenience constructor: ``fact("R", 1, 2) == Fact("R", (1, 2))``."""
    return Fact(relation, tuple(args))


def variable_name_of(relation: str, args: Iterable[Constant]) -> str:
    """The :attr:`Fact.variable_name` convention without building a Fact.

    The columnar provenance path derives circuit-leaf names directly from
    decoded columns; keeping the formatting in one place pins both backends
    to the identical naming scheme.
    """
    inside = ",".join(str(a) for a in args)
    return f"f:{relation}({inside})"


class AbstractInstance(ABC):
    """The instance contract shared by the object and columnar backends.

    Subclasses provide the primitive accessors (facts as ordered sets with
    relation grouping); the derived relational structure — active domain,
    Gaifman graph, treewidth, equality — is defined here once so both
    backends behave identically everywhere downstream (lineage engine,
    conditioning, PrXML bridge, workload generators).
    """

    # ------------------------------------------------------------------ #
    # primitives

    @abstractmethod
    def add(self, f: Fact) -> Fact:
        """Insert a fact (idempotent, set semantics) and return it."""

    @abstractmethod
    def discard(self, f: Fact) -> None:
        """Remove a fact if present."""

    @abstractmethod
    def __contains__(self, f: Fact) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def facts(self) -> list[Fact]:
        """Return the facts as a list, in insertion order."""

    @abstractmethod
    def relations(self) -> dict[str, int]:
        """Return the schema observed in the data: relation name → arity."""

    @abstractmethod
    def by_relation(self, relation: str) -> list[Fact]:
        """Return all facts of the given relation, in insertion order."""

    # ------------------------------------------------------------------ #
    # derived structure (shared by all backends)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.facts())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractInstance):
            return NotImplemented
        return set(self.facts()) == set(other.facts())

    def __hash__(self):  # pragma: no cover - instances used as dict keys rarely
        return hash(frozenset(self.facts()))

    def domain(self) -> frozenset[Constant]:
        """Return the active domain: all constants appearing in facts."""
        elements: set[Constant] = set()
        for f in self.facts():
            elements.update(f.args)
        return frozenset(elements)

    def gaifman_graph(self) -> nx.Graph:
        """Return the Gaifman graph: constants adjacent iff they share a fact."""
        graph = nx.Graph()
        graph.add_nodes_from(self.domain())
        for f in self.facts():
            for i, a in enumerate(f.args):
                for b in f.args[i + 1 :]:
                    if a != b:
                        graph.add_edge(a, b)
        return graph

    def treewidth_upper_bound(self, heuristic: str = "min_fill") -> int:
        """Heuristic treewidth of the Gaifman graph (Theorem 1's parameter)."""
        from repro.treewidth import decompose

        return decompose(self.gaifman_graph(), heuristic).width()

    def key_index(self, relation: str, key_positions: Iterable[int]) -> dict[tuple, list[Fact]]:
        """Group the relation's facts into blocks by their key projection.

        Returns ``{key_tuple: [facts...]}`` in insertion order (both the
        blocks and the facts inside each block).  A block with more than
        one fact is a key violation; a *repair* keeps exactly one fact per
        block.  Backends may override with a faster grouping, but the
        result must be order-identical to this reference implementation.
        """
        positions = tuple(key_positions)
        index: dict[tuple, list[Fact]] = {}
        for f in self.by_relation(relation):
            check(
                all(p < len(f.args) for p in positions),
                f"key position out of range for {relation!r} (arity {len(f.args)})",
            )
            index.setdefault(tuple(f.args[p] for p in positions), []).append(f)
        return index

    def restricted_to(self, keep: Iterable[Fact]) -> "AbstractInstance":
        """Return the sub-instance (same backend) with only the facts in ``keep``."""
        keep_set = set(keep)
        result = type(self)()
        for f in self.facts():
            if f in keep_set:
                result.add(f)
        return result

    def union(self, other: "AbstractInstance") -> "AbstractInstance":
        """Return the union of two instances (backend of the left operand)."""
        merged = type(self)()
        for f in self.facts():
            merged.add(f)
        for f in other.facts():
            merged.add(f)
        return merged

    def __repr__(self) -> str:
        listed = self.facts()
        preview = ", ".join(repr(f) for f in listed[:4])
        suffix = ", ..." if len(listed) > 4 else ""
        return f"{type(self).__name__}({{{preview}{suffix}}}, size={len(listed)})"


class Instance(AbstractInstance):
    """A finite set of facts with set semantics (the object backend).

    Iteration order is deterministic (insertion order), which keeps every
    downstream construction reproducible.
    """

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: dict[Fact, None] = {}
        for f in facts:
            self.add(f)

    def add(self, f: Fact) -> Fact:
        """Insert a fact (idempotent) and return it."""
        self._facts.setdefault(f, None)
        return f

    def discard(self, f: Fact) -> None:
        """Remove a fact if present."""
        self._facts.pop(f, None)

    def __contains__(self, f: Fact) -> bool:
        return f in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def facts(self) -> list[Fact]:
        """Return the facts as a list, in insertion order."""
        return list(self._facts)

    def relations(self) -> dict[str, int]:
        """Return the schema observed in the data: relation name → arity."""
        schema: dict[str, int] = {}
        for f in self._facts:
            previous = schema.setdefault(f.relation, f.arity)
            check(previous == f.arity, f"relation {f.relation!r} used with two arities")
        return schema

    def by_relation(self, relation: str) -> list[Fact]:
        """Return all facts of the given relation, in insertion order."""
        return [f for f in self._facts if f.relation == relation]

    def restricted_to(self, keep: Iterable[Fact]) -> "Instance":
        """Return the sub-instance with only the facts in ``keep``."""
        keep_set = set(keep)
        return Instance(f for f in self._facts if f in keep_set)

    def union(self, other: "AbstractInstance") -> "Instance":
        """Return the union of two instances."""
        merged = Instance(self._facts)
        for f in other:
            merged.add(f)
        return merged

    def __repr__(self) -> str:
        preview = ", ".join(repr(f) for f in list(self._facts)[:4])
        suffix = ", ..." if len(self._facts) > 4 else ""
        return f"Instance({{{preview}{suffix}}}, size={len(self._facts)})"
