"""Non-Boolean queries: per-answer probabilities and lineage.

The paper's discussion of uncertain query *results* ("query results will
themselves be uncertain … determine whether some answers are possible, or
certain; or estimate which ones are likely"): for a CQ with designated free
variables, every candidate answer tuple gets its own lineage circuit — the
Boolean query obtained by substituting the answer — and hence its own exact
probability, possibility and certainty status.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.engine import build_lineage, tid_probability
from repro.instances.base import Constant, Instance
from repro.instances.tid import TIDInstance
from repro.queries.cq import Atom, ConjunctiveQuery, Variable
from repro.util import check


@dataclass(frozen=True)
class RankedAnswer:
    """One answer tuple with its exact probability and modal status."""

    values: tuple[Constant, ...]
    probability: float
    possible: bool
    certain: bool


def candidate_answers(
    query: ConjunctiveQuery, free: Sequence[Variable], instance: Instance
) -> list[tuple[Constant, ...]]:
    """All instantiations of ``free`` realized by some homomorphism.

    Candidates are computed over the *full* instance (every fact present);
    any answer with positive probability appears among them, because CQs are
    monotone.
    """
    free = tuple(free)
    check(set(free) <= query.variables(), "free variables must occur in the query")
    seen: dict[tuple, None] = {}
    for binding in query.homomorphisms(instance):
        seen.setdefault(tuple(binding[v] for v in free), None)
    return list(seen)


def substitute_answer(
    query: ConjunctiveQuery, free: Sequence[Variable], values: Sequence[Constant]
) -> ConjunctiveQuery:
    """The Boolean query obtained by fixing ``free`` to ``values``."""
    assignment = dict(zip(free, values))
    return ConjunctiveQuery(
        tuple(
            Atom(
                a.relation,
                tuple(assignment.get(t, t) if isinstance(t, Variable) else t for t in a.terms),
            )
            for a in query.atoms
        )
    )


def answer_probabilities(
    query: ConjunctiveQuery,
    free: Sequence[Variable],
    tid: TIDInstance,
    epsilon: float = 1e-12,
) -> list[RankedAnswer]:
    """Exact probability of every candidate answer, most probable first.

    Each candidate's Boolean instantiation runs through the Theorem 1
    engine; possibility/certainty derive from the probability being > 0 /
    = 1 (exact up to float arithmetic, controlled by ``epsilon``).
    """
    answers = []
    for values in candidate_answers(query, free, tid.instance):
        boolean_query = substitute_answer(query, free, values)
        probability = tid_probability(boolean_query, tid)
        answers.append(
            RankedAnswer(
                values=values,
                probability=probability,
                possible=probability > epsilon,
                certain=probability >= 1.0 - epsilon,
            )
        )
    answers.sort(key=lambda a: (-a.probability, str(a.values)))
    return answers


def answer_lineages(
    query: ConjunctiveQuery,
    free: Sequence[Variable],
    instance: Instance,
):
    """The lineage circuit of every candidate answer (for reuse/conditioning).

    Returns ``{answer values: Lineage}``; each lineage can be re-evaluated
    under different probabilities or conditioned without recomputation —
    the "specialize the result of the query, without reevaluating it from
    scratch" use-case of the paper's introduction.
    """
    lineages = {}
    for values in candidate_answers(query, free, instance):
        boolean_query = substitute_answer(query, free, values)
        lineages[values] = build_lineage(instance, boolean_query)
    return lineages
