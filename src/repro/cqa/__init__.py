"""Certain query answering over key-violating databases (CQA).

The second query-evaluation engine of the library, beside the
probabilistic one.  A database may violate its primary keys
(:class:`repro.queries.keys.KeySpec`); its *repairs* keep exactly one
fact per block, and a Boolean query is **certain** when it holds in
every repair.  For self-join-free conjunctive queries the complexity of
that decision follows the Koutris–Wijsen trichotomy, and this package
routes each query accordingly:

- :func:`classify` — the attack-graph test placing a query in
  ``"fo"`` / ``"ptime"`` / ``"conp"``;
- :func:`certain_answers` — the routed decision procedure (first-order
  rewriting, polynomial propagation, or circuit encoding);
- :func:`fo_rewriting` — the printable FO rewriting artifact;
- :func:`certain_oracle` — brute-force all-repairs ground truth;
- :func:`repair_lineage` / :func:`certain_by_circuit` — the lowering of
  "q holds in a uniformly random repair" onto the compiled circuit
  pipeline;
- :func:`cqa_stats` — routing counters (also surfaced by
  ``repro.capabilities()``).

See ARCHITECTURE.md § "Certain answers" for the design and
``repro cqa`` / E20 for the executable tour.
"""

from repro.cqa.attacks import (
    CONP,
    FO,
    PTIME,
    Attack,
    Classification,
    attack_graph,
    classify,
)
from repro.cqa.circuit import certain_by_circuit, repair_lineage
from repro.cqa.engine import METHODS, certain_answers, cqa_stats, reset_cqa_stats
from repro.cqa.repairs import blocks, certain_oracle, iter_repairs, repair_count
from repro.cqa.rewrite import FORewriting, elimination_order, fo_rewriting

__all__ = [
    "CONP",
    "FO",
    "METHODS",
    "PTIME",
    "Attack",
    "Classification",
    "FORewriting",
    "attack_graph",
    "blocks",
    "certain_answers",
    "certain_by_circuit",
    "certain_oracle",
    "classify",
    "cqa_stats",
    "elimination_order",
    "fo_rewriting",
    "iter_repairs",
    "repair_count",
    "repair_lineage",
    "reset_cqa_stats",
]
