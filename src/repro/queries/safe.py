"""Safe-plan (extensional) evaluation of self-join-free CQs on TIDs.

The Dalvi–Suciu dichotomy: a self-join-free Boolean CQ is *hierarchical* iff
for any two variables, their atom sets are disjoint or nested; hierarchical
queries admit PTIME extensional plans, all others are #P-hard on unrestricted
TIDs. The paper contrasts this query-based tractability frontier with its own
data-based one (bounded treewidth): ``∃xy R(x)S(x,y)T(y)`` is non-hierarchical
— this module refuses it — yet the lineage engine handles it on tree-like
data.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.instances.base import Constant, Fact
from repro.instances.tid import TIDInstance
from repro.queries.cq import Atom, ConjunctiveQuery, Variable
from repro.util import ReproError, check


class UnsafeQueryError(ReproError):
    """Raised when a query has no safe extensional plan."""


def atom_sets(query: ConjunctiveQuery) -> dict[Variable, frozenset[int]]:
    """Map each variable to the indices of atoms containing it."""
    result: dict[Variable, set[int]] = {}
    for index, a in enumerate(query.atoms):
        for v in a.variables():
            result.setdefault(v, set()).add(index)
    return {v: frozenset(s) for v, s in result.items()}


def is_hierarchical(query: ConjunctiveQuery) -> bool:
    """Whether every pair of variables has nested or disjoint atom sets."""
    sets = list(atom_sets(query).values())
    for i, a in enumerate(sets):
        for b in sets[i + 1 :]:
            if a & b and not (a <= b or b <= a):
                return False
    return True


def is_safe(query: ConjunctiveQuery) -> bool:
    """Whether the query is self-join-free and hierarchical (PTIME on TIDs)."""
    return query.is_self_join_free() and is_hierarchical(query)


def safe_plan_probability(query: ConjunctiveQuery, tid: TIDInstance) -> float:
    """Evaluate a safe query's probability by its extensional plan.

    Recursive rules (Dalvi–Suciu):

    1. ground query → product over its atoms of fact probabilities;
    2. disconnected components → product of component probabilities;
    3. root variable (in every atom) → independent project:
       ``1 − Π_a (1 − P(q[x := a]))`` over the active domain.

    Raises :class:`UnsafeQueryError` if no rule applies (unsafe query).
    """
    check(query.is_self_join_free(), "safe plans require self-join-free queries")
    return _evaluate(query.atoms, tid, {})


def _evaluate(
    atoms: tuple[Atom, ...], tid: TIDInstance, binding: Mapping[Variable, Constant]
) -> float:
    atoms = tuple(_substitute(a, binding) for a in atoms)

    free = frozenset().union(*(a.variables() for a in atoms)) if atoms else frozenset()
    if not free:
        probability = 1.0
        for a in atoms:
            f = Fact(a.relation, tuple(a.terms))  # type: ignore[arg-type]
            if f not in tid.instance:
                return 0.0
            probability *= tid.probability(f)
        return probability

    components = _components(atoms)
    if len(components) > 1:
        probability = 1.0
        for component in components:
            probability *= _evaluate(component, tid, {})
        return probability

    root = _root_variable(atoms)
    if root is None:
        raise UnsafeQueryError(
            f"query {' ∧ '.join(map(repr, atoms))} is not hierarchical: no root variable"
        )
    domain = _relevant_domain(atoms, tid, root)
    miss_probability = 1.0
    for value in domain:
        miss_probability *= 1.0 - _evaluate(atoms, tid, {root: value})
    return 1.0 - miss_probability


def _substitute(a: Atom, binding: Mapping[Variable, Constant]) -> Atom:
    return Atom(
        a.relation,
        tuple(binding.get(t, t) if isinstance(t, Variable) else t for t in a.terms),
    )


def _components(atoms: tuple[Atom, ...]) -> list[tuple[Atom, ...]]:
    """Split atoms into connected components by shared variables."""
    unassigned = list(range(len(atoms)))
    components: list[tuple[Atom, ...]] = []
    while unassigned:
        frontier = [unassigned.pop(0)]
        component = set(frontier)
        seen_vars = set(atoms[frontier[0]].variables())
        changed = True
        while changed:
            changed = False
            for index in list(unassigned):
                if atoms[index].variables() & seen_vars:
                    component.add(index)
                    seen_vars |= atoms[index].variables()
                    unassigned.remove(index)
                    changed = True
        components.append(tuple(atoms[i] for i in sorted(component)))
    return components


def _root_variable(atoms: tuple[Atom, ...]) -> Variable | None:
    """Return a variable occurring in every atom, if any."""
    common = atoms[0].variables()
    for a in atoms[1:]:
        common &= a.variables()
    return min(common, key=lambda v: v.name) if common else None


def _relevant_domain(
    atoms: tuple[Atom, ...], tid: TIDInstance, root: Variable
) -> list[Constant]:
    """Constants that could instantiate ``root`` (from matching positions)."""
    values: set[Constant] = set()
    for a in atoms:
        positions = [i for i, t in enumerate(a.terms) if t == root]
        for f in tid.instance.by_relation(a.relation):
            if len(f.args) != len(a.terms):
                continue
            values.update(f.args[i] for i in positions)
    return sorted(values, key=str)
