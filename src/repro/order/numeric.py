"""Order uncertainty arising from uncertain numeric values.

The paper's Section 3 perspective ([5]): when the order comes from unknown
numeric scores (itemset supports, relevance values) of which only intervals
are known, the induced comparison ``a < b`` is *certain* iff a's interval
lies entirely below b's. The certain comparisons form a partial order
(an *interval order*); possible worlds correspond to orderings realizable by
some choice of values inside the intervals.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.order.posets import LabeledPoset
from repro.util import check, stable_rng

Interval = tuple[float, float]


def poset_from_intervals(intervals: Mapping[object, Interval]) -> LabeledPoset:
    """Build the certain-order poset of interval-valued items.

    ``a < b`` iff ``hi(a) < lo(b)`` — the order that holds for *every* value
    choice. Labels are the item identifiers themselves.
    """
    for item, (lo, hi) in intervals.items():
        check(lo <= hi, f"interval of {item!r} is empty: [{lo}, {hi}]")
    poset = LabeledPoset({item: item for item in intervals})
    items = list(intervals)
    for a in items:
        for b in items:
            if a != b and intervals[a][1] < intervals[b][0]:
                poset.add_order(a, b)
    return poset


def is_realizable_order(
    intervals: Mapping[object, Interval], sequence: tuple
) -> bool:
    """Whether some value choice makes ``sequence`` the (weakly) sorted order.

    Greedy feasibility: walk the sequence keeping the minimal feasible value;
    item i must admit a value ≥ the running value within its interval.
    """
    if sorted(map(str, sequence)) != sorted(map(str, intervals)):
        return False
    running = float("-inf")
    for item in sequence:
        lo, hi = intervals[item]
        value = max(lo, running)
        if value > hi:
            return False
        running = value
    return True


def sample_order(
    intervals: Mapping[object, Interval], seed: int | None = None
) -> tuple:
    """Draw values uniformly in each interval and return the sorted order."""
    rng = stable_rng(seed)
    drawn = {
        item: rng.uniform(lo, hi) if hi > lo else lo
        for item, (lo, hi) in intervals.items()
    }
    return tuple(sorted(drawn, key=lambda item: (drawn[item], str(item))))


def order_probability(
    intervals: Mapping[object, Interval],
    sequence: tuple,
    samples: int = 2000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the probability that values sort as ``sequence``.

    Values are independent uniforms over their intervals — the natural
    probabilistic refinement the paper's Section 3 asks about.
    """
    check(samples > 0, "need at least one sample")
    rng = stable_rng(seed)
    hits = 0
    items = list(intervals)
    for _ in range(samples):
        drawn = {
            item: rng.uniform(lo, hi) if hi > lo else lo
            for item, (lo, hi) in intervals.items()
        }
        ordered = tuple(sorted(items, key=lambda item: (drawn[item], str(item))))
        if ordered == tuple(sequence):
            hits += 1
    return hits / samples
