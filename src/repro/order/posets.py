"""Labeled partial orders: the representation system for order uncertainty.

Section 3 of the paper proposes *labeled partial orders* (po-relations) to
represent relations whose tuple order is only partially known: elements are
abstract identifiers, a strict partial order constrains their relative
position, and a labeling maps each element to a relational tuple. The
possible worlds are the linear extensions, read through the labeling — a bag
of ordered lists of tuples.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Mapping

import networkx as nx

from repro.util import ReproError, check

Element = Hashable
Label = Hashable


class LabeledPoset:
    """A finite strict partial order with labeled elements.

    Edges may be given redundantly; the class maintains the transitive
    closure internally and exposes the transitive reduction (Hasse diagram).
    """

    def __init__(
        self,
        labels: Mapping[Element, Label],
        order: Iterable[tuple[Element, Element]] = (),
    ):
        self._labels: dict[Element, Label] = dict(labels)
        self._dag = nx.DiGraph()
        self._dag.add_nodes_from(self._labels)
        for a, b in order:
            self.add_order(a, b)

    # ------------------------------------------------------------------ #
    # construction

    def add_element(self, element: Element, label: Label) -> Element:
        """Insert an element with its label."""
        check(element not in self._labels, f"element {element!r} already present")
        self._labels[element] = label
        self._dag.add_node(element)
        return element

    def add_order(self, smaller: Element, larger: Element) -> None:
        """Assert ``smaller < larger``; rejects cycles."""
        check(smaller in self._labels and larger in self._labels, "unknown elements")
        check(smaller != larger, "strict order is irreflexive")
        if self._dag.has_edge(larger, smaller) or nx.has_path(self._dag, larger, smaller):
            raise ReproError(f"adding {smaller!r} < {larger!r} would create a cycle")
        self._dag.add_edge(smaller, larger)

    # ------------------------------------------------------------------ #
    # inspection

    def elements(self) -> list[Element]:
        """All elements, in insertion order."""
        return list(self._labels)

    def label(self, element: Element) -> Label:
        """The label (tuple) of ``element``."""
        check(element in self._labels, f"unknown element {element!r}")
        return self._labels[element]

    def labels(self) -> dict[Element, Label]:
        """A copy of the labeling."""
        return dict(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def less_than(self, a: Element, b: Element) -> bool:
        """Whether ``a < b`` in the transitive closure."""
        return a != b and nx.has_path(self._dag, a, b)

    def comparable(self, a: Element, b: Element) -> bool:
        """Whether ``a`` and ``b`` are ordered either way."""
        return self.less_than(a, b) or self.less_than(b, a)

    def closure_pairs(self) -> set[tuple[Element, Element]]:
        """All pairs ``(a, b)`` with ``a < b`` (transitive closure)."""
        closure = set()
        for a in self._dag.nodes:
            for b in nx.descendants(self._dag, a):
                closure.add((a, b))
        return closure

    def hasse_edges(self) -> list[tuple[Element, Element]]:
        """The covering relation (transitive reduction)."""
        reduction = nx.transitive_reduction(self._dag)
        return list(reduction.edges)

    def predecessors(self, element: Element) -> set[Element]:
        """Immediate predecessors in the internal DAG."""
        return set(self._dag.predecessors(element))

    def minimal_elements(self, within: Iterable[Element] | None = None) -> list[Element]:
        """Elements with no smaller element (optionally within a subset)."""
        pool = set(within) if within is not None else set(self._labels)
        return [
            e
            for e in self._labels
            if e in pool and not any(p in pool for p in self._dag.predecessors(e))
        ]

    def is_total(self) -> bool:
        """Whether the order is total (a chain)."""
        return all(
            self.comparable(a, b)
            for a, b in itertools.combinations(self._labels, 2)
        )

    def is_unordered(self) -> bool:
        """Whether the order is empty (an antichain)."""
        return self._dag.number_of_edges() == 0

    def has_distinct_labels(self) -> bool:
        """Whether no two elements share a label."""
        values = list(self._labels.values())
        return len(values) == len(set(values))

    def restricted_to(self, keep: Iterable[Element]) -> "LabeledPoset":
        """The induced sub-poset on ``keep`` (closure restricted)."""
        keep_set = set(keep)
        sub = LabeledPoset({e: l for e, l in self._labels.items() if e in keep_set})
        for a, b in self.closure_pairs():
            if a in keep_set and b in keep_set:
                sub.add_order(a, b)
        return sub

    def relabeled(self, mapping) -> "LabeledPoset":
        """Apply ``mapping`` to every label (projection of tuples)."""
        result = LabeledPoset({e: mapping(l) for e, l in self._labels.items()})
        for a, b in self._dag.edges:
            result.add_order(a, b)
        return result

    def dag_copy(self) -> nx.DiGraph:
        """A copy of the internal DAG (edges may be non-reduced)."""
        return nx.DiGraph(self._dag)

    def __repr__(self) -> str:
        return f"LabeledPoset(elements={len(self._labels)}, edges={self._dag.number_of_edges()})"


def chain(labels: Iterable[Label], prefix: str = "c") -> LabeledPoset:
    """A totally ordered poset with the given label sequence."""
    labels = list(labels)
    poset = LabeledPoset({f"{prefix}{i}": label for i, label in enumerate(labels)})
    for i in range(len(labels) - 1):
        poset.add_order(f"{prefix}{i}", f"{prefix}{i+1}")
    return poset


def antichain(labels: Iterable[Label], prefix: str = "a") -> LabeledPoset:
    """A completely unordered poset (a bag of tuples)."""
    labels = list(labels)
    return LabeledPoset({f"{prefix}{i}": label for i, label in enumerate(labels)})
