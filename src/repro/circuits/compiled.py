"""Compile-once/evaluate-many circuit backend: a flat CSR circuit IR.

The hash-consed :class:`repro.circuits.circuit.Circuit` is the right arena
for *building* lineages, but evaluating it repeatedly (per possible world,
per Monte-Carlo sample, per conditioning query) pays per-gate dict lookups
and a fresh valuation dict every time. A :class:`CompiledCircuit` lowers the
gate DAG once into flat, topologically-sorted arrays:

- ``kinds`` — one small int code per gate (``K_FALSE`` … ``K_OR``);
- ``offsets``/``indices`` — gate inputs in CSR form, as *positions* into the
  compiled arrays rather than arena gate ids;
- ``var_slot`` — for variable gates, the index of the interned variable
  name, so a valuation is just a flat sequence of booleans;
- cached variable order, moral graph, tree decompositions (per heuristic)
  and the binarized form, so repeated message-passing runs share all the
  structural preprocessing.

Every evaluation entry point then runs a single tight bottom-up loop over
these arrays: :meth:`CompiledCircuit.evaluate` for one world,
:meth:`CompiledCircuit.evaluate_batch` for many worlds sharing one reusable
buffer, :meth:`CompiledCircuit.probability` for the linear-time
deterministic-decomposable fast path (Theorem 1), and
:meth:`CompiledCircuit.probability_enumerate` for the brute-force oracle.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from repro.util import ReproError, check

# Gate kind codes of the flat IR. CONST gates split into two codes so the
# payload never needs a side table.
K_FALSE = 0
K_TRUE = 1
K_VAR = 2
K_NOT = 3
K_AND = 4
K_OR = 5

KIND_NAMES = ("false", "true", "var", "not", "and", "or")

#: Largest variable count accepted by :meth:`CompiledCircuit.probability_enumerate`.
ENUMERATION_VARIABLE_CAP = 26

#: Above this gate count the specialized Python kernels are not generated
#: (source-compile time would dominate) and the generic array interpreter
#: runs instead.
CODEGEN_GATE_LIMIT = 200_000

_UNBUILT = object()

#: Fan-in up to which AND/OR are emitted as infix chains; larger gates use
#: list-based reductions to keep the generated AST shallow.
_INFIX_FAN_IN = 32


class CompiledCircuit:
    """An immutable, flat, topologically-sorted lowering of a :class:`Circuit`.

    Positions ``0 .. size-1`` enumerate the gates reachable from the output
    in topological order; ``output`` is the position of the output gate.
    Construct through :func:`compile_circuit`, which caches the compiled
    form on the source circuit.
    """

    __slots__ = (
        "source",
        "size",
        "kinds",
        "offsets",
        "indices",
        "var_slot",
        "var_names",
        "var_index",
        "gate_ids",
        "position_of",
        "output",
        "_binarized",
        "_decompositions",
        "_bool_kernel",
        "_float_kernel",
    )

    def __init__(self, circuit: Circuit):
        check(circuit.output is not None, "circuit has no output gate")
        self.source = circuit
        gate_ids = circuit.reachable_from_output()
        self.gate_ids: tuple[int, ...] = tuple(gate_ids)
        self.position_of: dict[int, int] = {
            gid: pos for pos, gid in enumerate(gate_ids)
        }
        self.size = len(gate_ids)
        kinds: list[int] = []
        offsets: list[int] = [0]
        indices: list[int] = []
        var_slot: list[int] = []
        var_names: list[str] = []
        var_index: dict[str, int] = {}
        for gid in gate_ids:
            gate = circuit.gate(gid)
            slot = -1
            if gate.kind == VAR:
                kind = K_VAR
                name = gate.payload
                slot = var_index.get(name, -1)
                if slot < 0:
                    slot = len(var_names)
                    var_index[name] = slot
                    var_names.append(name)
            elif gate.kind == CONST:
                kind = K_TRUE if gate.payload else K_FALSE
            elif gate.kind == NOT:
                kind = K_NOT
            elif gate.kind == AND:
                kind = K_AND
            elif gate.kind == OR:
                kind = K_OR
            else:  # pragma: no cover - guarded by Circuit construction
                raise ReproError(f"unknown gate kind {gate.kind!r}")
            kinds.append(kind)
            var_slot.append(slot)
            indices.extend(self.position_of[i] for i in gate.inputs)
            offsets.append(len(indices))
        self.kinds = kinds
        self.offsets = offsets
        self.indices = indices
        self.var_slot = var_slot
        self.var_names: tuple[str, ...] = tuple(var_names)
        self.var_index = var_index
        self.output = self.position_of[circuit.output]  # type: ignore[index]
        self._binarized: CompiledCircuit | None = None
        self._decompositions: dict[str, object] = {}
        self._bool_kernel = _UNBUILT
        self._float_kernel = _UNBUILT

    # ------------------------------------------------------------------ #
    # inspection

    def variables(self) -> tuple[str, ...]:
        """Variable names in slot order (first topological occurrence)."""
        return self.var_names

    @property
    def has_negation(self) -> bool:
        """Whether the compiled circuit contains any NOT gate."""
        return K_NOT in self.kinds

    def inputs_of(self, position: int) -> list[int]:
        """Input positions of the gate at ``position``."""
        return self.indices[self.offsets[position] : self.offsets[position + 1]]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit(gates={self.size}, variables={len(self.var_names)},"
            f" output={self.output})"
        )

    # ------------------------------------------------------------------ #
    # valuation plumbing

    def slot_values(self, valuation) -> Sequence:
        """Normalize a valuation to a sequence of truth values by var slot.

        Accepts a mapping from variable name to bool (extra names are
        ignored, missing names raise) or a sequence already indexed by slot.
        """
        if isinstance(valuation, Mapping):
            values = []
            for name in self.var_names:
                if name not in valuation:
                    raise ReproError(f"valuation is missing variable {name!r}")
                values.append(1 if valuation[name] else 0)
            return values
        check(
            len(valuation) == len(self.var_names),
            f"valuation has {len(valuation)} entries for {len(self.var_names)} variables",
        )
        return valuation

    def slot_marginals(self, marginals) -> Sequence[float]:
        """Normalize marginals to a float sequence by var slot.

        Accepts an :class:`repro.events.EventSpace`, a mapping from variable
        name to probability, or a sequence indexed by slot.
        """
        probability = getattr(marginals, "probability", None)
        if probability is not None:
            return [probability(name) for name in self.var_names]
        if isinstance(marginals, Mapping):
            missing = [n for n in self.var_names if n not in marginals]
            check(not missing, f"marginals are missing variables {missing!r}")
            return [float(marginals[name]) for name in self.var_names]
        check(
            len(marginals) == len(self.var_names),
            f"marginals have {len(marginals)} entries for {len(self.var_names)} variables",
        )
        return marginals

    # ------------------------------------------------------------------ #
    # kernel generation

    def _build_kernel(self, mode: str):
        """Specialize the circuit into one straight-line Python function.

        The second lowering stage: each gate becomes a single assignment
        over local variables (``v7 = v3 * v5``), so repeated evaluation
        costs plain bytecode instead of an interpreted dispatch loop per
        gate. ``mode`` is ``"bool"`` (0/1 ints, ``&``/``|``/``^``) or
        ``"float"`` (the d-D probability pass: ``*`` at AND, ``+`` at OR).
        Returns ``None`` above :data:`CODEGEN_GATE_LIMIT`; callers then use
        the generic array interpreter.
        """
        if self.size > CODEGEN_GATE_LIMIT:
            return None
        as_float = mode == "float"
        lines = ["def _kernel(s):"]
        for pos in range(self.size):
            kind = self.kinds[pos]
            if kind == K_VAR:
                slot = self.var_slot[pos]
                expr = f"s[{slot}]" if as_float else f"1 if s[{slot}] else 0"
            elif kind == K_TRUE:
                expr = "1.0" if as_float else "1"
            elif kind == K_FALSE:
                expr = "0.0" if as_float else "0"
            elif kind == K_NOT:
                child = self.indices[self.offsets[pos]]
                expr = f"1.0 - v{child}" if as_float else f"v{child} ^ 1"
            else:
                terms = [f"v{i}" for i in self.inputs_of(pos)]
                if len(terms) <= _INFIX_FAN_IN:
                    if as_float:
                        op = " * " if kind == K_AND else " + "
                    else:
                        op = " & " if kind == K_AND else " | "
                    expr = op.join(terms)
                else:
                    listing = ", ".join(terms)
                    if as_float:
                        fn = "_prod" if kind == K_AND else "sum"
                        expr = f"{fn}([{listing}])"
                    else:
                        fn = "all" if kind == K_AND else "any"
                        expr = f"1 if {fn}([{listing}]) else 0"
            lines.append(f"    v{pos} = {expr}")
        lines.append(f"    return v{self.output}")
        import math

        namespace: dict[str, object] = {"_prod": math.prod}
        exec(compile("\n".join(lines), "<compiled-circuit>", "exec"), namespace)
        return namespace["_kernel"]

    def _kernel(self, mode: str):
        if mode == "float":
            if self._float_kernel is _UNBUILT:
                self._float_kernel = self._build_kernel("float")
            return self._float_kernel
        if self._bool_kernel is _UNBUILT:
            self._bool_kernel = self._build_kernel("bool")
        return self._bool_kernel

    # ------------------------------------------------------------------ #
    # Boolean evaluation

    def _evaluate_into(self, buffer: bytearray, slot_values: Sequence) -> int:
        """One bottom-up pass over the flat arrays; returns the output bit."""
        kinds = self.kinds
        offsets = self.offsets
        indices = self.indices
        var_slot = self.var_slot
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == K_VAR:
                value = 1 if slot_values[var_slot[pos]] else 0
            elif kind == K_AND:
                value = 1
                for j in range(offsets[pos], offsets[pos + 1]):
                    if not buffer[indices[j]]:
                        value = 0
                        break
            elif kind == K_OR:
                value = 0
                for j in range(offsets[pos], offsets[pos + 1]):
                    if buffer[indices[j]]:
                        value = 1
                        break
            elif kind == K_NOT:
                value = 1 - buffer[indices[offsets[pos]]]
            else:
                value = kind  # K_TRUE == 1, K_FALSE == 0
            buffer[pos] = value
        return buffer[self.output]

    def evaluate(self, valuation) -> bool:
        """Evaluate the output gate under one valuation."""
        kernel = self._kernel("bool")
        if kernel is not None:
            return bool(kernel(self.slot_values(valuation)))
        buffer = bytearray(self.size)
        return bool(self._evaluate_into(buffer, self.slot_values(valuation)))

    def evaluate_batch(self, valuations: Iterable) -> list[bool]:
        """Evaluate many valuations through the specialized kernel.

        ``valuations`` is an iterable of valuations as accepted by
        :meth:`evaluate`; returns one boolean per valuation, in order. The
        per-gate work is one generated bytecode statement (or, above the
        codegen limit, one pass of the array interpreter over a single
        reusable buffer) — no per-world dict or buffer allocation.
        """
        kernel = self._kernel("bool")
        slot_values = self.slot_values
        if kernel is not None:
            return [bool(kernel(slot_values(valuation))) for valuation in valuations]
        buffer = bytearray(self.size)
        return [
            bool(self._evaluate_into(buffer, slot_values(valuation)))
            for valuation in valuations
        ]

    # ------------------------------------------------------------------ #
    # probability fast paths

    def probability(self, marginals) -> float:
        """Linear-time probability for deterministic decomposable circuits.

        One bottom-up float pass: ``P(OR) = Σ``, ``P(AND) = Π``,
        ``P(NOT) = 1 − P``. Correct only on d-D circuits over independent
        variables (Theorem 1); use the ``message_passing`` engine otherwise.
        """
        probs = self.slot_marginals(marginals)
        kernel = self._kernel("float")
        if kernel is not None:
            return float(kernel(probs))
        kinds = self.kinds
        offsets = self.offsets
        indices = self.indices
        var_slot = self.var_slot
        values = [0.0] * self.size
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == K_VAR:
                value = probs[var_slot[pos]]
            elif kind == K_AND:
                value = 1.0
                for j in range(offsets[pos], offsets[pos + 1]):
                    value *= values[indices[j]]
            elif kind == K_OR:
                value = 0.0
                for j in range(offsets[pos], offsets[pos + 1]):
                    value += values[indices[j]]
            elif kind == K_NOT:
                value = 1.0 - values[indices[offsets[pos]]]
            else:
                value = float(kind)  # K_TRUE == 1, K_FALSE == 0
            values[pos] = value
        return values[self.output]

    def probability_enumerate(
        self, marginals, max_vars: int = ENUMERATION_VARIABLE_CAP
    ) -> float:
        """Exact probability by enumerating all variable valuations.

        Iterates a reusable slot array over all ``2^n`` bitmasks — no
        per-world dict allocation. Exponential; capped at ``max_vars``
        (default :data:`ENUMERATION_VARIABLE_CAP`) variables.
        """
        n = len(self.var_names)
        if n > max_vars:
            raise ReproError(
                f"enumeration oracle limited to {max_vars} variables "
                f"(circuit has {n}; 2^{n} worlds); use the 'shannon' or "
                "'message_passing' engine instead"
            )
        probs = self.slot_marginals(marginals)
        slot_values = [0] * n
        kernel = self._kernel("bool")
        buffer = None if kernel is not None else bytearray(self.size)
        total = 0.0
        for mask in range(1 << n):
            for i in range(n):
                slot_values[i] = (mask >> i) & 1
            satisfied = (
                kernel(slot_values)
                if kernel is not None
                else self._evaluate_into(buffer, slot_values)
            )
            if satisfied:
                weight = 1.0
                for i in range(n):
                    p = probs[i]
                    weight *= p if slot_values[i] else 1.0 - p
                total += weight
        return total

    # ------------------------------------------------------------------ #
    # semiring evaluation

    def evaluate_semiring(self, semiring, annotate) -> object:
        """Fold the circuit in a semiring: ``⊕`` at OR, ``⊗`` at AND.

        ``annotate`` maps a variable *name* to its semiring element.
        Negation is rejected — provenance is defined for monotone circuits.
        """
        kinds = self.kinds
        values: list[object] = [None] * self.size
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == K_VAR:
                values[pos] = annotate(self.var_names[self.var_slot[pos]])
            elif kind == K_AND:
                values[pos] = semiring.multiply_all(
                    values[i] for i in self.inputs_of(pos)
                )
            elif kind == K_OR:
                values[pos] = semiring.add_all(values[i] for i in self.inputs_of(pos))
            elif kind == K_NOT:
                raise ReproError("provenance circuits must be monotone (no NOT gates)")
            else:
                values[pos] = semiring.one() if kind == K_TRUE else semiring.zero()
        return values[self.output]

    # ------------------------------------------------------------------ #
    # cached structure for the message-passing engine

    def binarized(self) -> "CompiledCircuit":
        """The compiled form of the fan-in-≤2 rewrite, built once.

        Always lowers ``source.binarized()`` — even when the source is
        already binary — so the compiled positions stay aligned with the
        densely renumbered arena that external decompositions (built over
        ``circuit.binarized()`` gate ids) refer to.
        """
        if self._binarized is None:
            self._binarized = compile_circuit(self.source.binarized())
        return self._binarized

    def moral_graph(self):
        """Moral graph over compiled positions (gate–input cliques)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.size))
        for pos in range(self.size):
            inputs = self.inputs_of(pos)
            for child in inputs:
                graph.add_edge(pos, child)
            for i, a in enumerate(inputs):
                for b in inputs[i + 1 :]:
                    graph.add_edge(a, b)
        return graph

    def decomposition(self, heuristic: str = "min_fill"):
        """A tree decomposition of the moral graph, cached per heuristic."""
        cached = self._decompositions.get(heuristic)
        if cached is None:
            from repro.treewidth import decompose

            cached = decompose(self.moral_graph(), heuristic)
            self._decompositions[heuristic] = cached
        return cached


def compile_circuit(circuit: Circuit | CompiledCircuit) -> CompiledCircuit:
    """Lower ``circuit`` to its flat IR, caching the result on the arena.

    Passing an already-compiled circuit returns it unchanged. The cache is
    keyed on the arena's mutation version and output gate, so compiling
    again after further construction transparently recompiles.
    """
    if isinstance(circuit, CompiledCircuit):
        return circuit
    key = (circuit.version, circuit.output)
    cached = getattr(circuit, "_compiled_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    compiled = CompiledCircuit(circuit)
    circuit._compiled_cache = (key, compiled)
    return compiled
