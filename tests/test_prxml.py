"""Tests for PrXML: model, semantics, patterns, scopes, circuit evaluation."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.events import EventSpace
from repro.prxml import (
    PrXMLDocument,
    build_pattern_lineage,
    cie,
    det,
    ind,
    make_world,
    mux,
    path_pattern,
    pattern,
    query_probability,
    query_probability_enumerate,
    regular,
    sample_world,
    scope_width,
    world_distribution,
    TreePattern,
)
from repro.prxml.scopes import event_scopes, events_used
from repro.util import ReproError
from repro.workloads import (
    adversarial_scope_document,
    figure1_document,
    wikidata_like_document,
)


class TestModel:
    def test_root_must_be_regular(self):
        with pytest.raises(ReproError, match="regular"):
            PrXMLDocument(det([regular("a")]))

    def test_mux_probability_cap(self):
        with pytest.raises(ReproError, match="sum"):
            mux([(regular("a"), 0.7), (regular("b"), 0.7)])

    def test_cie_requires_registered_events(self):
        root = regular("r", [cie([(regular("a"), [("ghost", True)])])])
        with pytest.raises(ReproError, match="unregistered"):
            PrXMLDocument(root, EventSpace())

    def test_local_choice_count(self):
        doc = figure1_document()
        assert doc.local_choice_count() == 2  # one ind child + one mux node

    def test_has_global_uncertainty(self):
        assert figure1_document().has_global_uncertainty()
        local = PrXMLDocument(regular("r", [ind([(regular("a"), 0.5)])]))
        assert not local.has_global_uncertainty()


class TestSemantics:
    def test_distribution_sums_to_one(self):
        total = sum(p for _w, p in world_distribution(figure1_document()))
        assert math.isclose(total, 1.0)

    def test_figure1_world_count(self):
        # 2 (occupation) × 2 (eJane) × 3 (mux: Bradley/Chelsea/none... sum=1 so 2)
        worlds = list(world_distribution(figure1_document()))
        assert len(worlds) == 8

    def test_cie_correlation(self):
        # Both eJane facts present or both absent — never exactly one.
        for world, p in world_distribution(figure1_document()):
            labels = _labels(world)
            assert ("surname" in labels) == ("place of birth" in labels)

    def test_mux_exclusivity(self):
        for world, _p in world_distribution(figure1_document()):
            labels = _labels(world)
            assert not ("Bradley" in labels and "Chelsea" in labels)

    def test_sampled_worlds_are_possible(self):
        doc = figure1_document()
        possible = {w for w, p in world_distribution(doc) if p > 0}
        for seed in range(20):
            assert sample_world(doc, seed=seed) in possible

    def test_det_keeps_all_children(self):
        doc = PrXMLDocument(
            regular("r", [mux([(det([regular("a"), regular("b")]), 1.0)])])
        )
        worlds = list(world_distribution(doc))
        assert len(worlds) == 1
        assert _labels(worlds[0][0]) == {"r", "a", "b"}


class TestPatterns:
    def test_child_edge(self):
        tree = make_world("a", [make_world("b")])
        assert path_pattern("a", "b").matches(tree)
        assert not path_pattern("b", "a").matches(tree)

    def test_descendant_edge(self):
        tree = make_world("a", [make_world("mid", [make_world("b")])])
        assert path_pattern("a", "b", descendant=True).matches(tree)
        assert not path_pattern("a", "b").matches(tree)

    def test_match_anywhere(self):
        tree = make_world("top", [make_world("a", [make_world("b")])])
        assert path_pattern("a", "b").matches(tree)

    def test_wildcard(self):
        root = pattern("*")
        root.add_child(pattern("b"))
        tree = make_world("anything", [make_world("b")])
        assert TreePattern(root).matches(tree)

    def test_branching_pattern(self):
        root = pattern("a")
        root.add_child(pattern("b"))
        root.add_child(pattern("c"))
        q = TreePattern(root)
        assert q.matches(make_world("a", [make_world("b"), make_world("c")]))
        assert not q.matches(make_world("a", [make_world("b")]))

    def test_shared_target_allowed(self):
        # Two pattern children may map to the same tree node (homomorphism).
        root = pattern("a")
        root.add_child(pattern("b"))
        root.add_child(pattern("b"))
        assert TreePattern(root).matches(make_world("a", [make_world("b")]))


class TestFigure1Probabilities:
    def test_occupation(self):
        doc = figure1_document()
        assert math.isclose(
            query_probability(doc, path_pattern("occupation", "musician")), 0.4
        )

    def test_given_name_chelsea(self):
        doc = figure1_document()
        assert math.isclose(
            query_probability(doc, path_pattern("given name", "Chelsea")), 0.4
        )

    def test_surname_tracks_jane(self):
        doc = figure1_document()
        assert math.isclose(
            query_probability(doc, path_pattern("surname", "Manning")), 0.9
        )

    def test_correlated_pair_probability(self):
        # P(surname ∧ place of birth) = P(eJane) = 0.9, not 0.81.
        root = pattern("Q298423")
        root.add_child(pattern("surname"))
        root.add_child(pattern("place of birth"))
        doc = figure1_document()
        assert math.isclose(query_probability(doc, TreePattern(root)), 0.9)


class TestCircuitEvaluation:
    @pytest.mark.parametrize("seed", range(10))
    def test_local_documents_match_enumeration(self, seed):
        doc = _random_local_document(seed)
        pat = _random_pattern(seed)
        assert math.isclose(
            query_probability(doc, pat),
            query_probability_enumerate(doc, pat),
            abs_tol=1e-9,
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_cie_documents_match_enumeration(self, seed):
        doc = _random_cie_document(seed)
        pat = _random_pattern(seed)
        assert math.isclose(
            query_probability(doc, pat),
            query_probability_enumerate(doc, pat),
            abs_tol=1e-9,
        )

    def test_direct_method_rejected_on_global(self):
        doc = figure1_document()
        lineage = build_pattern_lineage(doc, path_pattern("surname"))
        with pytest.raises(ReproError, match="local"):
            lineage.probability(method="dd")

    def test_shannon_agrees(self):
        doc = figure1_document()
        pat = path_pattern("surname", "Manning")
        lineage = build_pattern_lineage(doc, pat)
        assert math.isclose(lineage.probability(method="shannon"), 0.9)


class TestScopes:
    def test_figure1_scope_is_guarded_subtrees(self):
        doc = figure1_document()
        scopes = event_scopes(doc)
        # eJane scopes the two guarded subtrees: 4 nodes in the span.
        assert len(scopes["eJane"]) == 4
        assert scope_width(doc) == 1

    def test_wikidata_like_bounded_scope(self):
        doc = wikidata_like_document(6, contributors=6, seed=0)
        assert scope_width(doc) == 1

    def test_adversarial_scope_grows(self):
        small = scope_width(adversarial_scope_document(2))
        large = scope_width(adversarial_scope_document(5))
        assert large > small

    def test_events_used(self):
        assert events_used(figure1_document()) == {"eJane"}


def _labels(world) -> set:
    labels = set()
    stack = [world]
    while stack:
        node = stack.pop()
        labels.add(node[0])
        stack.extend(node[1])
    return labels


def _random_local_document(seed: int) -> PrXMLDocument:
    rng = random.Random(seed)

    def build(depth: int):
        label = rng.choice("abcd")
        children = []
        if depth < 2:
            for _ in range(rng.randint(0, 2)):
                child = build(depth + 1)
                style = rng.random()
                if style < 0.4:
                    children.append(ind([(child, round(rng.uniform(0.2, 0.9), 1))]))
                elif style < 0.6:
                    children.append(
                        mux([(child, 0.5), (build(depth + 1), 0.3)])
                    )
                else:
                    children.append(child)
        return regular(label, children)

    return PrXMLDocument(build(0), EventSpace())


def _random_cie_document(seed: int) -> PrXMLDocument:
    rng = random.Random(seed)
    space = EventSpace(
        {f"e{i}": round(rng.uniform(0.2, 0.8), 2) for i in range(rng.randint(1, 3))}
    )
    events = sorted(space.events())
    guarded = []
    for i in range(rng.randint(1, 3)):
        literals = [(rng.choice(events), rng.random() < 0.7)]
        if rng.random() < 0.4:
            literals.append((rng.choice(events), True))
        guarded.append((regular(rng.choice("abc"), [regular("v")]), literals))
    root = regular("root", [cie(guarded), regular(rng.choice("abc"))])
    return PrXMLDocument(root, space)


def _random_pattern(seed: int) -> TreePattern:
    rng = random.Random(seed + 1000)
    labels = ["a", "b", "c", "root", "v"]
    return path_pattern(
        rng.choice(labels), rng.choice(labels), descendant=rng.random() < 0.5
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=50_000))
def test_local_engine_agrees_with_enumeration_property(seed):
    doc = _random_local_document(seed)
    pat = _random_pattern(seed)
    assert math.isclose(
        query_probability(doc, pat),
        query_probability_enumerate(doc, pat),
        abs_tol=1e-9,
    )
