"""c-instances and pc-instances (Imielinski–Lipski, Green–Tannen).

A *c-instance* annotates every fact with a propositional formula over Boolean
events; each event valuation defines the possible world keeping exactly the
facts whose annotation is true. A *pc-instance* additionally equips the
events with independent probabilities, inducing a distribution over worlds.
Table 1 of the paper (the PODS/STOC trips) is the running example.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping

from repro.events import Formula, EventSpace, TRUE, Valuation
from repro.instances.base import Fact, Instance
from repro.instances.columnar import make_instance
from repro.util import check


class CInstance:
    """Facts annotated with propositional formulas over named events."""

    def __init__(
        self,
        rows: Mapping[Fact, Formula] | None = None,
        backend: str | None = None,
    ):
        self.instance = make_instance(backend)
        self._annotations: dict[Fact, Formula] = {}
        if rows:
            for f, formula in rows.items():
                self.add(f, formula)

    def add(self, f: Fact, annotation: Formula = TRUE) -> Fact:
        """Insert fact ``f`` with the given annotation (default: certain)."""
        self.instance.add(f)
        self._annotations[f] = annotation
        return f

    def annotation(self, f: Fact) -> Formula:
        """Return the annotation of ``f``."""
        check(f in self._annotations, f"unknown fact {f!r}")
        return self._annotations[f]

    def facts(self) -> list[Fact]:
        """Return the facts in insertion order."""
        return self.instance.facts()

    def __len__(self) -> int:
        return len(self.instance)

    def events(self) -> frozenset[str]:
        """Return all events mentioned by annotations."""
        if not self._annotations:
            return frozenset()
        return frozenset().union(*(a.events() for a in self._annotations.values()))

    def world(self, valuation: Valuation) -> Instance:
        """Return the possible world selected by ``valuation``."""
        return Instance(
            f for f in self.facts() if self._annotations[f].evaluate(valuation)
        )

    def possible_worlds(self) -> Iterator[tuple[Instance, dict[str, bool]]]:
        """Enumerate ``(world, valuation)`` pairs — exponential oracle."""
        events = sorted(self.events())
        check(len(events) <= 20, "possible-world enumeration limited to 20 events")
        for bits in itertools.product([False, True], repeat=len(events)):
            valuation = dict(zip(events, bits))
            yield self.world(valuation), valuation

    def distinct_worlds(self) -> list[Instance]:
        """Return the distinct possible worlds (deduplicated)."""
        seen: list[Instance] = []
        for world, _valuation in self.possible_worlds():
            if world not in seen:
                seen.append(world)
        return seen

    def is_possible(self, f: Fact) -> bool:
        """Possibility: does some world contain ``f``? (brute force)"""
        return any(f in world for world, _ in self.possible_worlds())

    def is_certain(self, f: Fact) -> bool:
        """Certainty: does every world contain ``f``? (brute force)"""
        return all(f in world for world, _ in self.possible_worlds())

    def conditioned_on_literal(self, event: str, value: bool) -> "CInstance":
        """Return the c-instance with ``event`` forced to ``value``.

        Annotations are partially evaluated; this is the *easy* conditioning
        case of the paper's Section 4 (formula structure only shrinks).
        """
        conditioned = CInstance()
        for f in self.facts():
            conditioned.add(f, self._annotations[f].substitute({event: value}))
        return conditioned

    def __repr__(self) -> str:
        return f"CInstance(facts={len(self.instance)}, events={len(self.events())})"


class PCInstance:
    """A c-instance whose events carry independent probabilities."""

    def __init__(self, cinstance: CInstance | None = None, space: EventSpace | None = None):
        self.cinstance = cinstance if cinstance is not None else CInstance()
        self.space = space if space is not None else EventSpace()

    def add(self, f: Fact, annotation: Formula = TRUE) -> Fact:
        """Insert an annotated fact; its events must already be registered."""
        missing = annotation.events() - self.space.events()
        check(not missing, f"events {sorted(missing)} not registered in the space")
        return self.cinstance.add(f, annotation)

    def add_event(self, name: str, probability: float) -> str:
        """Register an event with its probability."""
        return self.space.add(name, probability)

    def facts(self) -> list[Fact]:
        """Return the facts in insertion order."""
        return self.cinstance.facts()

    def annotation(self, f: Fact) -> Formula:
        """Return the annotation of ``f``."""
        return self.cinstance.annotation(f)

    def fact_probability(self, f: Fact) -> float:
        """Exact marginal probability that ``f`` is present (enumeration)."""
        return self.space.formula_probability(self.cinstance.annotation(f))

    def possible_worlds(self) -> Iterator[tuple[Instance, float]]:
        """Enumerate ``(world, probability)`` pairs — exponential oracle."""
        for world, valuation in self.cinstance.possible_worlds():
            yield world, self.space.valuation_probability(valuation)

    def world_distribution(self) -> dict[frozenset[Fact], float]:
        """Return the full distribution over distinct worlds (enumeration)."""
        distribution: dict[frozenset[Fact], float] = {}
        for world, probability in self.possible_worlds():
            key = frozenset(world)
            distribution[key] = distribution.get(key, 0.0) + probability
        return distribution

    def sample_world(self, seed: int | None = None) -> Instance:
        """Draw one world at random."""
        valuation = self.space.sample(seed)
        return self.cinstance.world(valuation)

    def conditioned_on_literal(self, event: str, value: bool) -> "PCInstance":
        """Force an event literal; independence makes this exact and cheap."""
        return PCInstance(
            self.cinstance.conditioned_on_literal(event, value),
            self.space.conditioned_on_literal(event, value),
        )

    def __repr__(self) -> str:
        return f"PCInstance(facts={len(self.cinstance)}, events={len(self.space)})"


def from_tid(tid) -> PCInstance:
    """View a TID instance as a pc-instance with one event per fact."""
    from repro.events import var

    pc = PCInstance()
    for f in tid.facts():
        pc.add_event(f.variable_name, tid.probability(f))
        pc.add(f, var(f.variable_name))
    return pc
