"""Partial tree decompositions: exact tentacles + sampled core (E12).

The paper's perspective: "structure uncertain instances as a high-treewidth
core and low-treewidth tentacles, and evaluate queries by combining
[the exact method] on the tentacles and sampling-based approximate methods on
the core" — the ProbTree idea ([38]) in the s–t connectivity setting.

We implement it for s–t reachability over an uncertain edge relation:

1. *peel* the graph: repeatedly remove low-degree vertices (never the
   terminals); removed vertices form the periphery, the rest the core;
2. each periphery fragment touching the core at ≤ 2 boundary vertices is
   *summarized exactly*: its two-terminal reliability is computed with the
   treewidth-based engine (fragments peeled at degree ≤ 2 have treewidth
   ≤ 2) and the fragment is replaced by one equivalent uncertain edge;
3. Monte-Carlo estimation runs on the *reduced* instance.

The replacement is exact in distribution, so the estimator stays unbiased
while each sample touches far fewer uncertain facts (cheaper samples, hence
better time-to-accuracy). When a terminal sits at the tip of a summarized
chain, the chain's reliability additionally factors out of the estimator
(*series reduction*), which is a genuine Rao–Blackwellization: part of the
randomness is integrated exactly, lowering the variance per sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.engine import tid_probability
from repro.core.graph_automata import STConnectivityAutomaton
from repro.instances.base import Fact, fact
from repro.instances.tid import TIDInstance
from repro.util import check, stable_rng


@dataclass
class HybridReduction:
    """Outcome of the core/tentacle reduction."""

    reduced: TIDInstance
    core_vertices: frozenset
    periphery_vertices: frozenset
    fragments_summarized: int
    fragments_kept: int


def _edge_graph(tid: TIDInstance) -> nx.Graph:
    graph = nx.Graph()
    for f in tid.facts():
        if f.relation == "E" and f.arity == 2:
            graph.add_edge(*f.args)
    return graph


def peel(graph: nx.Graph, keep: frozenset, max_degree: int = 2) -> frozenset:
    """Iteratively remove vertices of degree ≤ ``max_degree`` (except ``keep``).

    Returns the set of *removed* (periphery) vertices.
    """
    work = nx.Graph(graph)
    removed: set = set()
    changed = True
    while changed:
        changed = False
        for v in sorted(work.nodes, key=str):
            if v in keep:
                continue
            if work.degree(v) <= max_degree:
                work.remove_node(v)
                removed.add(v)
                changed = True
    return frozenset(removed)


def reduce_for_stconn(
    tid: TIDInstance, source, target, peel_degree: int = 2
) -> HybridReduction:
    """Summarize ≤2-boundary periphery fragments into equivalent edges."""
    graph = _edge_graph(tid)
    check(graph.number_of_nodes() > 0, "no E-edges in the instance")
    keep = frozenset({source, target})
    periphery = peel(graph, keep, peel_degree)
    core = frozenset(graph.nodes) - periphery

    fragment_graph = graph.subgraph(periphery)
    reduced = TIDInstance()
    gadget_probabilities: dict[tuple, list[float]] = {}
    summarized = 0
    kept = 0

    consumed_facts: set[Fact] = set()
    for component in nx.connected_components(fragment_graph):
        boundary = sorted(
            {n for v in component for n in graph.neighbors(v) if n in core}, key=str
        )
        fragment_facts = [
            f
            for f in tid.facts()
            if f.relation == "E"
            and (f.args[0] in component or f.args[1] in component)
        ]
        if len(boundary) == 2:
            u, v = boundary
            fragment_tid = TIDInstance(
                {f: tid.probability(f) for f in fragment_facts}
            )
            reliability = tid_probability(
                STConnectivityAutomaton(u, v), fragment_tid
            )
            key = (u, v) if str(u) <= str(v) else (v, u)
            gadget_probabilities.setdefault(key, []).append(reliability)
            consumed_facts.update(fragment_facts)
            summarized += 1
        elif len(boundary) <= 1:
            # A dangling fragment cannot lie on any s–t path: drop it.
            consumed_facts.update(fragment_facts)
            summarized += 1
        else:
            kept += 1  # fragment stays as-is

    for f in tid.facts():
        if f in consumed_facts:
            continue
        if f.relation == "E" and f.arity == 2:
            a, b = f.args
            key = (a, b) if str(a) <= str(b) else (b, a)
            gadget_probabilities.setdefault(key, []).append(tid.probability(f))
        else:
            reduced.add(f, tid.probability(f))
    for (a, b), probabilities in sorted(gadget_probabilities.items(), key=str):
        miss = 1.0
        for p in probabilities:
            miss *= 1.0 - p
        reduced.add(fact("E", a, b), 1.0 - miss)

    return HybridReduction(
        reduced=reduced,
        core_vertices=core,
        periphery_vertices=periphery,
        fragments_summarized=summarized,
        fragments_kept=kept,
    )


def monte_carlo_stconn(
    tid: TIDInstance, source, target, samples: int, seed: int = 0
) -> float:
    """Naive Monte-Carlo estimate of P(source ~ target) (union-find)."""
    check(samples > 0, "need at least one sample")
    rng = stable_rng(seed)
    edges = [
        (f.args[0], f.args[1], tid.probability(f))
        for f in tid.facts()
        if f.relation == "E" and f.arity == 2
    ]
    hits = 0
    for _ in range(samples):
        parent: dict = {}

        def find(x):
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b, p in edges:
            if rng.random() < p:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[ra] = rb
        if find(source) == find(target):
            hits += 1
    return hits / samples


def series_factor_terminals(
    tid: TIDInstance, source, target
) -> tuple[float, object, object, TIDInstance]:
    """Factor out pendant chains at the terminals (series reduction).

    While a terminal has exactly one incident uncertain edge, that edge must
    lie on every source–target path: its probability multiplies out of the
    estimator and the terminal moves to the edge's other endpoint. Returns
    ``(factor, new_source, new_target, reduced_tid)``; if the terminals meet,
    the probability is exactly ``factor`` and the remaining instance is empty.
    """
    factor = 1.0
    edges = {
        f: tid.probability(f)
        for f in tid.facts()
        if f.relation == "E" and f.arity == 2
    }
    s, t = source, target
    changed = True
    while changed and s != t:
        changed = False
        for terminal in (s, t):
            incident = [f for f in edges if terminal in f.args]
            if len(incident) != 1:
                continue
            edge = incident[0]
            other = edge.args[0] if edge.args[1] == terminal else edge.args[1]
            factor *= edges.pop(edge)
            if terminal == s:
                s = other
            else:
                t = other
            changed = True
            break
    reduced = TIDInstance(edges)
    return factor, s, t, reduced


def hybrid_stconn(
    tid: TIDInstance, source, target, samples: int, seed: int = 0, peel_degree: int = 2
) -> tuple[float, HybridReduction]:
    """Hybrid estimate: exact summarization + series factoring + Monte Carlo."""
    reduction = reduce_for_stconn(tid, source, target, peel_degree)
    factor, s, t, remaining = series_factor_terminals(
        reduction.reduced, source, target
    )
    if s == t:
        return factor, reduction
    if not any(f.relation == "E" for f in remaining.facts()):
        return 0.0, reduction
    estimate = factor * monte_carlo_stconn(remaining, s, t, samples, seed)
    return estimate, reduction
