"""Tests for the fleet transport: TLS/mTLS, capability handshake,
shard pipelining, and elastic worker registration.

Four layers, matching the transport additions to
:mod:`repro.circuits.distributed`:

- the **capability handshake** — socket-free unit coverage of
  :func:`negotiate_caps` (legacy caps-less hellos, advisory version ints,
  unknown capabilities, the empty-intersection hard reject), plus live
  mixed-version drills: a "v2" worker (caps-less hello) is driven
  lockstep by this coordinator, and this worker's hello still satisfies
  an old all-or-nothing version check;
- the **auth provider seam** — knob parsing/scoping for the TLS and
  pipeline knobs, the provider resolution order (explicit install > TLS
  knobs > secret > plaintext), and the :class:`TLSAuth` context
  preconditions;
- the **TLS fault drills** — real localhost workers with the committed
  ``tests/certs`` material: server-auth TLS and mutual TLS must be
  bit-identical to the 0-host oracle; an untrusted or expired worker
  certificate is never served (local fallback, warning, no silent
  plaintext retry); a plaintext peer behind a TLS coordinator is only
  retried in plaintext when explicitly allowed;
- **pipelining + elastic membership** — deeper pipelines return the same
  bits as lockstep and as the local oracle; a worker that dials in and
  REGISTERs serves shards with no static host list, and draining it
  returns the pool to local-only execution with identical results.

Socket tests carry the ``distributed`` marker so socket-free CI jobs can
deselect them.
"""

import asyncio
import threading
import time
import warnings
from pathlib import Path

import pytest

from repro.circuits import Circuit, compile_circuit
from repro.circuits import distributed, parallel
from repro.util import ReproError, stable_rng

CERTS = Path(__file__).parent / "certs"


def random_circuit(seed: int, n_vars: int = 6, steps: int = 16) -> Circuit:
    rng = stable_rng(seed)
    c = Circuit()
    gates = [c.variable(f"v{i}") for i in range(n_vars)] + [c.true(), c.false()]
    for _ in range(rng.randint(4, steps)):
        op = rng.choice(["and", "or", "not"])
        if op == "not":
            gates.append(c.negation(rng.choice(gates)))
        else:
            picked = rng.sample(gates, rng.randint(2, min(4, len(gates))))
            gates.append(c.and_gate(picked) if op == "and" else c.or_gate(picked))
    c.set_output(gates[-1])
    return c


class InProcessWorker:
    """A :class:`WorkerServer` on a private loop thread (no subprocess).

    The handshake drills need worker-side hooks (``hello_caps`` /
    ``hello_version``) and a worker whose transport is pinned regardless
    of the ambient ``REPRO_DISTRIBUTED_TLS_*`` environment — neither of
    which the CLI spawn path exposes.
    """

    def __init__(self, **kwargs):
        self.server = distributed.WorkerServer(**kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self._run, name="test-worker-loop", daemon=True
        )
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.server.port}"

    def stop(self):
        async def shut_down():
            await self.server.stop()
            tasks = [
                task for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            # Let the cancellations land before the loop stops, or the
            # interpreter logs "Task was destroyed but it is pending".
            await asyncio.gather(*tasks, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(shut_down(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture
def inprocess_worker_factory():
    spawned: list[InProcessWorker] = []

    def factory(**kwargs) -> InProcessWorker:
        worker = InProcessWorker(**kwargs)
        spawned.append(worker)
        return worker

    yield factory
    for worker in spawned:
        worker.stop()


@pytest.fixture
def plaintext_provider():
    """Pin the coordinator to the plaintext provider for this test.

    The CI TLS topology arms ``REPRO_DISTRIBUTED_TLS_*`` suite-wide; the
    in-process drill workers are deliberately plaintext, so the
    coordinator must not try TLS against them.
    """
    with distributed.auth_provider_set(distributed.AuthProvider()):
        yield


def wait_until(predicate, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


# --------------------------------------------------------------------------- #
# capability negotiation (socket-free)

class TestNegotiateCaps:
    def test_legacy_capsless_hello_grants_the_v2_baseline(self):
        shared = distributed.negotiate_caps(
            {"version": distributed.PROTOCOL_VERSION}, "worker x"
        )
        assert shared == distributed.V2_BASELINE_CAPS
        assert "pipeline" not in shared and "register" not in shared

    def test_legacy_hello_with_wrong_version_hard_rejects(self):
        with pytest.raises(ReproError, match="speaks protocol 99"):
            distributed.negotiate_caps({"version": 99}, "worker x")
        with pytest.raises(ReproError, match="speaks protocol None"):
            distributed.negotiate_caps({}, "worker x")

    def test_caps_hello_makes_the_version_int_advisory(self):
        shared = distributed.negotiate_caps(
            {"version": 99, "caps": sorted(distributed.PROTOCOL_CAPS)}, "worker x"
        )
        assert shared == distributed.PROTOCOL_CAPS

    def test_unknown_future_caps_are_ignored(self):
        shared = distributed.negotiate_caps(
            {"version": 4, "caps": ["caps", "mc", "eval", "quantum-teleport"]},
            "worker x",
        )
        assert shared == frozenset({"caps", "mc", "eval"})

    def test_empty_intersection_hard_rejects(self):
        with pytest.raises(ReproError, match="shares no protocol capabilities"):
            distributed.negotiate_caps({"version": 4, "caps": ["warp"]}, "w")
        # "caps" alone means "I can negotiate but do nothing": also reject.
        with pytest.raises(ReproError, match="shares no protocol capabilities"):
            distributed.negotiate_caps({"version": 4, "caps": ["caps"]}, "w")

    def test_protocol_version_is_frozen(self):
        """The version int stays 2 forever — compat rides on ``caps``."""
        assert distributed.PROTOCOL_VERSION == 2
        assert distributed.V2_BASELINE_CAPS < distributed.PROTOCOL_CAPS

    def test_our_hello_satisfies_an_old_all_or_nothing_coordinator(self):
        """The v3→v2 direction: an old coordinator checked exactly
        ``meta["version"] == 2`` and ignored unknown keys, so this build's
        worker hello must still carry the legacy version int."""
        server = distributed.WorkerServer()
        hello = server._hello_meta()
        assert hello["version"] == 2  # what the old check compared against
        assert set(hello["caps"]) == distributed.PROTOCOL_CAPS


# --------------------------------------------------------------------------- #
# knobs + provider resolution (socket-free)

class TestTLSKnob:
    def test_set_and_scope(self):
        with distributed.distributed_tls_set(cafile="ca.pem"):
            assert distributed.distributed_tls()["cafile"] == "ca.pem"
            with distributed.distributed_tls_set():
                assert distributed.distributed_tls() is None
            assert distributed.distributed_tls()["cafile"] == "ca.pem"

    def test_env_parsing(self, monkeypatch):
        for name in ("CERT", "KEY", "CA", "ALLOW_PLAINTEXT"):
            monkeypatch.delenv(f"REPRO_DISTRIBUTED_TLS_{name}", raising=False)
        assert distributed._tls_from_env() is None
        monkeypatch.setenv("REPRO_DISTRIBUTED_TLS_CA", "/tmp/ca.pem")
        parsed = distributed._tls_from_env()
        assert parsed["cafile"] == "/tmp/ca.pem"
        assert parsed["certfile"] is None
        assert parsed["allow_plaintext"] is False
        monkeypatch.setenv("REPRO_DISTRIBUTED_TLS_ALLOW_PLAINTEXT", "1")
        assert distributed._tls_from_env()["allow_plaintext"] is True
        monkeypatch.setenv("REPRO_DISTRIBUTED_TLS_ALLOW_PLAINTEXT", "false")
        assert distributed._tls_from_env()["allow_plaintext"] is False

    def test_provider_resolution_order(self):
        with distributed.auth_provider_set(None), \
                distributed.distributed_tls_set(), \
                distributed.distributed_secret_set(None):
            assert distributed.auth_provider().name == "plaintext"
            with distributed.distributed_secret_set("s3cret"):
                assert distributed.auth_provider().name == "hmac"
                with distributed.distributed_tls_set(cafile="ca.pem"):
                    assert distributed.auth_provider().name == "tls"
                    custom = distributed.HMACAuth("other")
                    with distributed.auth_provider_set(custom):
                        assert distributed.auth_provider() is custom

    def test_tls_provider_cached_per_config(self):
        with distributed.auth_provider_set(None):
            with distributed.distributed_tls_set(cafile="a.pem"):
                first = distributed.auth_provider()
                assert first is distributed.auth_provider()
            with distributed.distributed_tls_set(cafile="b.pem"):
                assert distributed.auth_provider() is not first

    def test_provider_names(self):
        assert distributed.AuthProvider().name == "plaintext"
        assert distributed.HMACAuth("x").name == "hmac"
        assert distributed.TLSAuth(cafile="ca.pem").name == "tls"
        assert distributed.TLSAuth(
            certfile="c.pem", keyfile="k.pem", cafile="ca.pem"
        ).name == "mtls"

    def test_client_context_requires_a_ca_bundle(self):
        with pytest.raises(ReproError, match="CA bundle"):
            distributed.TLSAuth(certfile=str(CERTS / "client.pem")).client_ssl()

    def test_server_context_requires_cert_and_key(self):
        with pytest.raises(ReproError, match="certificate and key"):
            distributed.TLSAuth(cafile=str(CERTS / "ca.pem")).server_ssl()

    def test_rejects_non_provider_objects(self):
        with pytest.raises(ReproError, match="AuthProvider"):
            distributed.set_auth_provider(object())

    def test_hmac_secret_precedence(self):
        with distributed.distributed_secret_set("process-wide"):
            assert distributed.HMACAuth("explicit").secret() == "explicit"
            assert distributed.HMACAuth().secret() == "process-wide"


class TestPipelineKnob:
    def test_default_set_and_scope(self):
        assert distributed.PIPELINE_DEPTH >= 2  # pipelining on by default
        with distributed.pipeline_depth_set(7):
            assert distributed.pipeline_depth() == 7
            with distributed.pipeline_depth_set(None):
                assert distributed.pipeline_depth() == distributed.PIPELINE_DEPTH
            assert distributed.pipeline_depth() == 7

    def test_floor_is_lockstep(self):
        with distributed.pipeline_depth_set(0):
            assert distributed.pipeline_depth() == 1
        with distributed.pipeline_depth_set(-3):
            assert distributed.pipeline_depth() == 1

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTRIBUTED_PIPELINE", "9")
        assert distributed._pipeline_depth_from_env() == 9
        monkeypatch.setenv("REPRO_DISTRIBUTED_PIPELINE", "0")
        assert distributed._pipeline_depth_from_env() == 1
        monkeypatch.setenv("REPRO_DISTRIBUTED_PIPELINE", "nonsense")
        assert distributed._pipeline_depth_from_env() == distributed.PIPELINE_DEPTH
        monkeypatch.delenv("REPRO_DISTRIBUTED_PIPELINE")
        assert distributed._pipeline_depth_from_env() == distributed.PIPELINE_DEPTH


# --------------------------------------------------------------------------- #
# TLS end-to-end + fault drills (real worker subprocesses)

@pytest.mark.distributed
class TestTLSTransport:
    @pytest.fixture(autouse=True)
    def _need_numpy(self):
        pytest.importorskip("numpy")

    def _oracle_and_marginals(self, seed: int):
        compiled = compile_circuit(random_circuit(seed))
        marginals = [0.2 + 0.1 * (i % 5) for i in range(len(compiled.variables()))]
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        return compiled, marginals, serial

    def _mc(self, compiled, marginals, hosts):
        return distributed.monte_carlo_hits(
            compiled, marginals, 700, seed=9, hosts=hosts
        )

    def test_tls_round_trip_bit_identical(self, worker_factory):
        compiled, marginals, serial = self._oracle_and_marginals(70)
        worker = worker_factory(
            tls_cert=str(CERTS / "server.pem"), tls_key=str(CERTS / "server.key")
        )
        before = distributed.pool_stats()
        with distributed.distributed_tls_set(cafile=str(CERTS / "ca.pem")):
            assert distributed.auth_provider().name == "tls"
            assert self._mc(compiled, marginals, (worker.address,)) == serial
        after = distributed.pool_stats()
        assert after["tasks_completed"] > before["tasks_completed"]

    def test_mtls_round_trip_bit_identical(self, worker_factory):
        compiled, marginals, serial = self._oracle_and_marginals(71)
        worker = worker_factory(
            tls_cert=str(CERTS / "server.pem"),
            tls_key=str(CERTS / "server.key"),
            tls_ca=str(CERTS / "ca.pem"),  # demand client certificates
        )
        with distributed.distributed_tls_set(
            certfile=str(CERTS / "client.pem"),
            keyfile=str(CERTS / "client.key"),
            cafile=str(CERTS / "ca.pem"),
        ):
            assert distributed.auth_provider().name == "mtls"
            assert self._mc(compiled, marginals, (worker.address,)) == serial

    def test_tls_and_hmac_compose(self, worker_factory):
        """Encryption and authentication are independent layers: a TLS
        worker with a shared secret still challenges, and the right secret
        is still served."""
        compiled, marginals, serial = self._oracle_and_marginals(72)
        worker = worker_factory(
            secret="belt-and-braces",
            tls_cert=str(CERTS / "server.pem"), tls_key=str(CERTS / "server.key"),
        )
        with distributed.distributed_tls_set(cafile=str(CERTS / "ca.pem")), \
                distributed.distributed_secret_set("belt-and-braces"):
            assert self._mc(compiled, marginals, (worker.address,)) == serial

    def test_untrusted_certificate_is_never_served(self, worker_factory):
        """Bad-cert drill: a worker presenting a certificate our CA did
        not sign completes zero shards — even when plaintext fallback is
        allowed, verification failure must not downgrade the link."""
        compiled, marginals, serial = self._oracle_and_marginals(73)
        worker = worker_factory(
            tls_cert=str(CERTS / "selfsigned.pem"),
            tls_key=str(CERTS / "selfsigned.key"),
        )
        before = distributed.pool_stats()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with distributed.distributed_tls_set(
                cafile=str(CERTS / "ca.pem"), allow_plaintext=True
            ):
                hits = self._mc(compiled, marginals, (worker.address,))
        after = distributed.pool_stats()
        assert hits == serial  # the local fallback absorbed the work
        assert after["connects"] == before["connects"]
        assert after["per_host_tasks"].get(worker.address, 0) == \
            before["per_host_tasks"].get(worker.address, 0)
        assert any(
            "certificate verification" in str(w.message) for w in caught
        ), [str(w.message) for w in caught]
        assert worker.alive()

    def test_expired_certificate_is_never_served(self, worker_factory):
        compiled, marginals, serial = self._oracle_and_marginals(74)
        worker = worker_factory(
            tls_cert=str(CERTS / "expired.pem"),
            tls_key=str(CERTS / "expired.key"),
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with distributed.distributed_tls_set(cafile=str(CERTS / "ca.pem")):
                hits = self._mc(compiled, marginals, (worker.address,))
        assert hits == serial
        messages = [str(w.message) for w in caught]
        assert any("certificate verification" in m for m in messages), messages
        assert any("expired" in m for m in messages), messages

    def test_plaintext_peer_refused_without_the_escape_hatch(
        self, inprocess_worker_factory
    ):
        """A TLS coordinator meeting a worker that does not speak TLS at
        all refuses the link (and falls back locally) unless plaintext
        fallback was explicitly allowed."""
        compiled, marginals, serial = self._oracle_and_marginals(75)
        worker = inprocess_worker_factory()  # plaintext, no TLS arguments
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with distributed.distributed_tls_set(cafile=str(CERTS / "ca.pem")):
                hits = self._mc(compiled, marginals, (worker.address,))
        assert hits == serial
        assert any(
            "TLS handshake" in str(w.message) for w in caught
        ), [str(w.message) for w in caught]

    def test_plaintext_peer_served_when_explicitly_allowed(
        self, inprocess_worker_factory
    ):
        compiled, marginals, serial = self._oracle_and_marginals(76)
        worker = inprocess_worker_factory()
        before = distributed.pool_stats()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with distributed.distributed_tls_set(
                cafile=str(CERTS / "ca.pem"), allow_plaintext=True
            ):
                hits = self._mc(compiled, marginals, (worker.address,))
        after = distributed.pool_stats()
        assert hits == serial
        assert after["per_host_tasks"].get(worker.address, 0) > \
            before["per_host_tasks"].get(worker.address, 0)
        assert any(
            "retrying in plaintext" in str(w.message) for w in caught
        ), [str(w.message) for w in caught]


# --------------------------------------------------------------------------- #
# mixed-version handshake drills (live)

@pytest.mark.distributed
class TestMixedVersionFleet:
    @pytest.fixture(autouse=True)
    def _need_numpy(self):
        pytest.importorskip("numpy")

    def test_v2_worker_serves_a_v3_coordinator_lockstep(
        self, inprocess_worker_factory, plaintext_provider, monkeypatch
    ):
        """A legacy worker (caps-less version-2 hello) still completes
        shards for this coordinator — negotiated down to the v2 baseline,
        driven lockstep instead of pipelined, bit-identical results."""
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(80))
        marginals = [0.3] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        legacy = inprocess_worker_factory(hello_caps=())
        assert distributed.monte_carlo_hits(
            compiled, marginals, 700, seed=9, hosts=(legacy.address,)
        ) == serial
        conn = distributed._HOST_POOL._conns[legacy.address]
        assert conn.caps == distributed.V2_BASELINE_CAPS
        assert "pipeline" not in conn.caps

    def test_future_worker_with_caps_is_accepted(
        self, inprocess_worker_factory, plaintext_provider
    ):
        """A worker from the future (version 99) negotiates fine as long
        as it advertises capabilities we share."""
        compiled = compile_circuit(random_circuit(81))
        marginals = [0.4] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        future = inprocess_worker_factory(hello_version=99)
        assert distributed.monte_carlo_hits(
            compiled, marginals, 700, seed=9, hosts=(future.address,)
        ) == serial
        assert distributed._HOST_POOL._conns[future.address].caps == \
            distributed.PROTOCOL_CAPS

    def test_capsless_future_worker_is_refused(
        self, inprocess_worker_factory, plaintext_provider
    ):
        """Version drift without a capability set is the one remaining
        hard handshake failure — the old all-or-nothing rule."""
        compiled = compile_circuit(random_circuit(82))
        marginals = [0.5] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        alien = inprocess_worker_factory(hello_caps=(), hello_version=99)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            hits = distributed.monte_carlo_hits(
                compiled, marginals, 700, seed=9, hosts=(alien.address,)
            )
        assert hits == serial
        assert alien.address not in distributed._HOST_POOL._conns
        assert any(
            "speaks protocol 99" in str(w.message) for w in caught
        ), [str(w.message) for w in caught]


# --------------------------------------------------------------------------- #
# pipelining + elastic membership (live)

@pytest.mark.distributed
class TestPipelining:
    @pytest.fixture(autouse=True)
    def _need_numpy(self):
        pytest.importorskip("numpy")

    def test_depths_agree_with_each_other_and_the_oracle(
        self, worker_factory, monkeypatch
    ):
        """Out-of-order RESULT correlation must not reorder the merge:
        every pipeline depth returns the same bits as lockstep and as the
        0-host oracle."""
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(85))
        marginals = [0.35] * len(compiled.variables())
        samples = 64 * 12
        serial = parallel.monte_carlo_hits(
            compiled, marginals, samples, seed=5, workers=0
        )
        worker = worker_factory()
        results = {}
        for depth in (1, 2, 8):
            with distributed.pipeline_depth_set(depth):
                results[depth] = distributed.monte_carlo_hits(
                    compiled, marginals, samples, seed=5, hosts=(worker.address,)
                )
        assert results == {1: serial, 2: serial, 8: serial}

    def test_pipelined_fault_injection_loses_no_shards(
        self, worker_factory, monkeypatch
    ):
        """A worker dying with several task frames in flight must not lose
        or duplicate any of them — the abandoned in-flight set is requeued
        onto the healthy worker and the merge stays bit-identical."""
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(86))
        marginals = [0.45] * len(compiled.variables())
        samples = 64 * 12
        serial = parallel.monte_carlo_hits(
            compiled, marginals, samples, seed=6, workers=0
        )
        dying = worker_factory(max_tasks=2)
        healthy = worker_factory()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with distributed.pipeline_depth_set(8):
                hits = distributed.monte_carlo_hits(
                    compiled, marginals, samples, seed=6,
                    hosts=(dying.address, healthy.address),
                )
        assert hits == serial
        assert healthy.alive()

    def test_two_pipelined_workers_split_the_samples(
        self, worker_factory, monkeypatch
    ):
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(87))
        marginals = [0.25] * len(compiled.variables())
        samples = 64 * 10
        serial = parallel.monte_carlo_hits(
            compiled, marginals, samples, seed=7, workers=0
        )
        first = worker_factory()
        second = worker_factory()
        before = distributed.pool_stats()
        assert distributed.monte_carlo_hits(
            compiled, marginals, samples, seed=7,
            hosts=(first.address, second.address),
        ) == serial
        after = distributed.pool_stats()
        done = {
            host: after["per_host_tasks"].get(host, 0)
            - before["per_host_tasks"].get(host, 0)
            for host in (first.address, second.address)
        }
        assert sum(done.values()) == 10  # every shard answered exactly once
        assert all(count > 0 for count in done.values())


@pytest.mark.distributed
class TestElasticMembership:
    @pytest.fixture(autouse=True)
    def _need_numpy(self):
        pytest.importorskip("numpy")

    def test_register_then_drain_matches_the_0_host_oracle(
        self, worker_factory, monkeypatch
    ):
        """The full elastic lifecycle: a worker dials the registry and
        REGISTERs; with no static host list the pool routes shards to it;
        stopping it drains the membership and execution returns to
        local-only — bit-identical at every stage."""
        # Fine shards: the CI distributed job keeps an ambient REGISTERed
        # member in the fleet, and a single-shard call would race it for
        # the whole workload; 22 shards make every live member serve.
        monkeypatch.setattr(parallel, "MC_SHARD", 32)
        compiled = compile_circuit(random_circuit(90))
        marginals = [0.3] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        registry = distributed.start_registry()
        baseline = set(distributed.registered_hosts())
        before = distributed.pool_stats()
        worker = worker_factory(register=registry)
        assert wait_until(
            lambda: set(distributed.registered_hosts()) - baseline
        ), "worker never registered"
        joined = (set(distributed.registered_hosts()) - baseline).pop()
        with distributed.distributed_hosts_set(None):
            assert distributed.effective_hosts(None) == tuple(
                distributed.registered_hosts()
            )
            assert distributed.effective_hosts(()) == ()  # explicit opt-out wins
            hits = distributed.monte_carlo_hits(compiled, marginals, 700, seed=9)
        after = distributed.pool_stats()
        assert hits == serial

        # The first call may finish while the fresh member is still
        # mid-handshake (an ambient fleet member with a pooled connection
        # can drain the queue first), so let warm repeats prove routing.
        def joined_served() -> bool:
            with distributed.distributed_hosts_set(None):
                assert distributed.monte_carlo_hits(
                    compiled, marginals, 700, seed=9
                ) == serial
            return (
                distributed.pool_stats()["per_host_tasks"].get(joined, 0)
                > before["per_host_tasks"].get(joined, 0)
            )

        assert wait_until(joined_served), "joined worker never served a shard"
        assert after["registrations"] - before["registrations"] >= 1
        worker.stop()  # EOF on the registry link = drain
        assert wait_until(
            lambda: joined not in distributed.registered_hosts()
        ), "worker never drained"
        with distributed.distributed_hosts_set(None):
            assert distributed.monte_carlo_hits(
                compiled, marginals, 700, seed=9
            ) == serial  # local-only again, same bits

    def test_admit_and_drain_api(self):
        """The thread-safe membership hooks work without a registry."""
        distributed._HOST_POOL.admit("127.0.0.1:19999")
        try:
            assert "127.0.0.1:19999" in distributed.registered_hosts()
            with distributed.distributed_hosts_set(None):
                assert "127.0.0.1:19999" in distributed.effective_hosts(None)
        finally:
            distributed._HOST_POOL.drain("127.0.0.1:19999")
        assert "127.0.0.1:19999" not in distributed.registered_hosts()

    def test_admit_rejects_malformed_addresses(self):
        with pytest.raises(ReproError):
            distributed._HOST_POOL.admit("not-an-address")

    def test_static_hosts_and_registered_hosts_merge(self):
        distributed._HOST_POOL.admit("127.0.0.1:19998")
        try:
            with distributed.distributed_hosts_set("127.0.0.1:19998,a:1"):
                merged = distributed.effective_hosts(None)
                # Static list first, elastic members appended (the CI
                # distributed job contributes an ambient REGISTERed
                # member, so assert shape rather than the exact tuple).
                assert merged[:2] == ("127.0.0.1:19998", "a:1")
                # dict.fromkeys dedupe: the registered host is not doubled
                assert merged.count("127.0.0.1:19998") == 1
                assert set(distributed.registered_hosts()) <= set(merged)
        finally:
            distributed._HOST_POOL.drain("127.0.0.1:19998")


@pytest.mark.distributed
class TestTransportModeConformance:
    """Every transport mode serves the conformance corpus, pinned hard.

    The acceptance matrix for the fleet transport: plaintext, HMAC, TLS
    and mutual TLS must all return Boolean evaluations exactly equal to
    the per-world scalar oracle and probabilities **bit-identical** to
    the local numpy tier (which ``test_conformance`` in turn holds to
    the scalar oracle) — encrypting or challenging the link must never
    change a single bit of any corpus scenario.
    """

    @pytest.fixture(autouse=True)
    def _need_numpy(self):
        pytest.importorskip("numpy")

    def _mode(self, name, inprocess_worker_factory):
        """Returns (worker, coordinator-context) for a transport mode."""
        server = dict(
            tls_cert=str(CERTS / "server.pem"),
            tls_key=str(CERTS / "server.key"),
        )
        if name == "plaintext":
            return (
                inprocess_worker_factory(),
                distributed.auth_provider_set(distributed.AuthProvider()),
            )
        if name == "hmac":
            return (
                inprocess_worker_factory(secret="corpus-secret"),
                distributed.auth_provider_set(
                    distributed.HMACAuth("corpus-secret")
                ),
            )
        if name == "tls":
            return (
                inprocess_worker_factory(**server),
                distributed.auth_provider_set(
                    distributed.TLSAuth(cafile=str(CERTS / "ca.pem"))
                ),
            )
        assert name == "mtls"
        return (
            inprocess_worker_factory(**server, tls_ca=str(CERTS / "ca.pem")),
            distributed.auth_provider_set(
                distributed.TLSAuth(
                    certfile=str(CERTS / "client.pem"),
                    keyfile=str(CERTS / "client.key"),
                    cafile=str(CERTS / "ca.pem"),
                )
            ),
        )

    @pytest.mark.parametrize("mode", ["plaintext", "hmac", "tls", "mtls"])
    def test_corpus_bit_identical_under_every_transport(
        self, mode, inprocess_worker_factory
    ):
        import math

        import numpy as np
        import test_conformance as conformance

        worker, coordinator = self._mode(mode, inprocess_worker_factory)
        with coordinator:
            for scenario in sorted(conformance.SCENARIOS):
                compiled, worlds, rows = conformance.scenario_fixture_data(
                    scenario
                )
                n = len(compiled.variables())
                world_matrix = np.asarray(worlds, dtype=np.bool_).reshape(
                    len(worlds), n
                )
                row_matrix = np.asarray(rows, dtype=np.float64).reshape(
                    len(rows), n
                )
                evaluated = distributed.evaluate_batch_distributed(
                    compiled, world_matrix, hosts=(worker.address,)
                )
                probabilities = distributed.probability_batch_distributed(
                    compiled, row_matrix, hosts=(worker.address,)
                )
                oracle = [bool(compiled.evaluate(w)) for w in worlds]
                assert [bool(v) for v in evaluated.tolist()] == oracle, (
                    f"{mode}/{scenario}: Boolean drift over the wire"
                )
                local = [float(v) for v in compiled.probability_batch(row_matrix)]
                assert probabilities.tolist() == local, (
                    f"{mode}/{scenario}: probabilities not bit-identical "
                    "to the local numpy tier"
                )
                for got, want in zip(
                    probabilities.tolist(),
                    (compiled.probability(row) for row in rows),
                ):
                    assert math.isclose(got, want, abs_tol=1e-12), (
                        f"{mode}/{scenario}: drift from the scalar oracle"
                    )
