"""Figure 1 scenario: probabilistic XML with contributor-trust events.

Rebuilds the paper's exact Figure 1 document (the Chelsea Manning Wikidata
entry), evaluates tree-pattern queries on it — showing how the eJane event
correlates the "surname" and "place of birth" facts — then conditions the
document's uncertainty on a (simulated) crowd check of Jane's
trustworthiness.

Run:  python examples/wikidata_trust.py
"""

from repro.conditioning import ConditionedInstance, SimulatedCrowd, run_crowd_session
from repro.instances import PCInstance, fact, pcc_from_pc
from repro.events import var
from repro.prxml import TreePattern, path_pattern, pattern, query_probability
from repro.queries import atom, cq
from repro.workloads import figure1_document


def pattern_queries() -> None:
    print("=" * 70)
    print("Figure 1 — the Chelsea Manning PrXML document")
    print("=" * 70)
    doc = figure1_document()
    print(doc)

    queries = {
        "occupation = musician (ind, p=0.4)": path_pattern("occupation", "musician"),
        "given name = Chelsea (mux, p=0.4)": path_pattern("given name", "Chelsea"),
        "given name = Bradley (mux, p=0.6)": path_pattern("given name", "Bradley"),
        "surname = Manning (eJane, p=0.9)": path_pattern("surname", "Manning"),
    }
    for description, tree_pattern in queries.items():
        print(f"  P[{description:<38}] = {query_probability(doc, tree_pattern):.3f}")

    # Correlation through eJane: both facts or neither — never 0.81.
    both = pattern("Q298423")
    both.add_child(pattern("surname"))
    both.add_child(pattern("place of birth"))
    p_both = query_probability(doc, TreePattern(both))
    print(f"\n  P[surname AND place of birth] = {p_both:.3f}"
          f"  (correlated through eJane: 0.9, not 0.9 x 0.9 = 0.81)")


def crowd_conditioning() -> None:
    print()
    print("=" * 70)
    print("Conditioning on a crowd check of contributor trust")
    print("=" * 70)
    # Relational rendering of the eJane-guarded facts, plus an independent one.
    pc = PCInstance()
    pc.add_event("eJane", 0.9)
    pc.add_event("eBot", 0.4)
    pc.add(fact("Statement", "Q298423", "surname", "Manning"), var("eJane"))
    pc.add(fact("Statement", "Q298423", "birthplace", "Crescent"), var("eJane"))
    pc.add(fact("Statement", "Q298423", "occupation", "musician"), var("eBot"))
    pcc = pcc_from_pc(pc)

    query = cq(atom("Statement", "Q298423", "surname", "Manning"))
    prior = ConditionedInstance(pcc).query_probability(query)
    print(f"  prior P[surname statement correct] = {prior:.3f}")

    crowd = SimulatedCrowd({"eJane": False, "eBot": True}, error_rate=0.0)
    session = run_crowd_session(pcc, query, crowd, budget=2, policy="greedy")
    for step in session.steps:
        print(f"  asked {step.question!r}: answer={step.answer} "
              f"(entropy {step.entropy_before:.3f} -> {step.entropy_after:.3f})")
    print(f"  posterior P[surname statement correct] = {session.final_probability:.3f}")
    print("  (the greedy policy asks about eJane first: it determines the query)")


if __name__ == "__main__":
    pattern_queries()
    crowd_conditioning()
    print("\nWikidata trust example complete.")
