"""repro — Structurally Tractable Uncertain Data.

A complete implementation of the systems described in Antoine Amarilli's
SIGMOD 2015 PhD-symposium paper "Structurally Tractable Uncertain Data":

- uncertain relational data (TID, c-/pc-/pcc-instances) with exact query
  evaluation that is linear-time on bounded-treewidth instances (Theorems
  1–2), via deterministic decomposition automata, lineage circuits, and
  junction-tree message passing;
- probabilistic XML with local (ind/mux) and scoped global (cie) uncertainty;
- semiring provenance through provenance circuits;
- order-incomplete data (po-relations) with a bag-semantics positive
  relational algebra;
- conditioning on observations and crowd question selection;
- probabilistic rules via the trigger-level probabilistic chase;
- baselines: possible-world enumeration, Monte Carlo, Karp–Luby, Shannon
  expansion, Dalvi–Suciu safe plans.

Quickstart::

    from repro import TIDInstance, fact, cq, atom, variables, tid_probability
    x, y = variables("x", "y")
    q = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = TIDInstance({fact("R", 1): 0.6, fact("S", 1, 2): 0.5, fact("T", 2): 0.8})
    print(tid_probability(q, tid))   # exact, via the treewidth-based engine

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.baselines import (
    karp_luby_probability,
    monte_carlo_probability,
    pc_probability_enumerate,
    pcc_probability_enumerate,
    tid_certain,
    tid_possible,
    tid_probability_enumerate,
)
from repro.circuits import (
    Circuit,
    CompiledCircuit,
    available_engines,
    compile_circuit,
    probability_dd,
    set_default_engine,
    wmc_enumerate,
    wmc_message_passing,
    wmc_shannon,
)
from repro.circuits import probability as circuit_probability
from repro.conditioning import ConditionedInstance, SimulatedCrowd, run_crowd_session
from repro.core import (
    BipartiteAutomaton,
    CQAutomaton,
    DecompositionAutomaton,
    Lineage,
    ParityAutomaton,
    STConnectivityAutomaton,
    build_lineage,
    build_provenance_circuit,
    pc_probability,
    pcc_probability,
    tid_probability,
)
from repro.events import EventSpace, Formula, var
from repro.instances import (
    AbstractInstance,
    CInstance,
    ColumnarInstance,
    Fact,
    Instance,
    PCCInstance,
    PCInstance,
    TIDInstance,
    fact,
    instance_backend,
    instance_backend_set,
    make_instance,
    pc_from_tid,
    pcc_from_pc,
    pcc_from_tid,
    set_instance_backend,
)
from repro.order import LabeledPoset, antichain, chain
from repro.prxml import PrXMLDocument, TreePattern, path_pattern, query_probability
from repro.queries import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    atom,
    cq,
    is_safe,
    safe_plan_probability,
    ucq,
    variables,
)
from repro.rules import ProbabilisticRule, chase, probabilistic_chase, rule
from repro.semirings import Semiring, circuit_provenance, reference_provenance
from repro.treewidth import TreeDecomposition, decompose, exact_treewidth

__version__ = "1.0.0"

__all__ = [
    "AbstractInstance",
    "BipartiteAutomaton",
    "CInstance",
    "CQAutomaton",
    "ColumnarInstance",
    "Circuit",
    "CompiledCircuit",
    "ConditionedInstance",
    "ConjunctiveQuery",
    "DecompositionAutomaton",
    "EventSpace",
    "Fact",
    "Formula",
    "Instance",
    "LabeledPoset",
    "Lineage",
    "PCCInstance",
    "PCInstance",
    "ParityAutomaton",
    "PrXMLDocument",
    "ProbabilisticRule",
    "STConnectivityAutomaton",
    "Semiring",
    "SimulatedCrowd",
    "TIDInstance",
    "TreeDecomposition",
    "TreePattern",
    "UnionOfConjunctiveQueries",
    "antichain",
    "atom",
    "available_engines",
    "build_lineage",
    "build_provenance_circuit",
    "chain",
    "chase",
    "circuit_probability",
    "circuit_provenance",
    "compile_circuit",
    "cq",
    "decompose",
    "exact_treewidth",
    "fact",
    "instance_backend",
    "instance_backend_set",
    "is_safe",
    "karp_luby_probability",
    "make_instance",
    "monte_carlo_probability",
    "path_pattern",
    "set_instance_backend",
    "pc_from_tid",
    "pc_probability",
    "pc_probability_enumerate",
    "pcc_from_pc",
    "pcc_from_tid",
    "pcc_probability",
    "pcc_probability_enumerate",
    "probabilistic_chase",
    "probability_dd",
    "query_probability",
    "reference_provenance",
    "rule",
    "run_crowd_session",
    "safe_plan_probability",
    "set_default_engine",
    "tid_certain",
    "tid_possible",
    "tid_probability",
    "tid_probability_enumerate",
    "ucq",
    "var",
    "variables",
    "wmc_enumerate",
    "wmc_message_passing",
    "wmc_shannon",
]
