"""Tests for non-Boolean answers, possibility/certainty, order probabilities."""

import math
import random

import pytest

from repro.baselines import tid_certain, tid_possible
from repro.core import (
    BipartiteAutomaton,
    answer_lineages,
    answer_probabilities,
    candidate_answers,
    certain,
    possible,
    substitute_answer,
    tid_probability,
)
from repro.instances import TIDInstance, fact
from repro.order import (
    antichain,
    chain,
    count_linear_extensions,
    count_realizations,
    most_probable_worlds,
    pair_order_probability,
    union,
    world_probability,
)
from repro.queries import atom, cq, variables
from repro.util import ReproError

X, Y = variables("x", "y")
Q_RS = cq(atom("R", X), atom("S", X, Y))


def flights_tid() -> TIDInstance:
    return TIDInstance(
        {
            fact("R", "paris"): 0.9,
            fact("S", "paris", "rome"): 0.5,
            fact("S", "paris", "oslo"): 0.25,
            fact("R", "berlin"): 0.1,
            fact("S", "berlin", "rome"): 1.0,
        }
    )


class TestAnswers:
    def test_candidates_cover_all_homomorphisms(self):
        tid = flights_tid()
        candidates = candidate_answers(Q_RS, (X, Y), tid.instance)
        assert ("paris", "rome") in candidates
        assert ("berlin", "rome") in candidates
        assert len(candidates) == 3

    def test_substitution_produces_boolean_query(self):
        q = substitute_answer(Q_RS, (X, Y), ("paris", "rome"))
        assert q.variables() == frozenset()

    def test_answer_probabilities_match_boolean_engine(self):
        tid = flights_tid()
        for answer in answer_probabilities(Q_RS, (X, Y), tid):
            boolean_query = substitute_answer(Q_RS, (X, Y), answer.values)
            assert math.isclose(
                answer.probability, tid_probability(boolean_query, tid), abs_tol=1e-12
            )

    def test_ranking_order(self):
        tid = flights_tid()
        ranked = answer_probabilities(Q_RS, (X, Y), tid)
        probabilities = [a.probability for a in ranked]
        assert probabilities == sorted(probabilities, reverse=True)
        assert ranked[0].values == ("paris", "rome")  # 0.45 beats the rest

    def test_possible_and_certain_flags(self):
        tid = TIDInstance(
            {fact("R", 1): 1.0, fact("S", 1, 2): 1.0, fact("S", 1, 3): 0.0}
        )
        ranked = {a.values: a for a in answer_probabilities(Q_RS, (X, Y), tid)}
        assert ranked[(1, 2)].certain
        assert not ranked[(1, 3)].possible

    def test_projection_to_single_variable(self):
        tid = flights_tid()
        ranked = answer_probabilities(Q_RS, (X,), tid)
        values = {a.values for a in ranked}
        assert values == {("paris",), ("berlin",)}
        by_city = {a.values[0]: a.probability for a in ranked}
        # P(paris answer) = 0.9 * (1 - 0.5*0.75... ) computed by engine:
        expected = 0.9 * (1.0 - 0.5 * 0.75)
        assert math.isclose(by_city["paris"], expected)

    def test_answer_lineages_are_reusable(self):
        tid = flights_tid()
        lineages = answer_lineages(Q_RS, (X, Y), tid.instance)
        space = tid.event_space()
        for values, lineage in lineages.items():
            from repro.circuits import probability_dd

            boolean_query = substitute_answer(Q_RS, (X, Y), values)
            assert math.isclose(
                probability_dd(lineage.circuit, space),
                tid_probability(boolean_query, tid),
                abs_tol=1e-12,
            )

    def test_free_variable_must_occur(self):
        tid = flights_tid()
        ghost = variables("ghost")[0]
        with pytest.raises(ReproError):
            answer_probabilities(Q_RS, (ghost,), tid)


class TestPossibilityCertainty:
    @pytest.mark.parametrize("seed", range(8))
    def test_monotone_fast_path_matches_enumeration(self, seed):
        rng = random.Random(seed)
        tid = TIDInstance()
        n = rng.randint(2, 4)
        for i in range(n):
            tid.add(fact("R", i), rng.choice([0.0, 0.5, 1.0]))
            for j in range(rng.randint(0, 2)):
                tid.add(fact("S", i, j), rng.choice([0.0, 0.5, 1.0]))
        assert possible(Q_RS, tid) == tid_possible(Q_RS, tid)
        assert certain(Q_RS, tid) == tid_certain(Q_RS, tid)

    def test_non_monotone_automaton(self):
        tid = TIDInstance({fact("E", 1, 2): 0.5, fact("E", 2, 3): 1.0})
        auto = BipartiteAutomaton()
        assert possible(auto, tid)   # any forest world is bipartite
        assert certain(auto, tid)

    def test_certain_requires_probability_one(self):
        tid = TIDInstance({fact("R", 1): 0.999, fact("S", 1, 2): 1.0})
        assert possible(Q_RS, tid)
        assert not certain(Q_RS, tid)


class TestOrderProbability:
    def test_total_order_has_probability_one(self):
        poset = chain(["a", "b", "c"])
        assert world_probability(poset, ("a", "b", "c")) == 1.0
        assert world_probability(poset, ("b", "a", "c")) == 0.0

    def test_uniform_over_antichain(self):
        poset = antichain(["a", "b"])
        assert math.isclose(world_probability(poset, ("a", "b")), 0.5)

    def test_duplicate_labels_aggregate(self):
        poset = antichain(["x", "x"])
        assert world_probability(poset, ("x", "x")) == 1.0

    def test_count_realizations_sums_to_total(self):
        poset = union(chain(["a", "b"], "l"), chain(["c"], "r"))
        total = count_linear_extensions(poset)
        from repro.order import iter_linear_extensions, extension_labels

        distinct = {extension_labels(poset, e) for e in iter_linear_extensions(poset)}
        assert sum(count_realizations(poset, w) for w in distinct) == total

    def test_most_probable_worlds(self):
        poset = union(chain(["x", "x"], "l"), chain(["y"], "r"))
        ranked = most_probable_worlds(poset, k=2)
        assert ranked[0][1] >= ranked[1][1]
        assert math.isclose(sum(p for _w, p in most_probable_worlds(poset, k=10)), 1.0)

    def test_pair_order_probability(self):
        poset = union(chain(["a"], "l"), chain(["b"], "r"))
        assert math.isclose(pair_order_probability(poset, "a", "b"), 0.5)
        ordered = chain(["a", "b"])
        assert pair_order_probability(ordered, "a", "b") == 1.0
