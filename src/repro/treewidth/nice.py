"""Nice tree decompositions: the tree encodings the lineage engine runs on.

A *nice* decomposition refines a rooted tree decomposition into elementary
typed nodes — leaf, introduce-vertex, forget-vertex and join — the standard
form on which bottom-up automata (Courcelle-style) are defined. We extend the
form with *read* nodes carrying payload items (facts): a read node is placed
at a bag containing all the vertices the item mentions, and it is where the
automaton consumes the item's uncertain presence. This is the tree encoding of
an uncertain instance from the paper's Section 2.2.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.treewidth.decomposition import TreeDecomposition, Vertex
from repro.util import check

LEAF = "leaf"
INTRODUCE = "introduce"
FORGET = "forget"
JOIN = "join"
READ = "read"


@dataclass(frozen=True)
class NiceNode:
    """One node of a nice decomposition.

    ``bag`` is the bag *after* the node's operation. ``vertex`` is set for
    introduce/forget nodes, ``item`` for read nodes.
    """

    kind: str
    bag: frozenset
    children: tuple["NiceNode", ...] = ()
    vertex: Vertex | None = None
    item: Hashable | None = None

    def iter_postorder(self):
        """Yield all nodes of the subtree, children before parents."""
        stack: list[tuple[NiceNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))

    def size(self) -> int:
        """Return the number of nodes in the subtree."""
        return sum(1 for _ in self.iter_postorder())

    def max_bag(self) -> int:
        """Return the largest bag size in the subtree."""
        return max(len(node.bag) for node in self.iter_postorder())


@dataclass
class NiceTree:
    """A nice decomposition: the root node (whose bag is always empty)."""

    root: NiceNode
    items: tuple[Hashable, ...] = field(default_factory=tuple)

    def iter_postorder(self):
        """Yield all nodes, children before parents."""
        return self.root.iter_postorder()

    def width(self) -> int:
        """Return the width of the nice decomposition."""
        return self.root.max_bag() - 1

    def count(self, kind: str) -> int:
        """Return the number of nodes of the given kind."""
        return sum(1 for node in self.iter_postorder() if node.kind == kind)


def _chain_to_bag(node: NiceNode, target: frozenset) -> NiceNode:
    """Forget then introduce vertices so the chain ends with bag ``target``."""
    current = node
    for vertex in sorted(node.bag - target, key=str):
        current = NiceNode(FORGET, current.bag - {vertex}, (current,), vertex=vertex)
    for vertex in sorted(target - node.bag, key=str):
        current = NiceNode(INTRODUCE, current.bag | {vertex}, (current,), vertex=vertex)
    return current


def _leaf_chain(target: frozenset) -> NiceNode:
    """Build a leaf followed by introductions of every vertex of ``target``."""
    current = NiceNode(LEAF, frozenset())
    return _chain_to_bag(current, target)


def build_nice_tree(
    decomposition: TreeDecomposition,
    items_at: Mapping[int, Iterable[Hashable]] | None = None,
    root: int | None = None,
) -> NiceTree:
    """Convert ``decomposition`` into a nice tree with read nodes for items.

    ``items_at`` maps original bag ids to the payload items (e.g. facts) to be
    read at that bag; each item appears exactly once in the result. The
    returned tree's root has an empty bag (all vertices are forgotten at the
    top), so automaton acceptance is decided on a single final state.
    """
    items_at = items_at or {}
    root_id, children = decomposition.rooted_children(root)

    def build(node_id: int) -> NiceNode:
        bag = decomposition.bags[node_id]
        child_ids = children[node_id]
        if not child_ids:
            current = _leaf_chain(bag)
        else:
            branches = [_chain_to_bag(build(cid), bag) for cid in child_ids]
            current = branches[0]
            for branch in branches[1:]:
                current = NiceNode(JOIN, bag, (current, branch))
        for item in items_at.get(node_id, ()):  # read payload items at this bag
            current = NiceNode(READ, bag, (current,), item=item)
        return current

    top = _chain_to_bag(build(root_id), frozenset())
    all_items = tuple(item for items in items_at.values() for item in items)
    return NiceTree(top, all_items)


def check_nice_tree(tree: NiceTree) -> None:
    """Validate structural invariants of a nice tree (used by tests)."""
    for node in tree.iter_postorder():
        if node.kind == LEAF:
            check(node.bag == frozenset() and not node.children, "bad leaf node")
        elif node.kind == INTRODUCE:
            (child,) = node.children
            check(node.vertex not in child.bag, "introduced vertex already present")
            check(node.bag == child.bag | {node.vertex}, "introduce bag mismatch")
        elif node.kind == FORGET:
            (child,) = node.children
            check(node.vertex in child.bag, "forgotten vertex absent")
            check(node.bag == child.bag - {node.vertex}, "forget bag mismatch")
        elif node.kind == JOIN:
            left, right = node.children
            check(node.bag == left.bag == right.bag, "join bags differ")
        elif node.kind == READ:
            (child,) = node.children
            check(node.bag == child.bag, "read must not change the bag")
        else:
            check(False, f"unknown node kind {node.kind!r}")
    check(tree.root.bag == frozenset(), "root bag must be empty")
