"""E11 — ablation: which tree-decomposition heuristic to use?

The whole pipeline's cost is exponential in the decomposition width actually
achieved, so the heuristic is a first-order design choice. We compare our
min-degree and min-fill against networkx's implementations on the workloads
the other experiments use: achieved width (vs exact optimum on small graphs)
and downstream message-passing WMC time on the same circuit.

Run the table:  python benchmarks/bench_ablation_heuristics.py
Benchmarks:     pytest benchmarks/bench_ablation_heuristics.py --benchmark-only
"""

import time

import networkx as nx
import pytest

from repro.circuits import moral_graph, wmc_message_passing
from repro.queries import atom, cq, variables
from repro.treewidth import HEURISTICS, decompose, exact_treewidth
from repro.workloads import cycle_tid, partial_ktree_tid, rst_chain_tid

from repro.instances import fact as _fact

X, Y = variables("x", "y")
Q_RST = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
Q_CYCLE = cq(atom("R", X), atom("E", X, Y), atom("T", Y))


def _r_fact(i):
    return _fact("R", i)


def _t_fact(i):
    return _fact("T", i)


def workload_graphs() -> dict[str, nx.Graph]:
    return {
        "chain": rst_chain_tid(20, seed=0).instance.gaifman_graph(),
        "cycle": cycle_tid(20, seed=0).instance.gaifman_graph(),
        "2-tree": partial_ktree_tid(20, 2, seed=0).tid.instance.gaifman_graph(),
        "3-tree": partial_ktree_tid(20, 3, seed=0).tid.instance.gaifman_graph(),
        "grid3xn": nx.grid_2d_graph(3, 7),
    }


@pytest.mark.parametrize("heuristic", HEURISTICS)
def test_heuristic_on_ktree(benchmark, heuristic):
    graph = partial_ktree_tid(30, 2, seed=0).tid.instance.gaifman_graph()
    td = benchmark(decompose, graph, heuristic)
    td.validate(graph)
    assert td.width() <= 6  # near the certified width 2


@pytest.mark.parametrize("heuristic", ["min_degree", "min_fill"])
def test_downstream_wmc_time(benchmark, heuristic):
    # Downstream WMC runs on the monotone lineage (the circuit the Theorem 2
    # path actually evaluates); the deterministic profile circuit needs no
    # WMC at all — it is evaluated directly.
    from repro.core import build_provenance_circuit

    tid = rst_chain_tid(12, seed=0)
    lineage = build_provenance_circuit(tid.instance, Q_RST)
    circuit = lineage.circuit.binarized()
    decomposition = decompose(moral_graph(circuit), heuristic)
    p = benchmark(
        wmc_message_passing, circuit, tid.event_space(), decomposition
    )
    assert 0.0 <= p <= 1.0


def main() -> None:
    print("E11 — decomposition-heuristic ablation")
    print("\nachieved width per heuristic (exact optimum where computable):")
    header = f"{'graph':<10} {'exact':>6}"
    for heuristic in HEURISTICS:
        header += f" {heuristic:>20}"
    print(header)
    for name, graph in workload_graphs().items():
        exact = exact_treewidth(graph) if graph.number_of_nodes() <= 18 else None
        row = f"{name:<10} {str(exact if exact is not None else '—'):>6}"
        for heuristic in HEURISTICS:
            start = time.perf_counter()
            width = decompose(graph, heuristic).width()
            elapsed = time.perf_counter() - start
            row += f" {width:>9} ({elapsed:.3f}s)"
        print(row)

    print("\ndownstream message-passing WMC on the monotone Q_RST lineage"
          " (cycle n=14):")
    from repro.core import build_provenance_circuit
    from repro.util import ReproError

    tid = cycle_tid(14, seed=0)
    for i in range(14):
        tid.add(_r_fact(i), 0.5)
        tid.add(_t_fact(i), 0.5)
    lineage = build_provenance_circuit(tid.instance, Q_CYCLE)
    circuit = lineage.circuit.binarized()
    graph = moral_graph(circuit)
    print(f"{'heuristic':<22} {'circuit width':>14} {'WMC time (s)':>13}")
    for heuristic in HEURISTICS:
        decomposition = decompose(graph, heuristic)
        start = time.perf_counter()
        try:
            wmc_message_passing(
                circuit, tid.event_space(), decomposition, max_width=18
            )
            elapsed = f"{time.perf_counter() - start:>13.3f}"
        except ReproError:
            elapsed = f"{'width wall':>13}"
        print(f"{heuristic:<22} {decomposition.width():>14} {elapsed}")

    print("\ndeterministic profile circuits need no WMC (direct evaluation);")
    print("shape check: min-fill widths <= min-degree widths;"
          " downstream WMC time tracks 2^width.")


if __name__ == "__main__":
    main()
