"""Tree decompositions: the structural backbone of the paper's tractability.

A tree decomposition of a graph G is a tree whose nodes carry *bags* of
vertices such that (1) every vertex appears in a bag, (2) every edge is
contained in some bag, and (3) the bags containing any fixed vertex form a
connected subtree. Its width is the largest bag size minus one; the treewidth
of G is the minimum width over its decompositions (Robertson–Seymour).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

import networkx as nx

from repro.util import ReproError, check

Vertex = Hashable


class TreeDecomposition:
    """An explicit tree decomposition: bags indexed by node id, plus a tree.

    >>> td = TreeDecomposition({0: {"a", "b"}, 1: {"b", "c"}}, [(0, 1)])
    >>> td.width()
    1
    """

    def __init__(self, bags: Mapping[int, Iterable[Vertex]], edges: Iterable[tuple[int, int]]):
        self.bags: dict[int, frozenset[Vertex]] = {
            node: frozenset(bag) for node, bag in bags.items()
        }
        check(len(self.bags) > 0, "a tree decomposition needs at least one bag")
        self.tree = nx.Graph()
        self.tree.add_nodes_from(self.bags)
        for a, b in edges:
            check(a in self.bags and b in self.bags, f"edge ({a},{b}) uses unknown bag ids")
            self.tree.add_edge(a, b)
        check(nx.is_tree(self.tree), "the bag graph must be a tree")

    # ------------------------------------------------------------------ #

    def width(self) -> int:
        """Return the width: max bag size minus one."""
        return max(len(bag) for bag in self.bags.values()) - 1

    def vertices(self) -> frozenset[Vertex]:
        """Return all vertices appearing in some bag."""
        return frozenset().union(*self.bags.values())

    def validate(self, graph: nx.Graph) -> None:
        """Check the three decomposition axioms against ``graph``.

        Raises :class:`ReproError` with a description of the first violation.
        """
        covered = self.vertices()
        missing = set(graph.nodes) - set(covered)
        if missing:
            raise ReproError(f"vertices not covered by any bag: {sorted(map(str, missing))}")
        for u, v in graph.edges:
            if not any(u in bag and v in bag for bag in self.bags.values()):
                raise ReproError(f"edge ({u!r},{v!r}) not covered by any bag")
        for vertex in covered:
            holding = [node for node, bag in self.bags.items() if vertex in bag]
            if not nx.is_connected(self.tree.subgraph(holding)):
                raise ReproError(f"bags containing {vertex!r} are not connected in the tree")

    def is_valid(self, graph: nx.Graph) -> bool:
        """Return whether all three decomposition axioms hold for ``graph``."""
        try:
            self.validate(graph)
        except ReproError:
            return False
        return True

    # ------------------------------------------------------------------ #

    def rooted_children(self, root: int | None = None) -> tuple[int, dict[int, list[int]]]:
        """Return ``(root, children)`` for a rooted view of the tree."""
        root = root if root is not None else min(self.bags)
        check(root in self.bags, f"unknown bag id {root}")
        children: dict[int, list[int]] = {node: [] for node in self.bags}
        for parent, child in nx.bfs_edges(self.tree, root):
            children[parent].append(child)
        return root, children

    def bag_containing(self, vertices: Iterable[Vertex]) -> int | None:
        """Return a bag node containing all ``vertices``, or ``None``.

        By the clique-containment lemma, any clique of the graph is contained
        in some bag of any valid decomposition; this is how factors are
        assigned to bags in message passing.
        """
        needed = frozenset(vertices)
        for node, bag in self.bags.items():
            if needed <= bag:
                return node
        return None

    def relabeled(self) -> "TreeDecomposition":
        """Return a copy with bag ids renumbered 0..n-1 (BFS order)."""
        order = list(nx.bfs_tree(self.tree, min(self.bags)))
        mapping = {old: new for new, old in enumerate(order)}
        return TreeDecomposition(
            {mapping[node]: bag for node, bag in self.bags.items()},
            [(mapping[a], mapping[b]) for a, b in self.tree.edges],
        )

    def __repr__(self) -> str:
        return f"TreeDecomposition(bags={len(self.bags)}, width={self.width()})"


def from_elimination_order(graph: nx.Graph, order: list[Vertex]) -> TreeDecomposition:
    """Build a tree decomposition from a vertex elimination order.

    Standard fill-in construction: eliminating ``v`` creates the bag
    ``{v} ∪ N(v)`` in the current (progressively filled) graph and attaches it
    to the bag of the next-eliminated neighbour. The width equals the largest
    elimination neighbourhood.
    """
    check(set(order) == set(graph.nodes), "order must enumerate exactly the graph vertices")
    if not order:
        return TreeDecomposition({0: []}, [])
    work = nx.Graph(graph)
    position = {v: i for i, v in enumerate(order)}
    bags: dict[int, frozenset[Vertex]] = {}
    bag_of_vertex: dict[Vertex, int] = {}
    edges: list[tuple[int, int]] = []
    for index, vertex in enumerate(order):
        neighbours = set(work.neighbors(vertex))
        bags[index] = frozenset(neighbours | {vertex})
        bag_of_vertex[vertex] = index
        for a in neighbours:
            for b in neighbours:
                if a != b:
                    work.add_edge(a, b)
        work.remove_node(vertex)
    for index, vertex in enumerate(order):
        later = [u for u in bags[index] if position[u] > position[vertex]]
        if later:
            successor = min(later, key=lambda u: position[u])
            edges.append((index, bag_of_vertex[successor]))
    # A disconnected graph yields a forest; chain component representatives —
    # an edge between arbitrary bags never violates the decomposition axioms.
    forest = nx.Graph()
    forest.add_nodes_from(bags)
    forest.add_edges_from(edges)
    roots = sorted(min(component) for component in nx.connected_components(forest))
    for previous, current in zip(roots, roots[1:]):
        edges.append((previous, current))
    return TreeDecomposition(bags, edges)
