"""The core lineage engine: Theorems 1 and 2 executable (S6)."""

from repro.core.answers import (
    RankedAnswer,
    answer_lineages,
    answer_probabilities,
    candidate_answers,
    substitute_answer,
)
from repro.core.automaton import (
    DecompositionAutomaton,
    NegationAutomaton,
    ProductAutomaton,
    conjunction,
    disjunction,
    negation,
)
from repro.core.cq_automaton import CQAutomaton, automaton_for
from repro.core.engine import (
    Lineage,
    assign_facts_to_bags,
    build_lineage,
    build_provenance_circuit,
    combine_with_annotations,
    compile_query_plan,
    instance_decomposition,
    pc_probability,
    pcc_probability,
    tid_probability,
)
from repro.core.graph_automata import (
    AllDegreesEvenAutomaton,
    BipartiteAutomaton,
    EdgeConnectedAutomaton,
    ParityAutomaton,
    STConnectivityAutomaton,
)
from repro.core.hybrid import (
    HybridReduction,
    hybrid_stconn,
    monte_carlo_stconn,
    reduce_for_stconn,
    series_factor_terminals,
)
from repro.core.possibility import certain, possible

__all__ = [
    "AllDegreesEvenAutomaton",
    "BipartiteAutomaton",
    "EdgeConnectedAutomaton",
    "CQAutomaton",
    "DecompositionAutomaton",
    "HybridReduction",
    "Lineage",
    "NegationAutomaton",
    "ParityAutomaton",
    "ProductAutomaton",
    "RankedAnswer",
    "STConnectivityAutomaton",
    "answer_lineages",
    "answer_probabilities",
    "assign_facts_to_bags",
    "automaton_for",
    "build_lineage",
    "build_provenance_circuit",
    "candidate_answers",
    "certain",
    "combine_with_annotations",
    "compile_query_plan",
    "conjunction",
    "disjunction",
    "hybrid_stconn",
    "instance_decomposition",
    "monte_carlo_stconn",
    "negation",
    "pc_probability",
    "pcc_probability",
    "possible",
    "reduce_for_stconn",
    "series_factor_terminals",
    "substitute_answer",
    "tid_probability",
]
