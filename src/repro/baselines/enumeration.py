"""Naive possible-world enumeration: the exponential ground-truth oracle.

Every probabilistic result of the core engine is checked against these
functions in the tests; the benchmarks use them to exhibit the exponential
wall that the paper's structural approach avoids.
"""

from __future__ import annotations

from repro.instances.base import Instance
from repro.instances.cinstance import PCInstance
from repro.instances.pcc import PCCInstance
from repro.instances.tid import TIDInstance


def _holds(query, world: Instance) -> bool:
    if hasattr(query, "holds_in"):
        return query.holds_in(world)
    # Decomposition automata are evaluated by running them on a trivial
    # decomposition of the world.
    from repro.core.engine import build_lineage

    lineage = build_lineage(world, query)
    valuation = {f.variable_name: True for f in world.facts()}
    return lineage.compiled().evaluate(valuation)


def tid_probability_enumerate(query, tid: TIDInstance) -> float:
    """Exact query probability on a TID by enumerating all worlds."""
    total = 0.0
    for world, weight in tid.possible_worlds():
        if weight > 0.0 and _holds(query, world):
            total += weight
    return total


def pc_probability_enumerate(query, pc: PCInstance) -> float:
    """Exact query probability on a pc-instance by enumerating valuations."""
    total = 0.0
    for world, weight in pc.possible_worlds():
        if weight > 0.0 and _holds(query, world):
            total += weight
    return total


def pcc_probability_enumerate(query, pcc: PCCInstance) -> float:
    """Exact query probability on a pcc-instance by enumerating valuations."""
    total = 0.0
    for world, weight in pcc.possible_worlds():
        if weight > 0.0 and _holds(query, world):
            total += weight
    return total


def tid_possible(query, tid: TIDInstance) -> bool:
    """Possibility: does the query hold in some world of positive probability?"""
    return any(
        weight > 0.0 and _holds(query, world) for world, weight in tid.possible_worlds()
    )


def tid_certain(query, tid: TIDInstance) -> bool:
    """Certainty: does the query hold in every world of positive probability?"""
    return all(
        _holds(query, world) for world, weight in tid.possible_worlds() if weight > 0.0
    )
