"""E6 — the #P-hardness contrast: query-based vs data-based tractability.

The paper's running example ``∃xy R(x)S(x,y)T(y)`` is #P-hard on arbitrary
TIDs (Dalvi–Suciu: it is non-hierarchical, so no safe plan exists), yet
Theorem 1 makes it linear on bounded-treewidth instances. We measure the
whole landscape:

- the safe-plan evaluator refuses Q_RST (unsafe) but handles the
  hierarchical ``∃xy R(x)S(x,y)``;
- on *tree-like* instances the lineage engine is exact and fast;
- on *complete bipartite* instances (treewidth grows) the engine's profiles
  blow up — the data-based frontier — while Shannon expansion and Karp–Luby
  sampling remain the fallbacks, matching the paper's "approximate via
  sampling" remark.

Run the table:  python benchmarks/bench_dichotomy.py
Benchmarks:     pytest benchmarks/bench_dichotomy.py --benchmark-only
"""

import math
import time

import pytest

from repro.baselines import karp_luby_probability, tid_probability_enumerate
from repro.core import build_lineage, tid_probability
from repro.circuits import wmc_shannon
from repro.queries import (
    UnsafeQueryError,
    atom,
    cq,
    is_safe,
    safe_plan_probability,
    variables,
)
from repro.workloads import rst_bipartite_tid, rst_chain_tid

X, Y = variables("x", "y")
Q_RST = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
Q_HIER = cq(atom("R", X), atom("S", X, Y))


def test_safe_plan_on_hierarchical(benchmark):
    tid = rst_chain_tid(30, seed=0)
    assert is_safe(Q_HIER)
    p = benchmark(safe_plan_probability, Q_HIER, tid)
    assert math.isclose(p, tid_probability(Q_HIER, tid), abs_tol=1e-9)


def test_safe_plan_refuses_rst(benchmark):
    tid = rst_chain_tid(10, seed=0)

    def attempt():
        try:
            safe_plan_probability(Q_RST, tid)
            return "plan"
        except UnsafeQueryError:
            return "unsafe"

    assert benchmark(attempt) == "unsafe"


def test_engine_on_tree_like(benchmark):
    tid = rst_chain_tid(40, seed=0)
    p = benchmark(tid_probability, Q_RST, tid)
    assert 0.0 <= p <= 1.0


def test_karp_luby_on_dense(benchmark):
    tid = rst_bipartite_tid(6, 6, seed=0)
    p = benchmark(karp_luby_probability, Q_RST, tid, 2000, 0)
    assert 0.0 <= p <= 1.0


@pytest.mark.parametrize("side", [2, 3])
def test_engine_matches_oracle_on_small_bipartite(benchmark, side):
    tid = rst_bipartite_tid(side, side, seed=0)
    p = benchmark(tid_probability, Q_RST, tid)
    assert math.isclose(p, tid_probability_enumerate(Q_RST, tid), abs_tol=1e-9)


def main() -> None:
    print("E6 — dichotomy landscape for Q_RST = ∃xy R(x)S(x,y)T(y)")
    print(f"\nquery-level: is_safe(Q_RST) = {is_safe(Q_RST)}"
          f" | is_safe(R-S star) = {is_safe(Q_HIER)}")

    print("\ntree-like data (width ≤ 2): engine is exact and fast")
    print(f"{'n facts':>8} {'engine (s)':>11} {'P':>8}")
    for n in [25, 50, 100, 200]:
        tid = rst_chain_tid(n, seed=0)
        start = time.perf_counter()
        p = tid_probability(Q_RST, tid)
        print(f"{len(tid):>8} {time.perf_counter() - start:>11.3f} {p:>8.4f}")

    print("\ncomplete bipartite data (width grows): profiles/width blow up")
    print(f"{'side':>5} {'width':>6} {'engine':>16} {'Shannon':>10} {'Karp–Luby':>10}")
    for side in [2, 3, 4]:
        tid = rst_bipartite_tid(side, side, seed=0)
        width = tid.treewidth_upper_bound()
        start = time.perf_counter()
        p_engine = tid_probability(Q_RST, tid)
        engine_time = time.perf_counter() - start
        lineage = build_lineage(tid.instance, Q_RST)
        start = time.perf_counter()
        wmc_shannon(lineage.circuit, tid.event_space())
        shannon_time = time.perf_counter() - start
        start = time.perf_counter()
        p_kl = karp_luby_probability(Q_RST, tid, samples=2000, seed=0)
        kl_time = time.perf_counter() - start
        print(
            f"{side:>5} {width:>6} {engine_time:>10.3f}s P={p_engine:.3f}"
            f" {shannon_time:>9.3f}s {kl_time:>9.3f}s (±{abs(p_kl - p_engine):.3f})"
        )
    print("\nshape check: engine wins on tree-like data at any size;"
          " on dense data exact methods degrade and sampling takes over.")


if __name__ == "__main__":
    main()
