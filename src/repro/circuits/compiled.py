"""Compile-once/evaluate-many circuit backend: a flat CSR circuit IR.

The hash-consed :class:`repro.circuits.circuit.Circuit` is the right arena
for *building* lineages, but evaluating it repeatedly (per possible world,
per Monte-Carlo sample, per conditioning query) pays per-gate dict lookups
and a fresh valuation dict every time. A :class:`CompiledCircuit` lowers the
gate DAG once into flat, topologically-sorted arrays:

- ``kinds`` — one small int code per gate (``K_FALSE`` … ``K_OR``);
- ``offsets``/``indices`` — gate inputs in CSR form, as *positions* into the
  compiled arrays rather than arena gate ids;
- ``var_slot`` — for variable gates, the index of the interned variable
  name, so a valuation is just a flat sequence of booleans;
- cached variable order, moral graph, tree decompositions (per heuristic)
  and the binarized form, so repeated message-passing runs share all the
  structural preprocessing.

Every evaluation entry point then runs a single tight bottom-up loop over
these arrays: :meth:`CompiledCircuit.evaluate` for one world,
:meth:`CompiledCircuit.evaluate_batch` for many worlds at once,
:meth:`CompiledCircuit.probability` for the linear-time
deterministic-decomposable fast path (Theorem 1),
:meth:`CompiledCircuit.probability_batch` for many marginal vectors at
once, and :meth:`CompiledCircuit.probability_enumerate` for the
brute-force oracle.

**Batch evaluation** adds a third lowering stage on top of the flat IR.
When numpy is importable (:func:`numpy_available`), the topologically
sorted gates are grouped into *levels* — every gate's inputs live in
strictly earlier levels — and the CSR arrays are materialized as ``int32``
numpy buffers. A batch of worlds is a ``(n_worlds, n_vars)`` matrix; the
value buffer is gate-major (one row per gate, one column per world) and
each level evaluates in a handful of vectorized operations: NOT is a
whole-block negation, and the AND/OR gates of one fan-in are gathered as a
``(fan_in, count, n_worlds)`` stack and collapsed with one
``np.logical_and.reduce`` / ``np.logical_or.reduce`` (``np.multiply`` /
``np.add`` in the float pass of
:meth:`~CompiledCircuit.probability_batch`). Thousands of sampled worlds
are evaluated per pass instead of one kernel call per world; batches are
chunked so the value buffer stays within :data:`BATCH_BYTE_BUDGET` bytes.
Without numpy every batch entry point falls back to the scalar generated
kernels (or, above :data:`CODEGEN_GATE_LIMIT`, the array interpreter) —
same results, one world at a time.

**Sharded multi-process evaluation** is the fourth lowering stage, in
:mod:`repro.circuits.parallel`: the plan's int32 CSR buffers are published
once into ``multiprocessing.shared_memory``, a persistent worker pool
rebuilds the level schedule from them, and big world/marginal matrices are
split into row shards evaluated on every core.
:meth:`~CompiledCircuit.evaluate_batch` and
:meth:`~CompiledCircuit.probability_batch` route there automatically when
the ``parallel_workers`` knob is set and the batch is large enough
(``parallel.should_shard``); results are bit-identical to the in-process
kernels, and any pool failure falls back to them with a warning.

**Distributed execution** is the fifth stage, in
:mod:`repro.circuits.distributed`: :meth:`CompiledCircuit.wire_bytes`
serializes the plan to a versioned, checksummed wire format, and an asyncio
coordinator streams the same deterministic shards to remote worker
processes over TCP (knob: ``distributed_hosts`` /
``REPRO_DISTRIBUTED_HOSTS``), retrying on worker loss — again with
bit-identical results. The full pipeline is documented in
``ARCHITECTURE.md`` at the repository root.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from repro.util import ReproError, check

try:  # capability check: the vectorized batch kernels need numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None


def numpy_available() -> bool:
    """Whether the level-scheduled numpy batch kernels are active."""
    return _np is not None


def numpy_module():
    """The numpy module the batch kernels use, or ``None`` without numpy.

    Consumers that build their own world matrices (sampling baselines,
    benchmarks) go through this accessor so the capability check stays in
    one place and tests can disable the vectorized path by monkeypatching
    ``repro.circuits.compiled._np``.
    """
    return _np

# Gate kind codes of the flat IR. CONST gates split into two codes so the
# payload never needs a side table.
K_FALSE = 0
K_TRUE = 1
K_VAR = 2
K_NOT = 3
K_AND = 4
K_OR = 5

KIND_NAMES = ("false", "true", "var", "not", "and", "or")

#: Largest variable count accepted by :meth:`CompiledCircuit.probability_enumerate`.
ENUMERATION_VARIABLE_CAP = 26

#: Above this gate count the specialized Python kernels are not generated
#: (source-compile time would dominate) and the generic array interpreter
#: runs instead.
CODEGEN_GATE_LIMIT = 200_000

#: Per-chunk cap on the ``(n_worlds, size)`` value buffer of the numpy
#: batch kernels, in bytes; larger batches are processed in slices.
BATCH_BYTE_BUDGET = 1 << 25

_UNBUILT = object()


def gate_levels(kinds, offsets, indices) -> list[int]:
    """Per-gate level of the schedule: inputs live in strictly lower levels.

    Variables and constants sit at level 0; every other gate one past its
    deepest input. This is the schedule :class:`_BatchPlan` groups by and
    the one :mod:`repro.circuits.distributed` ships (and re-verifies) in
    the wire format, so both derive it from this single definition.
    """
    depth = [0] * len(kinds)
    for pos in range(len(kinds)):
        kind = kinds[pos]
        if kind == K_VAR or kind == K_TRUE or kind == K_FALSE:
            continue
        start, end = offsets[pos], offsets[pos + 1]
        depth[pos] = 1 + max(
            (depth[indices[j]] for j in range(start, end)), default=0
        )
    return depth

#: Fan-in up to which AND/OR are emitted as infix chains; larger gates use
#: list-based reductions to keep the generated AST shallow.
_INFIX_FAN_IN = 32


class _GroupOp:
    """One vectorized step: all of a level's gates of one kind and fan-in.

    ``rows`` is the contiguous ``(start, end)`` output-row block the
    renumbering gave the group; ``gather`` holds the input rows — shape
    ``(count,)`` for NOT, ``(fan_in, count)`` for AND/OR, so indexing the
    value matrix with it stacks every gate's ``j``-th input in plane ``j``
    and one ``ufunc.reduce`` over axis 0 evaluates the whole group.
    (``reduceat`` over CSR segments would express the same reduction, but
    its axis-0 inner loop measures ~80x slower than the grouped
    ``reduce``, so the plan pre-groups by fan-in instead.)
    """

    __slots__ = ("kind", "rows", "gather")

    def __init__(self, kind: int, rows: tuple[int, int], gather):
        self.kind = kind
        self.rows = rows
        self.gather = gather


class _BatchPlan:
    """The third lowering stage: level-scheduled numpy batch arrays.

    Gates are grouped into *levels* — every gate's inputs live in strictly
    earlier levels — and renumbered into a gate-major layout: the value
    matrix is ``(size, n_worlds)``, variables first, then constants, then
    one contiguous row block per (level, kind, fan-in) group. Each world
    is a column, so gathering a gate's inputs reads whole contiguous rows,
    every scatter is a slice assignment, and each group is one gather plus
    one reduction regardless of the world count.

    The plan also materializes the compiled CSR arrays (``kinds``,
    ``offsets``, ``indices``, ``var_slot``) as int32 numpy buffers — the
    exact form :mod:`repro.circuits.parallel` publishes into shared memory
    so worker processes can rebuild this plan without repickling the
    circuit. :meth:`run` executes one pass; :meth:`run_into` chunks it.
    """

    __slots__ = (
        "size",
        "kinds",
        "offsets",
        "indices",
        "var_slot",
        "row_of",
        "var_slots",
        "const_rows",
        "const_values",
        "levels",
        "output_row",
    )

    def __init__(self, compiled: "CompiledCircuit"):
        kinds = compiled.kinds
        offsets = compiled.offsets
        indices = compiled.indices
        size = compiled.size
        self.size = size
        self.kinds = _np.asarray(kinds, dtype=_np.int32)
        self.offsets = _np.asarray(offsets, dtype=_np.int32)
        self.indices = _np.asarray(indices, dtype=_np.int32)
        self.var_slot = _np.asarray(compiled.var_slot, dtype=_np.int32)

        depth = gate_levels(kinds, offsets, indices)
        var_positions: list[int] = []
        const_positions: list[int] = []
        # per level: {(kind, fan_in): positions} of that level's gates
        buckets: list[dict[tuple[int, int], list[int]]] = []
        for pos in range(size):
            kind = kinds[pos]
            start, end = offsets[pos], offsets[pos + 1]
            if kind == K_VAR:
                var_positions.append(pos)
                continue
            if kind == K_TRUE or kind == K_FALSE:
                const_positions.append(pos)
                continue
            level = depth[pos]
            while len(buckets) < level:
                buckets.append({})
            buckets[level - 1].setdefault((kind, end - start), []).append(pos)

        # Renumber: variables, constants, then level by level, group by group.
        row_of = _np.empty(size, dtype=_np.intp)
        next_row = 0
        for pos in var_positions:
            row_of[pos] = next_row
            next_row += 1
        for pos in const_positions:
            row_of[pos] = next_row
            next_row += 1
        grouped: list[list[tuple[int, int, list[int]]]] = []
        for level_buckets in buckets:
            level_groups = []
            for (kind, fan_in), positions in sorted(level_buckets.items()):
                start_row = next_row
                for pos in positions:
                    row_of[pos] = next_row
                    next_row += 1
                level_groups.append((kind, start_row, positions))
            grouped.append(level_groups)
        self.row_of = row_of
        self.var_slots = _np.asarray(
            [compiled.var_slot[pos] for pos in var_positions], dtype=_np.intp
        )
        self.const_rows = (len(var_positions), len(var_positions) + len(const_positions))
        self.const_values = _np.asarray(
            [kinds[pos] == K_TRUE for pos in const_positions], dtype=_np.bool_
        )
        levels: list[tuple[_GroupOp, ...]] = []
        for level_groups in grouped:
            ops = []
            for kind, start_row, positions in level_groups:
                rows = (start_row, start_row + len(positions))
                if kind == K_NOT:
                    gather = _np.asarray(
                        [row_of[indices[offsets[pos]]] for pos in positions],
                        dtype=_np.intp,
                    )
                else:
                    # gather[j, i] = row of the j-th input of the i-th gate
                    gather = _np.asarray(
                        [
                            [row_of[child] for child in indices[offsets[pos] : offsets[pos + 1]]]
                            for pos in positions
                        ],
                        dtype=_np.intp,
                    ).T
                ops.append(_GroupOp(kind, rows, gather))
            levels.append(tuple(ops))
        self.levels = tuple(levels)
        self.output_row = int(row_of[compiled.output])

    def run(self, matrix, as_float: bool):
        """One level-scheduled pass over a ``(n_worlds, n_vars)`` matrix.

        ``matrix`` holds one row per world (bool) or per marginal vector
        (float64), columns indexed by variable slot. Returns the output
        values as a 1-D array, one entry per input row. Internally the
        value matrix is gate-major — ``(size, n_worlds)``, rows in plan
        order — so each group's gather reads contiguous rows and each
        scatter is a slice assignment; per (level, kind, fan-in) group the
        work is one gather plus one reduction over the stacked inputs.
        This is the kernel the sharded workers of
        :mod:`repro.circuits.parallel` execute after rebuilding the plan
        from the shared CSR arrays.
        """
        n_worlds = matrix.shape[0]
        values = _np.empty(
            (self.size, n_worlds), dtype=_np.float64 if as_float else _np.bool_
        )
        n_vars = self.var_slots.size
        if n_vars:
            values[:n_vars] = matrix.T[self.var_slots]
        const_start, const_end = self.const_rows
        if const_end > const_start:
            values[const_start:const_end] = self.const_values[:, None]
        and_reduce = _np.multiply.reduce if as_float else _np.logical_and.reduce
        or_reduce = _np.add.reduce if as_float else _np.logical_or.reduce
        for level in self.levels:
            for op in level:
                start, end = op.rows
                if op.kind == K_NOT:
                    children = values[op.gather]
                    values[start:end] = 1.0 - children if as_float else ~children
                else:
                    reduce = and_reduce if op.kind == K_AND else or_reduce
                    reduce(values[op.gather], axis=0, out=values[start:end])
        return values[self.output_row].copy()

    def run_into(self, matrix, out, as_float: bool) -> None:
        """Run :meth:`run` into ``out`` row range by row range.

        Chunks the input so the gate-major value buffer stays under
        :data:`BATCH_BYTE_BUDGET` bytes regardless of the batch size;
        ``out`` must be a 1-D array with one entry per matrix row.
        """
        itemsize = 8 if as_float else 1
        step = max(1, BATCH_BYTE_BUDGET // max(1, self.size * itemsize))
        for start in range(0, matrix.shape[0], step):
            out[start : start + step] = self.run(matrix[start : start + step], as_float)


class CompiledCircuit:
    """An immutable, flat, topologically-sorted lowering of a :class:`Circuit`.

    Positions ``0 .. size-1`` enumerate the gates reachable from the output
    in topological order; ``output`` is the position of the output gate.
    Construct through :func:`compile_circuit`, which caches the compiled
    form on the source circuit.
    """

    __slots__ = (
        "source",
        "size",
        "kinds",
        "offsets",
        "indices",
        "var_slot",
        "var_names",
        "var_index",
        "gate_ids",
        "position_of",
        "output",
        "has_negation",
        "_binarized",
        "_decompositions",
        "_bool_kernel",
        "_float_kernel",
        "_batch_plan",
        "_shared_plan",
        "_wire_cache",
        "_wire_digest",
        "__weakref__",
    )

    def __init__(self, circuit: Circuit):
        check(circuit.output is not None, "circuit has no output gate")
        self.source = circuit
        gate_ids = circuit.reachable_from_output()
        self.gate_ids: tuple[int, ...] = tuple(gate_ids)
        self.position_of: dict[int, int] = {
            gid: pos for pos, gid in enumerate(gate_ids)
        }
        self.size = len(gate_ids)
        kinds: list[int] = []
        offsets: list[int] = [0]
        indices: list[int] = []
        var_slot: list[int] = []
        var_names: list[str] = []
        var_index: dict[str, int] = {}
        for gid in gate_ids:
            gate = circuit.gate(gid)
            slot = -1
            if gate.kind == VAR:
                kind = K_VAR
                name = gate.payload
                slot = var_index.get(name, -1)
                if slot < 0:
                    slot = len(var_names)
                    var_index[name] = slot
                    var_names.append(name)
            elif gate.kind == CONST:
                kind = K_TRUE if gate.payload else K_FALSE
            elif gate.kind == NOT:
                kind = K_NOT
            elif gate.kind == AND:
                kind = K_AND
            elif gate.kind == OR:
                kind = K_OR
            else:  # pragma: no cover - guarded by Circuit construction
                raise ReproError(f"unknown gate kind {gate.kind!r}")
            kinds.append(kind)
            var_slot.append(slot)
            indices.extend(self.position_of[i] for i in gate.inputs)
            offsets.append(len(indices))
        self.kinds = kinds
        self.offsets = offsets
        self.indices = indices
        self.var_slot = var_slot
        self.var_names: tuple[str, ...] = tuple(var_names)
        self.var_index = var_index
        self.output = self.position_of[circuit.output]  # type: ignore[index]
        #: Whether any NOT gate is reachable — precomputed once here rather
        #: than rescanning ``kinds`` on every property access.
        self.has_negation: bool = K_NOT in kinds
        self._binarized: CompiledCircuit | None = None
        self._decompositions: dict[str, object] = {}
        self._bool_kernel = _UNBUILT
        self._float_kernel = _UNBUILT
        self._batch_plan = _UNBUILT
        self._shared_plan = None  # lazily published by repro.circuits.parallel
        self._wire_cache = None  # lazily packed by repro.circuits.distributed
        self._wire_digest = None  # content digest of _wire_cache, cached with it

    # ------------------------------------------------------------------ #
    # inspection

    def variables(self) -> tuple[str, ...]:
        """Variable names in slot order (first topological occurrence)."""
        return self.var_names

    def inputs_of(self, position: int) -> list[int]:
        """Input positions of the gate at ``position``."""
        return self.indices[self.offsets[position] : self.offsets[position + 1]]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit(gates={self.size}, variables={len(self.var_names)},"
            f" output={self.output})"
        )

    # ------------------------------------------------------------------ #
    # valuation plumbing

    def slot_values(self, valuation) -> Sequence:
        """Normalize a valuation to a sequence of truth values by var slot.

        Accepts a mapping from variable name to bool (extra names are
        ignored, missing names raise) or a sequence already indexed by slot.
        """
        if isinstance(valuation, Mapping):
            values = []
            for name in self.var_names:
                if name not in valuation:
                    raise ReproError(f"valuation is missing variable {name!r}")
                values.append(1 if valuation[name] else 0)
            return values
        check(
            len(valuation) == len(self.var_names),
            f"valuation has {len(valuation)} entries for {len(self.var_names)} variables",
        )
        return valuation

    def slot_marginals(self, marginals) -> Sequence[float]:
        """Normalize marginals to a float sequence by var slot.

        Accepts an :class:`repro.events.EventSpace`, a mapping from variable
        name to probability, or a sequence indexed by slot. Anything else —
        including another circuit passed by mistake — is rejected with a
        clear error instead of being duck-typed on a ``probability``
        attribute.
        """
        from repro.events import EventSpace

        if isinstance(marginals, EventSpace):
            probability = marginals.probability
            return [probability(name) for name in self.var_names]
        if isinstance(marginals, Mapping):
            missing = [n for n in self.var_names if n not in marginals]
            check(not missing, f"marginals are missing variables {missing!r}")
            return [float(marginals[name]) for name in self.var_names]
        if hasattr(marginals, "__len__") and hasattr(marginals, "__getitem__"):
            check(
                len(marginals) == len(self.var_names),
                f"marginals have {len(marginals)} entries for "
                f"{len(self.var_names)} variables",
            )
            return marginals
        raise ReproError(
            f"unsupported marginals type {type(marginals).__name__}; expected an "
            "EventSpace, a name→probability mapping, or a slot-indexed sequence"
        )

    # ------------------------------------------------------------------ #
    # kernel generation

    def _build_kernel(self, mode: str):
        """Specialize the circuit into one straight-line Python function.

        The second lowering stage: each gate becomes a single assignment
        over local variables (``v7 = v3 * v5``), so repeated evaluation
        costs plain bytecode instead of an interpreted dispatch loop per
        gate. ``mode`` is ``"bool"`` (0/1 ints, ``&``/``|``/``^``) or
        ``"float"`` (the d-D probability pass: ``*`` at AND, ``+`` at OR).
        Returns ``None`` above :data:`CODEGEN_GATE_LIMIT`; callers then use
        the generic array interpreter.
        """
        if self.size > CODEGEN_GATE_LIMIT:
            return None
        as_float = mode == "float"
        lines = ["def _kernel(s):"]
        for pos in range(self.size):
            kind = self.kinds[pos]
            if kind == K_VAR:
                slot = self.var_slot[pos]
                expr = f"s[{slot}]" if as_float else f"1 if s[{slot}] else 0"
            elif kind == K_TRUE:
                expr = "1.0" if as_float else "1"
            elif kind == K_FALSE:
                expr = "0.0" if as_float else "0"
            elif kind == K_NOT:
                child = self.indices[self.offsets[pos]]
                expr = f"1.0 - v{child}" if as_float else f"v{child} ^ 1"
            else:
                terms = [f"v{i}" for i in self.inputs_of(pos)]
                if len(terms) <= _INFIX_FAN_IN:
                    if as_float:
                        op = " * " if kind == K_AND else " + "
                    else:
                        op = " & " if kind == K_AND else " | "
                    expr = op.join(terms)
                else:
                    listing = ", ".join(terms)
                    if as_float:
                        fn = "_prod" if kind == K_AND else "sum"
                        expr = f"{fn}([{listing}])"
                    else:
                        fn = "all" if kind == K_AND else "any"
                        expr = f"1 if {fn}([{listing}]) else 0"
            lines.append(f"    v{pos} = {expr}")
        lines.append(f"    return v{self.output}")
        import math

        namespace: dict[str, object] = {"_prod": math.prod}
        exec(compile("\n".join(lines), "<compiled-circuit>", "exec"), namespace)
        return namespace["_kernel"]

    def _kernel(self, mode: str):
        if mode == "float":
            if self._float_kernel is _UNBUILT:
                self._float_kernel = self._build_kernel("float")
            return self._float_kernel
        if self._bool_kernel is _UNBUILT:
            self._bool_kernel = self._build_kernel("bool")
        return self._bool_kernel

    # ------------------------------------------------------------------ #
    # level-scheduled numpy batch kernels (third lowering stage)

    def batch_plan(self) -> _BatchPlan | None:
        """The level-scheduled numpy plan, built once; ``None`` without numpy."""
        if _np is None:
            return None
        if self._batch_plan is _UNBUILT:
            self._batch_plan = _BatchPlan(self)
        return self._batch_plan

    def _batch_pass(self, matrix, as_float: bool):
        """One level-scheduled pass over a matrix (see :meth:`_BatchPlan.run`)."""
        return self.batch_plan().run(matrix, as_float)

    def wire_bytes(self) -> bytes:
        """This circuit's plan in the versioned wire format, packed once.

        The stage-5 export hook: the blob
        (:func:`repro.circuits.distributed.plan_to_bytes`) carries the int32
        CSR buffers, the level schedule and the plan metadata, and round-trips
        through :func:`repro.circuits.distributed.plan_from_bytes` on any
        host — with or without numpy on either side.
        """
        from repro.circuits import distributed

        return distributed.plan_to_bytes(self)

    def plan_digest(self) -> str:
        """Content digest of :meth:`wire_bytes`, computed once per circuit.

        The identity the distributed runtime keys its caches on: workers
        cache decoded plans by it and the coordinator's ``PLAN_OFFER``
        handshake sends it instead of the plan, so a plan crosses the wire
        at most once per worker per circuit.
        """
        if self._wire_digest is None:
            from repro.circuits import distributed

            self._wire_digest = distributed.plan_checksum(self.wire_bytes())
        return self._wire_digest

    def _maybe_sharded(self, matrix, as_float: bool):
        """Route a big batch to distributed hosts or the worker pool.

        The knob ladder, top down: distributed hosts (stage 5) when the
        ``distributed_hosts`` knob names workers and the batch is large
        enough; the multi-process pool (stage 4) when ``parallel_workers``
        says so; otherwise ``None`` — the caller's in-process kernels.
        Either backend failing falls through to the next tier (warned once
        per process) rather than losing the batch.
        """
        from repro.circuits import distributed, parallel

        n_rows = matrix.shape[0]
        if distributed.should_distribute(n_rows):
            try:
                return distributed._distributed_matrix_pass(
                    self, matrix, as_float, None
                )
            except (ReproError, OSError):
                parallel.warn_serial_fallback(
                    "distributed batch evaluation failed; falling back to "
                    "the local execution tiers"
                )
        if not parallel.should_shard(n_rows):
            return None
        try:
            return parallel._sharded_matrix_pass(self, matrix, as_float, None)
        except (ReproError, OSError):
            # OSError covers shared-memory allocation (ENOSPC on a small
            # /dev/shm) and process-spawn failures; the in-process kernels
            # below need neither.
            parallel.warn_serial_fallback(
                "sharded batch evaluation failed; falling back to the "
                "single-process kernels"
            )
            return None

    def _batch_chunk(self, as_float: bool) -> int:
        """Rows per chunk so the value buffer stays under the byte budget."""
        itemsize = 8 if as_float else 1
        return max(1, BATCH_BYTE_BUDGET // max(1, self.size * itemsize))

    def _as_world_matrix(self, valuations):
        """Normalize worlds to a ``(n_worlds, n_vars)`` bool matrix.

        Accepts a 2-D numpy array of truth values in slot order (any dtype
        with a sensible truthiness: ``bool``, 0/1 ints, ``np.bool_``) or an
        iterable of per-world valuations as taken by :meth:`evaluate`. Rows
        are copied as they are drawn, so generators that refill one shared
        row buffer are safe.
        """
        n_vars = len(self.var_names)
        if isinstance(valuations, _np.ndarray) and valuations.ndim == 2:
            check(
                valuations.shape[1] == n_vars,
                f"world matrix has {valuations.shape[1]} columns for "
                f"{n_vars} variables",
            )
            return valuations.astype(_np.bool_, copy=False)
        rows = [tuple(self.slot_values(v)) for v in valuations]
        if not rows:
            return _np.empty((0, n_vars), dtype=_np.bool_)
        return _np.asarray(rows, dtype=_np.bool_)

    # ------------------------------------------------------------------ #
    # Boolean evaluation

    def _evaluate_into(self, buffer: bytearray, slot_values: Sequence) -> int:
        """One bottom-up pass over the flat arrays; returns the output bit."""
        kinds = self.kinds
        offsets = self.offsets
        indices = self.indices
        var_slot = self.var_slot
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == K_VAR:
                value = 1 if slot_values[var_slot[pos]] else 0
            elif kind == K_AND:
                value = 1
                for j in range(offsets[pos], offsets[pos + 1]):
                    if not buffer[indices[j]]:
                        value = 0
                        break
            elif kind == K_OR:
                value = 0
                for j in range(offsets[pos], offsets[pos + 1]):
                    if buffer[indices[j]]:
                        value = 1
                        break
            elif kind == K_NOT:
                value = 1 - buffer[indices[offsets[pos]]]
            else:
                value = kind  # K_TRUE == 1, K_FALSE == 0
            buffer[pos] = value
        return buffer[self.output]

    def evaluate(self, valuation) -> bool:
        """Evaluate the output gate under one valuation."""
        kernel = self._kernel("bool")
        if kernel is not None:
            return bool(kernel(self.slot_values(valuation)))
        buffer = bytearray(self.size)
        return bool(self._evaluate_into(buffer, self.slot_values(valuation)))

    def evaluate_batch(self, valuations: Iterable) -> list[bool]:
        """Evaluate many valuations at once; returns one boolean per world.

        ``valuations`` is an iterable of valuations as accepted by
        :meth:`evaluate`, or a ``(n_worlds, n_vars)`` numpy matrix in slot
        order. With numpy available the whole batch runs through the
        level-scheduled vectorized kernels (:meth:`batch_plan`), chunked to
        bound memory — and row-sharded across the worker processes of
        :mod:`repro.circuits.parallel` when the ``parallel_workers`` knob
        is set and the batch is big enough, with identical results.
        Without numpy each world costs one generated-kernel call (or,
        above the codegen limit, one pass of the array interpreter over a
        single reusable buffer) — no per-world dict or buffer allocation
        either way.
        """
        if _np is not None:
            matrix = self._as_world_matrix(valuations)
            n_worlds = matrix.shape[0]
            if n_worlds == 0:
                return []
            sharded = self._maybe_sharded(matrix, as_float=False)
            if sharded is not None:
                return sharded.tolist()
            out = _np.empty(n_worlds, dtype=_np.bool_)
            self.batch_plan().run_into(matrix, out, as_float=False)
            return out.tolist()
        kernel = self._kernel("bool")
        slot_values = self.slot_values
        if kernel is not None:
            return [bool(kernel(slot_values(valuation))) for valuation in valuations]
        buffer = bytearray(self.size)
        return [
            bool(self._evaluate_into(buffer, slot_values(valuation)))
            for valuation in valuations
        ]

    # ------------------------------------------------------------------ #
    # probability fast paths

    def probability(self, marginals) -> float:
        """Linear-time probability for deterministic decomposable circuits.

        One bottom-up float pass: ``P(OR) = Σ``, ``P(AND) = Π``,
        ``P(NOT) = 1 − P``. Correct only on d-D circuits over independent
        variables (Theorem 1); use the ``message_passing`` engine otherwise.
        """
        probs = self.slot_marginals(marginals)
        kernel = self._kernel("float")
        if kernel is not None:
            return float(kernel(probs))
        kinds = self.kinds
        offsets = self.offsets
        indices = self.indices
        var_slot = self.var_slot
        values = [0.0] * self.size
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == K_VAR:
                value = probs[var_slot[pos]]
            elif kind == K_AND:
                value = 1.0
                for j in range(offsets[pos], offsets[pos + 1]):
                    value *= values[indices[j]]
            elif kind == K_OR:
                value = 0.0
                for j in range(offsets[pos], offsets[pos + 1]):
                    value += values[indices[j]]
            elif kind == K_NOT:
                value = 1.0 - values[indices[offsets[pos]]]
            else:
                value = float(kind)  # K_TRUE == 1, K_FALSE == 0
            values[pos] = value
        return values[self.output]

    def probability_batch(self, marginals_batch) -> list[float]:
        """The d-D probability pass of :meth:`probability`, over many rows.

        ``marginals_batch`` is an iterable of marginal assignments as
        accepted by :meth:`probability` (event spaces, mappings, slot
        sequences), or a ``(n_rows, n_vars)`` float matrix in slot order.
        With numpy available all rows share one level-scheduled float pass
        (grouped ``np.multiply.reduce`` at AND, ``np.add.reduce`` at OR),
        row-sharded across worker processes for big batches when the
        ``parallel_workers`` knob is set; otherwise each row costs one
        scalar :meth:`probability` call. Like
        :meth:`probability`, correct only on deterministic decomposable
        circuits over independent variables.
        """
        if _np is None:
            return [float(self.probability(row)) for row in marginals_batch]
        n_vars = len(self.var_names)
        if isinstance(marginals_batch, _np.ndarray) and marginals_batch.ndim == 2:
            check(
                marginals_batch.shape[1] == n_vars,
                f"marginal matrix has {marginals_batch.shape[1]} columns for "
                f"{n_vars} variables",
            )
            matrix = marginals_batch.astype(_np.float64, copy=False)
        else:
            rows = [tuple(self.slot_marginals(row)) for row in marginals_batch]
            if not rows:
                return []
            matrix = _np.asarray(rows, dtype=_np.float64)
        sharded = self._maybe_sharded(matrix, as_float=True)
        if sharded is not None:
            return sharded.tolist()
        out = _np.empty(matrix.shape[0], dtype=_np.float64)
        self.batch_plan().run_into(matrix, out, as_float=True)
        return out.tolist()

    def probability_enumerate(
        self, marginals, max_vars: int = ENUMERATION_VARIABLE_CAP
    ) -> float:
        """Exact probability by enumerating all variable valuations.

        With numpy available the ``2^n`` worlds are unpacked from bitmask
        ranges into world matrices and evaluated through the batch kernels,
        chunk by chunk; otherwise a reusable slot array iterates the masks
        one kernel call at a time — no per-world dict allocation either
        way. Exponential; capped at ``max_vars`` (default
        :data:`ENUMERATION_VARIABLE_CAP`) variables.
        """
        n = len(self.var_names)
        if n > max_vars:
            raise ReproError(
                f"enumeration oracle limited to {max_vars} variables "
                f"(circuit has {n}; 2^{n} worlds); use the 'shannon' or "
                "'message_passing' engine instead"
            )
        probs = self.slot_marginals(marginals)
        if _np is not None:
            return self._enumerate_batched(probs, n)
        slot_values = [0] * n
        kernel = self._kernel("bool")
        buffer = None if kernel is not None else bytearray(self.size)
        total = 0.0
        for mask in range(1 << n):
            for i in range(n):
                slot_values[i] = (mask >> i) & 1
            satisfied = (
                kernel(slot_values)
                if kernel is not None
                else self._evaluate_into(buffer, slot_values)
            )
            if satisfied:
                weight = 1.0
                for i in range(n):
                    p = probs[i]
                    weight *= p if slot_values[i] else 1.0 - p
                total += weight
        return total

    def _enumerate_batched(self, probs, n: int) -> float:
        """Enumeration oracle over the numpy batch kernels, chunked."""
        probs = _np.asarray(probs, dtype=_np.float64)
        world_count = 1 << n
        step = max(1, min(world_count, self._batch_chunk(as_float=False)))
        bits = _np.arange(n, dtype=_np.uint64)
        total = 0.0
        for start in range(0, world_count, step):
            masks = _np.arange(
                start, min(start + step, world_count), dtype=_np.uint64
            )
            worlds = ((masks[:, None] >> bits) & 1).astype(_np.bool_)
            satisfied = self._batch_pass(worlds, False)
            if satisfied.any():
                weights = _np.where(worlds[satisfied], probs, 1.0 - probs)
                total += float(weights.prod(axis=1).sum())
        return total

    # ------------------------------------------------------------------ #
    # semiring evaluation

    def evaluate_semiring(self, semiring, annotate) -> object:
        """Fold the circuit in a semiring: ``⊕`` at OR, ``⊗`` at AND.

        ``annotate`` maps a variable *name* to its semiring element.
        Negation is rejected — provenance is defined for monotone circuits.
        """
        kinds = self.kinds
        values: list[object] = [None] * self.size
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == K_VAR:
                values[pos] = annotate(self.var_names[self.var_slot[pos]])
            elif kind == K_AND:
                values[pos] = semiring.multiply_all(
                    values[i] for i in self.inputs_of(pos)
                )
            elif kind == K_OR:
                values[pos] = semiring.add_all(values[i] for i in self.inputs_of(pos))
            elif kind == K_NOT:
                raise ReproError("provenance circuits must be monotone (no NOT gates)")
            else:
                values[pos] = semiring.one() if kind == K_TRUE else semiring.zero()
        return values[self.output]

    # ------------------------------------------------------------------ #
    # cached structure for the message-passing engine

    def binarized(self) -> "CompiledCircuit":
        """The compiled form of the fan-in-≤2 rewrite, built once.

        Always lowers ``source.binarized()`` — even when the source is
        already binary — so the compiled positions stay aligned with the
        densely renumbered arena that external decompositions (built over
        ``circuit.binarized()`` gate ids) refer to.
        """
        if self._binarized is None:
            self._binarized = compile_circuit(self.source.binarized())
        return self._binarized

    def moral_graph(self):
        """Moral graph over compiled positions (gate–input cliques)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.size))
        for pos in range(self.size):
            inputs = self.inputs_of(pos)
            for child in inputs:
                graph.add_edge(pos, child)
            for i, a in enumerate(inputs):
                for b in inputs[i + 1 :]:
                    graph.add_edge(a, b)
        return graph

    def decomposition(self, heuristic: str = "min_fill"):
        """A tree decomposition of the moral graph, cached per heuristic."""
        cached = self._decompositions.get(heuristic)
        if cached is None:
            from repro.treewidth import decompose

            cached = decompose(self.moral_graph(), heuristic)
            self._decompositions[heuristic] = cached
        return cached


def compile_circuit(circuit: Circuit | CompiledCircuit) -> CompiledCircuit:
    """Lower ``circuit`` to its flat IR, caching the result on the arena.

    Passing an already-compiled circuit returns it unchanged. The cache is
    keyed on the arena's mutation version and output gate, so compiling
    again after further construction transparently recompiles.
    """
    if isinstance(circuit, CompiledCircuit):
        return circuit
    key = (circuit.version, circuit.output)
    cached = getattr(circuit, "_compiled_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    compiled = CompiledCircuit(circuit)
    circuit._compiled_cache = (key, compiled)
    return compiled
