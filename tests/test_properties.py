"""Cross-module property-based tests (hypothesis).

These pin down the global invariants that tie the subsystems together:
probability-space axioms, engine-vs-oracle equalities, structural
preservation under transformations.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.baselines import tid_probability_enumerate
from repro.circuits import (
    Circuit,
    check_decomposability,
    check_determinism_sampled,
    wmc_enumerate,
)
from repro.core import (
    ParityAutomaton,
    build_lineage,
    build_provenance_circuit,
    negation,
    tid_probability,
)
from repro.events import EventSpace
from repro.instances import TIDInstance, fact
from repro.order import (
    antichain,
    chain,
    concat,
    count_linear_extensions,
    is_linear_extension,
    iter_linear_extensions,
    sample_linear_extension,
    union,
)
from repro.queries import atom, cq, variables
from repro.treewidth import build_nice_tree, check_nice_tree, decompose

X, Y = variables("x", "y")
Q_RST = cq(atom("R", X), atom("S", X, Y), atom("T", Y))


def random_tid(seed: int, max_n: int = 4) -> TIDInstance:
    rng = random.Random(seed)
    tid = TIDInstance()
    n = rng.randint(2, max_n)
    for i in range(n):
        if rng.random() < 0.8:
            tid.add(fact("R", i), round(rng.random(), 2))
        if rng.random() < 0.8:
            tid.add(fact("T", i), round(rng.random(), 2))
    for _ in range(rng.randint(1, n + 1)):
        tid.add(fact("S", rng.randrange(n), rng.randrange(n)), round(rng.random(), 2))
    return tid


# --------------------------------------------------------------------------- #
# probability axioms


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_query_and_negation_sum_to_one(seed):
    tid = random_tid(seed)
    even = ParityAutomaton("S", 0)
    p = tid_probability(even, tid)
    q = tid_probability(negation(even), tid)
    assert math.isclose(p + q, 1.0, abs_tol=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_probability_within_unit_interval(seed):
    tid = random_tid(seed)
    p = tid_probability(Q_RST, tid)
    assert -1e-12 <= p <= 1.0 + 1e-12


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.floats(min_value=0.0, max_value=1.0))
def test_monotone_query_probability_monotone_in_fact_probability(seed, boost):
    """Raising any fact's probability cannot lower a CQ's probability."""
    tid = random_tid(seed)
    facts = tid.facts()
    target = facts[seed % len(facts)]
    base = tid_probability(Q_RST, tid)
    raised = TIDInstance(
        {
            f: (max(tid.probability(f), boost) if f == target else tid.probability(f))
            for f in facts
        }
    )
    assert tid_probability(Q_RST, raised) >= base - 1e-9


# --------------------------------------------------------------------------- #
# structural invariants of lineage circuits


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_deterministic_lineage_structural_properties(seed):
    tid = random_tid(seed)
    lineage = build_lineage(tid.instance, Q_RST)
    assert check_decomposability(lineage.circuit)
    assert check_determinism_sampled(lineage.circuit, trials=100, seed=seed)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_monotone_and_deterministic_lineages_equivalent(seed):
    """The two circuit constructions define the same Boolean function."""
    tid = random_tid(seed, max_n=3)
    deterministic = build_lineage(tid.instance, Q_RST)
    monotone = build_provenance_circuit(tid.instance, Q_RST)
    names = sorted({f.variable_name for f in tid.facts()})
    for mask in range(1 << len(names)):
        valuation = {n: bool(mask >> i & 1) for i, n in enumerate(names)}
        assert deterministic.circuit.evaluate(valuation) == monotone.circuit.evaluate(
            valuation
        )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_lineage_probability_equals_circuit_wmc(seed):
    tid = random_tid(seed, max_n=3)
    lineage = build_lineage(tid.instance, Q_RST)
    space = tid.event_space()
    assert math.isclose(
        lineage.probability_tid(tid), wmc_enumerate(lineage.circuit, space), abs_tol=1e-9
    )


# --------------------------------------------------------------------------- #
# decompositions and nice trees


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_nice_tree_reads_every_fact_once(seed):
    tid = random_tid(seed)
    lineage = build_lineage(tid.instance, Q_RST)
    read_items = [
        node.item for node in lineage.nice_tree.iter_postorder() if node.kind == "read"
    ]
    assert sorted(map(str, read_items)) == sorted(str(f) for f in tid.facts())
    check_nice_tree(lineage.nice_tree)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_decomposition_width_bounds_nice_tree_width(seed):
    import networkx as nx

    rng = random.Random(seed)
    graph = nx.gnp_random_graph(rng.randint(2, 9), 0.4, seed=seed)
    decomposition = decompose(graph)
    nice = build_nice_tree(decomposition)
    assert nice.width() <= decomposition.width()


# --------------------------------------------------------------------------- #
# order invariants


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_every_enumerated_extension_is_valid(seed):
    rng = random.Random(seed)
    poset = union(
        chain(range(rng.randint(1, 3)), "l"), antichain(range(rng.randint(1, 3)), "r")
    )
    extensions = list(iter_linear_extensions(poset))
    assert len(extensions) == count_linear_extensions(poset)
    for extension in extensions:
        assert is_linear_extension(poset, extension)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_sampled_extension_is_valid(seed):
    rng = random.Random(seed)
    poset = concat(
        antichain(range(rng.randint(1, 3)), "a"), chain(range(rng.randint(1, 3)), "c")
    )
    extension = sample_linear_extension(poset, seed=seed)
    assert is_linear_extension(poset, extension)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
def test_concat_count_is_product(m, n):
    left = antichain(range(m), "l")
    right = antichain(range(100, 100 + n), "r")
    total = count_linear_extensions(concat(left, right))
    assert total == count_linear_extensions(left) * count_linear_extensions(right)


# --------------------------------------------------------------------------- #
# circuits and spaces


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=4)
)
def test_restriction_preserves_probability_decomposition(probabilities):
    """Shannon identity: P(C) = p·P(C|x) + (1−p)·P(C|¬x)."""
    names = [f"v{i}" for i in range(len(probabilities))]
    space = EventSpace(dict(zip(names, probabilities)))
    c = Circuit()
    gates = [c.variable(n) for n in names]
    c.set_output(
        c.or_gate([c.and_gate(gates[: len(gates) // 2 + 1]), c.negation(gates[-1])])
    )
    pivot = names[0]
    p = space.probability(pivot)
    total = wmc_enumerate(c, space)
    high = wmc_enumerate(c.restricted({pivot: True}), space)
    low = wmc_enumerate(c.restricted({pivot: False}), space)
    assert math.isclose(total, p * high + (1 - p) * low, abs_tol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_engine_oracle_agreement_master_property(seed):
    """The master invariant: engine == enumeration on every random instance."""
    tid = random_tid(seed)
    assert math.isclose(
        tid_probability(Q_RST, tid),
        tid_probability_enumerate(Q_RST, tid),
        abs_tol=1e-9,
    )
