"""Persistent on-disk plan cache: lowering survives process restarts.

`BENCH_compiled_eval.json` made the cost asymmetry stark: lowering a
12.9k-gate circuit costs tens of milliseconds while a warm batched
evaluation costs a fraction of one — yet every process restart, CI job and
fresh ``repro-worker`` host used to pay lowering again. This module keeps
two kinds of entries in one size-bounded directory (knob:
``REPRO_PLAN_CACHE_DIR``; unset disables everything):

- ``<fingerprint>.circ`` — a full lowering keyed by a content fingerprint
  of the *arena* (the flat gate mirrors of
  :class:`repro.circuits.circuit.Circuit` plus the output gate), written by
  :func:`repro.circuits.compile_circuit` on a miss and rebuilt without
  running any lowering pass on a hit
  (:meth:`~repro.circuits.compiled.CompiledCircuit._from_arrays`);
- ``<plan_digest>.plan`` — the exact PR-4 wire payload keyed by
  :func:`repro.circuits.distributed.plan_checksum`, written through by
  ``plan_to_bytes`` on the coordinator and by workers when a plan arrives
  over the socket, and consulted by the worker's ``PLAN_OFFER`` handler so
  a freshly spawned worker answers ``PLAN_HAVE`` without ever receiving
  the plan bytes.

Entries are written atomically (temp file + ``os.replace``, so concurrent
writers — a pytest worker and a ``repro serve`` subprocess sharing one
directory — can never expose a torn file), evicted least-recently-used by
mtime once the directory exceeds ``REPRO_PLAN_CACHE_LIMIT_BYTES``, and
*validated* on every load: a corrupt entry (checksum mismatch, truncation,
arrays that fail :func:`repro.circuits.compiled.check_plan_arrays`) is
deleted and treated as a miss, never trusted. The cache is strictly
best-effort — any filesystem error degrades to a miss/no-op, counted in
:func:`stats`, and compilation proceeds as if the cache were off.
"""

from __future__ import annotations

import hashlib
import os
import struct
import sys
import tempfile

from repro.util import ReproError, check

#: Entry suffixes: full lowerings by arena fingerprint, wire payloads by
#: plan digest.
CIRC_SUFFIX = ".circ"
PLAN_SUFFIX = ".plan"

#: Default directory size bound; oldest-mtime entries are evicted beyond it.
DEFAULT_LIMIT_BYTES = 256 << 20

#: Circuits below this gate count skip the cache by default — the disk
#: round-trip costs more than relowering them.
DEFAULT_MIN_GATES = 64


def _dir_from_env() -> str | None:
    value = os.environ.get("REPRO_PLAN_CACHE_DIR", "").strip()
    return value or None


def _int_from_env(name: str, default: int) -> int:
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ReproError(f"{name} must be an integer, got {value!r}") from None
    check(parsed >= 0, f"{name} must be non-negative")
    return parsed


_DIR: str | None = _dir_from_env()
_LIMIT_BYTES: int = _int_from_env(
    "REPRO_PLAN_CACHE_LIMIT_BYTES", DEFAULT_LIMIT_BYTES
)
_MIN_GATES: int = _int_from_env("REPRO_PLAN_CACHE_MIN_GATES", DEFAULT_MIN_GATES)

_STATS = {
    "hits": 0,
    "misses": 0,
    "stores": 0,
    "evictions": 0,
    "corrupt": 0,
    "io_errors": 0,
}

#: Totals folded in by :func:`reset_stats`, mirroring
#: ``compiled.compile_stats(lifetime=True)``.
_LIFETIME = dict.fromkeys(_STATS, 0)


# --------------------------------------------------------------------------- #
# knobs

def plan_cache_dir() -> str | None:
    """The active cache directory, or ``None`` when the cache is off."""
    return _DIR


def set_plan_cache_dir(path: str | None) -> None:
    """Point the cache at ``path`` (created on first store); ``None`` disables."""
    global _DIR
    _DIR = str(path) if path else None


def plan_cache_dir_set(path: str | None):
    """Context manager: temporarily set (or disable) the cache directory.

    Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    return config.overrides(plan_cache_dir=path)


def plan_cache_limit_bytes() -> int:
    """The directory size bound that triggers LRU eviction."""
    return _LIMIT_BYTES


def set_plan_cache_limit_bytes(limit: int) -> None:
    """Set the directory size bound (bytes; eviction runs on next store)."""
    global _LIMIT_BYTES
    check(int(limit) >= 0, "plan cache limit must be non-negative")
    _LIMIT_BYTES = int(limit)


def min_gates() -> int:
    """Gate count below which circuits bypass the cache."""
    return _MIN_GATES


def set_min_gates(count: int) -> None:
    """Set the gate-count threshold for caching (0 caches everything)."""
    global _MIN_GATES
    check(int(count) >= 0, "plan cache gate threshold must be non-negative")
    _MIN_GATES = int(count)


def enabled() -> bool:
    """Whether a cache directory is configured."""
    return _DIR is not None


def stats(lifetime: bool = False) -> dict:
    """A snapshot of this process's cache counters.

    With ``lifetime=True`` the counts span the whole process, including
    everything zeroed by intervening :func:`reset_stats` calls.
    """
    if lifetime:
        return {key: _STATS[key] + _LIFETIME[key] for key in _STATS}
    return dict(_STATS)


def reset_stats() -> None:
    """Zero the cache counters (test isolation); totals are kept."""
    for key in _STATS:
        _LIFETIME[key] += _STATS[key]
        _STATS[key] = 0


# Aliases with unambiguous names for re-export from the package root.
plan_cache_stats = stats
reset_plan_cache_stats = reset_stats


# --------------------------------------------------------------------------- #
# keying

def arena_fingerprint(circuit) -> str | None:
    """Content fingerprint of an arena + output: the ``.circ`` cache key.

    Hashes the flat gate mirrors (kind codes, variable slots, CSR inputs),
    the interned variable names, the output gate and the wire version, so
    two processes that build byte-identical arenas — the deterministic
    workload generators — land on the same entry. Returns ``None`` for
    circuits without the flat mirrors (exotic subclasses) or arenas too
    large for the int32 entry encoding.
    """
    kind_codes = getattr(circuit, "_kind_codes", None)
    if kind_codes is None or circuit.output is None:
        return None
    if len(circuit) >= 1 << 31:  # pragma: no cover - int32 entry encoding
        return None
    digest = hashlib.sha256()
    digest.update(b"repro-circ-fp-v1")
    digest.update(sys.byteorder.encode())
    digest.update(struct.pack("<qq", len(circuit), circuit.output))
    for buffer in (
        kind_codes,
        circuit._var_slots,
        circuit._inputs_flat,
        circuit._input_offsets,
    ):
        raw = buffer.tobytes()
        digest.update(struct.pack("<q", len(raw)))
        digest.update(raw)
    names = "\x00".join(circuit._slot_names).encode()
    digest.update(struct.pack("<q", len(names)))
    digest.update(names)
    return digest.hexdigest()[:32]


def _entry_path(name: str, suffix: str) -> str | None:
    directory = _DIR
    if directory is None:
        return None
    return os.path.join(directory, name + suffix)


# --------------------------------------------------------------------------- #
# raw entry I/O

def _read_entry(path: str) -> bytes | None:
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None
    except OSError:
        _STATS["io_errors"] += 1
        return None
    try:
        os.utime(path)  # LRU touch; best-effort
    except OSError:
        pass
    return raw


def _write_entry(path: str, blob: bytes) -> None:
    directory = os.path.dirname(path)
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
    except OSError:
        _STATS["io_errors"] += 1
        return
    _STATS["stores"] += 1
    _evict(directory)


def _drop_corrupt(path: str) -> None:
    _STATS["corrupt"] += 1
    try:
        os.unlink(path)
    except OSError:
        pass


def entries() -> list[tuple[str, int, float]]:
    """``(filename, size, mtime)`` of every cache entry, oldest first."""
    directory = _DIR
    if directory is None:
        return []
    found = []
    try:
        with os.scandir(directory) as it:
            for item in it:
                if not item.name.endswith((CIRC_SUFFIX, PLAN_SUFFIX)):
                    continue
                try:
                    meta = item.stat()
                except OSError:
                    continue
                found.append((item.name, meta.st_size, meta.st_mtime))
    except OSError:
        return []
    found.sort(key=lambda row: (row[2], row[0]))
    return found


def clear() -> int:
    """Delete every cache entry; returns how many were removed."""
    removed = 0
    directory = _DIR
    for name, _size, _mtime in entries():
        try:
            os.unlink(os.path.join(directory, name))
            removed += 1
        except OSError:
            pass
    return removed


def _evict(directory: str) -> None:
    """Drop oldest-mtime entries until the directory fits the size bound."""
    limit = _LIMIT_BYTES
    listing = entries()
    total = sum(size for _name, size, _mtime in listing)
    for name, size, _mtime in listing:
        if total <= limit:
            break
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:
            continue
        total -= size
        _STATS["evictions"] += 1


# --------------------------------------------------------------------------- #
# full lowerings (.circ)

def load_compiled(circuit, fingerprint: str):
    """Rebuild a :class:`CompiledCircuit` from a ``.circ`` entry, or ``None``.

    The entry must decode (checksummed blob), belong to this fingerprint,
    and pass the full structural validation of
    :meth:`CompiledCircuit._from_arrays`; anything less deletes the entry
    and reports a miss.
    """
    path = _entry_path(fingerprint, CIRC_SUFFIX)
    if path is None:
        return None
    raw = _read_entry(path)
    if raw is None:
        _STATS["misses"] += 1
        return None
    from repro.circuits import distributed
    from repro.circuits.compiled import CompiledCircuit

    try:
        meta, sections = distributed._unpack_blob(raw, arrays=True)
        check(meta.get("kind") == "circ", "not a cached lowering")
        check(
            meta.get("fingerprint") == fingerprint,
            "cached lowering fingerprint mismatch",
        )
        var_names = meta.get("var_names")
        check(
            isinstance(var_names, list)
            and all(isinstance(name, str) for name in var_names),
            "cached lowering variable names are damaged",
        )
        compiled = CompiledCircuit._from_arrays(
            circuit,
            size=int(meta["size"]),
            kinds=sections["kinds"],
            offsets=sections["offsets"],
            indices=sections["indices"],
            var_slot=sections["var_slot"],
            var_names=var_names,
            levels=sections["levels"],
            gate_ids=sections["gate_ids"],
            output=int(meta["output"]),
        )
    except (ReproError, KeyError, ValueError, TypeError, OverflowError):
        _drop_corrupt(path)
        _STATS["misses"] += 1
        return None
    _STATS["hits"] += 1
    return compiled


def store_compiled(compiled, fingerprint: str) -> None:
    """Write one lowering as a ``.circ`` entry (atomic, best-effort)."""
    path = _entry_path(fingerprint, CIRC_SUFFIX)
    if path is None:
        return
    from repro.circuits import distributed

    arrays = compiled._np32
    blob = distributed._pack_blob(
        {
            "kind": "circ",
            "fingerprint": fingerprint,
            "size": compiled.size,
            "output": compiled.output,
            "n_vars": len(compiled.var_names),
            "var_names": list(compiled.var_names),
        },
        [
            ("kinds", "i", arrays[0] if arrays is not None else compiled.kinds),
            ("offsets", "i", arrays[1] if arrays is not None else compiled.offsets),
            ("indices", "i", arrays[2] if arrays is not None else compiled.indices),
            ("var_slot", "i", arrays[3] if arrays is not None else compiled.var_slot),
            ("levels", "i", compiled.levels_list()),
            ("gate_ids", "i", list(compiled.gate_ids)),
        ],
    )
    _write_entry(path, blob)


# --------------------------------------------------------------------------- #
# wire payloads (.plan)

def load_plan_blob(digest: str) -> bytes | None:
    """The exact wire payload stored under ``digest``, or ``None``.

    Verifies the content digest against the bytes before returning them —
    the same identity the distributed ``PLAN_OFFER`` handshake trusts — so
    a torn or tampered entry deletes itself and misses.
    """
    path = _entry_path(digest, PLAN_SUFFIX)
    if path is None:
        return None
    raw = _read_entry(path)
    if raw is None:
        _STATS["misses"] += 1
        return None
    from repro.circuits import distributed

    if distributed.plan_checksum(raw) != digest:
        _drop_corrupt(path)
        _STATS["misses"] += 1
        return None
    _STATS["hits"] += 1
    return raw


def store_plan_blob(digest: str, blob: bytes) -> None:
    """Write one wire payload as a ``.plan`` entry (atomic, best-effort)."""
    path = _entry_path(digest, PLAN_SUFFIX)
    if path is not None:
        _write_entry(path, blob)


def has_plan(digest: str) -> bool:
    """Whether a wire payload for ``digest`` is on disk — existence only.

    No read, no validation, no LRU touch: the query service reports its
    write-through state with this without perturbing the cache (a corrupt
    entry still answers ``True`` here and is caught by
    :func:`load_plan_blob`'s checksum on the first real load).
    """
    path = _entry_path(digest, PLAN_SUFFIX)
    if path is None:
        return False
    try:
        return os.path.exists(path)
    except OSError:  # pragma: no cover - exotic filesystem failure
        return False
