"""Boolean circuits as hash-consed gate DAGs.

The paper's pipeline represents uncertainty annotations and query lineages as
*circuits* rather than formulas: circuits share common subexpressions, and the
treewidth of the circuit (not of an equivalent formula) is what drives the
tractability of probability computation (Theorem 2).

A :class:`Circuit` is a mutable arena of immutable gates. Gates are identified
by integer ids; building the same gate twice returns the same id
(hash-consing), which keeps lineage circuits compact.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.util import ReproError, check

VAR = "var"
AND = "and"
OR = "or"
NOT = "not"
CONST = "const"

_KINDS = frozenset({VAR, AND, OR, NOT, CONST})

# Gate kind codes of the flat compiled IR (see ``compiled.py``, which
# re-exports them). They are maintained incrementally on the arena so the
# vectorized lowering can read the whole circuit as four flat numeric
# arrays instead of touching every ``Gate`` object again.
K_FALSE = 0
K_TRUE = 1
K_VAR = 2
K_NOT = 3
K_AND = 4
K_OR = 5

_KIND_CODE = {VAR: K_VAR, NOT: K_NOT, AND: K_AND, OR: K_OR}

# The lowering reinterprets these buffers as little-endian int32/int8; all
# supported CPython platforms satisfy this (checked once at import).
check(array("i").itemsize == 4, "platform array('i') is not 32-bit")
check(array("b").itemsize == 1, "platform array('b') is not 8-bit")


@dataclass(frozen=True)
class Gate:
    """One circuit gate: a kind, an optional payload, and input gate ids.

    ``payload`` is the variable name for ``VAR`` gates and the Boolean value
    for ``CONST`` gates; it is ``None`` otherwise.
    """

    kind: str
    payload: object
    inputs: tuple[int, ...]


class Circuit:
    """A Boolean circuit: an arena of gates plus a designated output.

    >>> c = Circuit()
    >>> g = c.and_gate([c.variable("x"), c.negation(c.variable("y"))])
    >>> c.set_output(g)
    >>> c.evaluate({"x": True, "y": False})
    True
    """

    def __init__(self) -> None:
        self._gates: list[Gate] = []
        self._intern: dict[tuple, int] = {}
        self.output: int | None = None
        #: Mutation counter; lets :func:`repro.circuits.compile_circuit`
        #: cache the compiled form and recompile only after changes.
        self.version: int = 0
        #: ``(version, output) -> CompiledCircuit`` memo maintained by
        #: :func:`repro.circuits.compile_circuit` (bounded, insertion-LRU).
        self._compiled_cache: dict = {}
        # Flat mirrors of the gate list, appended in lockstep by ``_add``:
        # one kind code and variable slot per gate, plus the inputs in CSR
        # form. The vectorized lowering and the plan-cache fingerprint read
        # these directly — no per-gate Python objects on the hot path.
        self._kind_codes = array("b")
        self._var_slots = array("i")
        self._inputs_flat = array("i")
        self._input_offsets = array("i", [0])
        #: Per-gate level of the evaluation schedule, maintained
        #: incrementally: a gate's level depends only on its input cone
        #: (leaves at 0, everything else one past its deepest input), so it
        #: never changes after the append-only arena creates the gate. The
        #: lowering gathers its level schedule from here instead of running
        #: a depth pass over the whole circuit.
        self._gate_levels = array("i")
        #: Interned variable names by arena slot (creation order, which is
        #: also first-topological-occurrence order for any output).
        self._slot_names: list[str] = []
        self._slot_of_name: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # construction

    def _add(self, kind: str, payload: object, inputs: tuple[int, ...]) -> int:
        key = (kind, payload, inputs)
        existing = self._intern.get(key)
        if existing is not None:
            return existing
        for g in inputs:
            check(0 <= g < len(self._gates), f"unknown input gate {g}")
        gate_id = len(self._gates)
        self._gates.append(Gate(kind, payload, inputs))
        self._intern[key] = gate_id
        slot = -1
        if kind == VAR:
            # Hash-consing guarantees one VAR gate per name, so the slot is
            # fresh exactly when the gate is.
            slot = len(self._slot_names)
            self._slot_of_name[payload] = slot  # type: ignore[index]
            self._slot_names.append(payload)  # type: ignore[arg-type]
            code = K_VAR
        elif kind == CONST:
            code = K_TRUE if payload else K_FALSE
        else:
            code = _KIND_CODE[kind]
        self._kind_codes.append(code)
        self._var_slots.append(slot)
        self._inputs_flat.extend(inputs)
        self._input_offsets.append(len(self._inputs_flat))
        levels = self._gate_levels
        if code <= K_VAR:
            levels.append(0)
        else:
            levels.append(
                1 + max((levels[g] for g in inputs), default=0)
            )
        self.version += 1
        return gate_id

    def variable(self, name: str) -> int:
        """Return the gate for input variable ``name`` (created on demand)."""
        return self._add(VAR, name, ())

    def constant(self, value: bool) -> int:
        """Return the constant gate for ``value``."""
        return self._add(CONST, bool(value), ())

    def true(self) -> int:
        """Return the constant-true gate."""
        return self.constant(True)

    def false(self) -> int:
        """Return the constant-false gate."""
        return self.constant(False)

    def and_gate(self, inputs: Iterable[int]) -> int:
        """Return a conjunction gate over ``inputs`` with constant folding."""
        kept: list[int] = []
        for g in inputs:
            check(0 <= g < len(self._gates), f"unknown input gate {g}")
            gate = self._gates[g]
            if gate.kind == CONST:
                if not gate.payload:
                    return self.false()
                continue
            kept.append(g)
        if not kept:
            return self.true()
        if len(kept) == 1:
            return kept[0]
        return self._add(AND, None, tuple(kept))

    def or_gate(self, inputs: Iterable[int]) -> int:
        """Return a disjunction gate over ``inputs`` with constant folding."""
        kept: list[int] = []
        for g in inputs:
            check(0 <= g < len(self._gates), f"unknown input gate {g}")
            gate = self._gates[g]
            if gate.kind == CONST:
                if gate.payload:
                    return self.true()
                continue
            kept.append(g)
        if not kept:
            return self.false()
        if len(kept) == 1:
            return kept[0]
        return self._add(OR, None, tuple(kept))

    def negation(self, input_gate: int) -> int:
        """Return the negation of ``input_gate`` (double negations cancel)."""
        check(0 <= input_gate < len(self._gates), f"unknown input gate {input_gate}")
        gate = self._gates[input_gate]
        if gate.kind == CONST:
            return self.constant(not gate.payload)
        if gate.kind == NOT:
            return gate.inputs[0]
        return self._add(NOT, None, (input_gate,))

    def set_output(self, gate_id: int) -> None:
        """Designate ``gate_id`` as the circuit output."""
        check(0 <= gate_id < len(self._gates), f"unknown gate {gate_id}")
        self.output = gate_id

    # ------------------------------------------------------------------ #
    # inspection

    def gate(self, gate_id: int) -> Gate:
        """Return the gate object with the given id."""
        return self._gates[gate_id]

    def __len__(self) -> int:
        return len(self._gates)

    def gate_ids(self) -> range:
        """Return all gate ids in creation (hence topological) order."""
        return range(len(self._gates))

    def variables(self) -> frozenset[str]:
        """Return the names of all variable gates reachable from the output."""
        if self.output is None:
            return frozenset(
                g.payload for g in self._gates if g.kind == VAR  # type: ignore[misc]
            )
        names = set()
        for gid in self.reachable_from_output():
            g = self._gates[gid]
            if g.kind == VAR:
                names.add(g.payload)
        return frozenset(names)  # type: ignore[arg-type]

    def reachable_from_output(self) -> list[int]:
        """Return gate ids reachable from the output, in topological order."""
        check(self.output is not None, "circuit has no output gate")
        seen: set[int] = set()
        stack = [self.output]
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)  # type: ignore[arg-type]
            stack.extend(self._gates[gid].inputs)  # type: ignore[index]
        return sorted(seen)  # creation order is topological

    def max_fan_in(self) -> int:
        """Return the largest number of inputs of any gate."""
        return max((len(g.inputs) for g in self._gates), default=0)

    # ------------------------------------------------------------------ #
    # evaluation

    def evaluate(self, valuation: Mapping[str, bool], gate_id: int | None = None) -> bool:
        """Evaluate the circuit (or one gate) under a variable ``valuation``."""
        target = self.output if gate_id is None else gate_id
        check(target is not None, "circuit has no output gate")
        needed: set[int] = set()
        stack = [target]
        while stack:
            gid = stack.pop()
            if gid in needed:
                continue
            needed.add(gid)  # type: ignore[arg-type]
            stack.extend(self._gates[gid].inputs)  # type: ignore[index]
        values: dict[int, bool] = {}
        for gid in sorted(needed):
            gate = self._gates[gid]
            if gate.kind == VAR:
                if gate.payload not in valuation:
                    raise ReproError(f"valuation is missing variable {gate.payload!r}")
                values[gid] = bool(valuation[gate.payload])  # type: ignore[index]
            elif gate.kind == CONST:
                values[gid] = bool(gate.payload)
            elif gate.kind == NOT:
                values[gid] = not values[gate.inputs[0]]
            elif gate.kind == AND:
                values[gid] = all(values[i] for i in gate.inputs)
            elif gate.kind == OR:
                values[gid] = any(values[i] for i in gate.inputs)
            else:  # pragma: no cover - guarded by construction
                raise ReproError(f"unknown gate kind {gate.kind!r}")
        return values[target]  # type: ignore[index]

    # ------------------------------------------------------------------ #
    # transformation

    def copy_into(self, target: "Circuit", substitution: Mapping[str, int] | None = None,
                  roots: Iterable[int] | None = None) -> dict[int, int]:
        """Copy gates into ``target``, optionally substituting variables.

        ``substitution`` maps variable names to gate ids *of the target
        circuit*; variables not in the mapping are copied as variables. Only
        gates reachable from ``roots`` (default: the output) are copied.
        Returns the id translation map. This implements circuit composition,
        used to plug annotation circuits into lineage circuits (pcc-instances).
        """
        substitution = substitution or {}
        if roots is None:
            check(self.output is not None, "circuit has no output gate")
            roots = [self.output]  # type: ignore[list-item]
        needed: set[int] = set()
        stack = list(roots)
        while stack:
            gid = stack.pop()
            if gid in needed:
                continue
            needed.add(gid)
            stack.extend(self._gates[gid].inputs)
        translation: dict[int, int] = {}
        for gid in sorted(needed):
            gate = self._gates[gid]
            if gate.kind == VAR:
                if gate.payload in substitution:
                    translation[gid] = substitution[gate.payload]  # type: ignore[index]
                else:
                    translation[gid] = target.variable(gate.payload)  # type: ignore[arg-type]
            elif gate.kind == CONST:
                translation[gid] = target.constant(bool(gate.payload))
            elif gate.kind == NOT:
                translation[gid] = target.negation(translation[gate.inputs[0]])
            elif gate.kind == AND:
                translation[gid] = target.and_gate([translation[i] for i in gate.inputs])
            else:
                translation[gid] = target.or_gate([translation[i] for i in gate.inputs])
        return translation

    def restricted(self, partial: Mapping[str, bool]) -> "Circuit":
        """Return a simplified copy with variables of ``partial`` fixed.

        Conditioning on an event literal is this operation followed by a
        renormalization; note the width of the circuit never increases.
        """
        result = Circuit()
        substitution = {name: result.constant(value) for name, value in partial.items()}
        translation = self.copy_into(result, substitution)
        if self.output is not None:
            result.set_output(translation[self.output])
        return result

    def binarized(self) -> "Circuit":
        """Return an equivalent circuit in which every gate has fan-in ≤ 2.

        Large AND/OR gates become balanced trees of binary gates. This keeps
        message-passing bags small: a factor's scope is a gate plus its
        inputs, so fan-in directly lower-bounds the junction-tree width.
        """
        result = Circuit()
        translation: dict[int, int] = {}
        roots = self.reachable_from_output() if self.output is not None else list(self.gate_ids())
        for gid in roots:
            gate = self._gates[gid]
            if gate.kind == VAR:
                translation[gid] = result.variable(gate.payload)  # type: ignore[arg-type]
            elif gate.kind == CONST:
                translation[gid] = result.constant(bool(gate.payload))
            elif gate.kind == NOT:
                translation[gid] = result.negation(translation[gate.inputs[0]])
            else:
                children = [translation[i] for i in gate.inputs]
                combiner = result.and_gate if gate.kind == AND else result.or_gate
                while len(children) > 2:
                    paired = [
                        combiner(children[i : i + 2]) for i in range(0, len(children), 2)
                    ]
                    children = paired
                translation[gid] = combiner(children)
        if self.output is not None:
            result.set_output(translation[self.output])
        return result

    def pruned(self) -> "Circuit":
        """Return a copy containing only gates reachable from the output."""
        result = Circuit()
        translation = self.copy_into(result)
        result.set_output(translation[self.output])  # type: ignore[index]
        return result

    def __repr__(self) -> str:
        return f"Circuit(gates={len(self._gates)}, output={self.output})"


def from_formula(formula, circuit: Circuit | None = None) -> tuple[Circuit, int]:
    """Convert a :class:`repro.events.Formula` into circuit gates.

    Returns the circuit and the id of the gate representing the formula.
    """
    from repro.events import formulas as f

    circuit = circuit if circuit is not None else Circuit()

    def build(node) -> int:
        if isinstance(node, f.Const):
            return circuit.constant(node.value)
        if isinstance(node, f.Var):
            return circuit.variable(node.name)
        if isinstance(node, f.Not):
            return circuit.negation(build(node.child))
        if isinstance(node, f.And):
            return circuit.and_gate([build(c) for c in node.children])
        if isinstance(node, f.Or):
            return circuit.or_gate([build(c) for c in node.children])
        raise ReproError(f"unknown formula node {node!r}")

    gate = build(formula)
    return circuit, gate
