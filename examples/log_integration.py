"""Order uncertainty: integrating event logs with no global timestamps.

The paper's Section 3 motivation: per-machine logs are totally ordered, but
the global interleaving is unknown. The merged history is a po-relation; we
count and sample its possible worlds, check membership of candidate
histories (tractable and intractable label regimes), query it with the
positive relational algebra, and derive order from uncertain numeric scores.

Run:  python examples/log_integration.py
"""

from repro.order import (
    certain_pairs,
    count_linear_extensions,
    count_linear_extensions_sp,
    is_possible_world,
    is_series_parallel,
    poset_from_intervals,
    sample_linear_extension,
    extension_labels,
    selection,
)
from repro.workloads import generate_logs, true_interleaving


def merge_logs() -> None:
    print("=" * 70)
    print("Merging logs from two machines (no global timestamps)")
    print("=" * 70)
    workload = generate_logs(machines=2, events_per_log=4, seed=11)
    for machine, log in enumerate(workload.logs):
        print(f"  machine {machine}: {' -> '.join(log)}")
    merged = workload.merged
    print(f"\n  merged po-relation: {len(merged)} events")
    print(f"  series-parallel: {is_series_parallel(merged)}")
    print(f"  possible global histories: {count_linear_extensions_sp(merged)} "
          f"(polynomial SP count; DP agrees: {count_linear_extensions(merged)})")

    truth = true_interleaving(workload, seed=3)
    print(f"\n  candidate history #1 {'(IS possible)' if is_possible_world(merged, truth) else ''}:")
    print(f"    {' -> '.join(truth)}")
    impossible = tuple(reversed(truth))
    verdict = is_possible_world(merged, impossible)
    print(f"  candidate history #2 (reversed) possible? {verdict}")

    print("\n  three uniformly sampled histories:")
    for seed in range(3):
        extension = sample_linear_extension(merged, seed=seed)
        print(f"    {' -> '.join(extension_labels(merged, extension))}")

    errors_first = certain_pairs(merged)
    if errors_first:
        shown = sorted(errors_first)[:5]
        print(f"\n  certain order facts (hold in every history): {shown}")


def query_the_merge() -> None:
    print()
    print("=" * 70)
    print("Querying the merged history with the positive relational algebra")
    print("=" * 70)
    workload = generate_logs(machines=2, events_per_log=4, seed=11)
    errors = selection(workload.merged, lambda label: label in ("error", "retry"))
    print(f"  sigma[kind IN (error, retry)]: {len(errors)} events, "
          f"{count_linear_extensions(errors)} possible orders")


def order_from_scores() -> None:
    print()
    print("=" * 70)
    print("Order from uncertain numeric values (itemset supports)")
    print("=" * 70)
    supports = {
        "itemset{beer}": (0.30, 0.50),
        "itemset{chips}": (0.45, 0.60),
        "itemset{beer,chips}": (0.10, 0.25),
    }
    poset = poset_from_intervals(supports)
    for a, b in sorted(poset.closure_pairs()):
        print(f"  certain: support({a}) < support({b})")
    print(f"  possible support rankings: {count_linear_extensions(poset)}")


if __name__ == "__main__":
    merge_logs()
    query_the_merge()
    order_from_scores()
    print("\nLog integration example complete.")
