"""Exact treewidth for small graphs, via the elimination-order subset DP.

Used in tests and ablations to certify heuristic quality. Treewidth is
NP-hard, and this dynamic program is exponential (over vertex subsets), so it
is capped at 18 vertices.
"""

from __future__ import annotations

import networkx as nx

from repro.treewidth.decomposition import TreeDecomposition, from_elimination_order
from repro.util import check


def _eliminated_degree(graph: nx.Graph, eliminated: frozenset, vertex) -> int:
    """Degree of ``vertex`` once ``eliminated`` are eliminated (with fill-in).

    Equals the number of non-eliminated vertices (other than ``vertex``)
    reachable from ``vertex`` through eliminated vertices only.
    """
    seen = {vertex}
    stack = [vertex]
    degree = 0
    while stack:
        current = stack.pop()
        for neighbour in graph.neighbors(current):
            if neighbour in seen:
                continue
            seen.add(neighbour)
            if neighbour in eliminated:
                stack.append(neighbour)
            else:
                degree += 1
    return degree


def exact_treewidth(graph: nx.Graph) -> int:
    """Return the exact treewidth of a small ``graph``.

    Dynamic program over subsets of eliminated vertices: the width of the
    best elimination order of S equals ``min over v in S`` of
    ``max(width(S - v), degree of v after eliminating S - v)``.
    """
    n = graph.number_of_nodes()
    check(n <= 18, "exact treewidth limited to 18 vertices")
    if n == 0:
        return 0
    nodes = sorted(graph.nodes, key=str)
    best: dict[frozenset, int] = {frozenset(): -1}
    # Process subsets in increasing size; width of empty elimination is -1 so
    # that a single isolated vertex yields width 0 via max(-1, 0).
    subsets_by_size: list[list[frozenset]] = [[frozenset()]]
    for _size in range(1, n + 1):
        layer: list[frozenset] = []
        for smaller in subsets_by_size[-1]:
            for v in nodes:
                if v in smaller:
                    continue
                candidate = smaller | {v}
                if candidate not in best:
                    best[candidate] = n  # placeholder upper bound
                    layer.append(candidate)
        for subset in layer:
            value = n
            for v in subset:
                rest = subset - {v}
                value = min(value, max(best[rest], _eliminated_degree(graph, rest, v)))
            best[subset] = value
        subsets_by_size.append(layer)
    return max(best[frozenset(nodes)], 0)


def exact_elimination_order(graph: nx.Graph) -> list:
    """Return an elimination order achieving the exact treewidth."""
    target = exact_treewidth(graph)
    order = []
    eliminated: frozenset = frozenset()
    remaining = set(graph.nodes)
    while remaining:
        placed = False
        for v in sorted(remaining, key=str):
            if _eliminated_degree(graph, eliminated, v) > target:
                continue
            rest_graph = nx.Graph(graph)
            # Check that the remainder can still be eliminated within target:
            # recompute exact treewidth of the graph induced by filling in.
            trial_eliminated = eliminated | {v}
            if _remaining_width(graph, trial_eliminated) <= target:
                order.append(v)
                eliminated = trial_eliminated
                remaining.discard(v)
                placed = True
                break
            del rest_graph
        check(placed, "internal error: no vertex achieves the optimal width")
    return order


def _remaining_width(graph: nx.Graph, eliminated: frozenset) -> int:
    """Exact width needed to finish eliminating ``graph`` after ``eliminated``."""
    remaining = [v for v in graph.nodes if v not in eliminated]
    if not remaining:
        return 0
    filled = nx.Graph()
    filled.add_nodes_from(remaining)
    for i, a in enumerate(remaining):
        reach = _reachable_through(graph, eliminated, a)
        for b in remaining[i + 1 :]:
            if b in reach:
                filled.add_edge(a, b)
    return exact_treewidth(filled)


def _reachable_through(graph: nx.Graph, eliminated: frozenset, vertex) -> set:
    """Vertices reachable from ``vertex`` through eliminated vertices only."""
    seen = {vertex}
    stack = [vertex]
    reach = set()
    while stack:
        current = stack.pop()
        for neighbour in graph.neighbors(current):
            if neighbour in seen:
                continue
            seen.add(neighbour)
            if neighbour in eliminated:
                stack.append(neighbour)
            else:
                reach.add(neighbour)
    return reach


def exact_decomposition(graph: nx.Graph) -> TreeDecomposition:
    """Return a minimum-width tree decomposition of a small ``graph``."""
    if graph.number_of_nodes() == 0:
        return TreeDecomposition({0: []}, [])
    return from_elimination_order(graph, exact_elimination_order(graph))
