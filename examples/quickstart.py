"""Quickstart: uncertain data in, exact probabilities out.

Builds the paper's Table 1 (the PODS/STOC trips c-instance), asks
possibility / certainty / probability questions, then runs the headline
#P-hard query ``∃xy R(x)S(x,y)T(y)`` on a tree-like TID instance with the
treewidth-based engine and cross-checks every number against brute force.

Run:  python examples/quickstart.py
"""

from repro import (
    TIDInstance,
    atom,
    cq,
    fact,
    monte_carlo_probability,
    tid_probability,
    tid_probability_enumerate,
    variables,
)
from repro.workloads import ALL_TRIPS, table1_cinstance, table1_pc_instance


def trips_example() -> None:
    print("=" * 70)
    print("Table 1 — trips booked depending on attended conferences")
    print("=" * 70)
    ci = table1_cinstance()
    print(f"{'Trip':<38} {'possible':<9} {'certain':<8}")
    for trip in ALL_TRIPS:
        print(f"{str(trip):<38} {str(ci.is_possible(trip)):<9} {str(ci.is_certain(trip)):<8}")

    print("\nWith P(pods)=0.7, P(stoc)=0.5 (pc-instance):")
    pc = table1_pc_instance(p_pods=0.7, p_stoc=0.5)
    for trip in ALL_TRIPS:
        print(f"  P({trip}) = {pc.fact_probability(trip):.3f}")

    print("\nDistinct possible worlds (one per event valuation):")
    for world, valuation in ci.possible_worlds():
        attending = [name for name, value in valuation.items() if value]
        print(f"  attend {attending or ['nothing']}: {len(world)} trips booked")


def treewidth_engine_example() -> None:
    print()
    print("=" * 70)
    print("The #P-hard query ∃xy R(x)S(x,y)T(y), exactly, on tree-like data")
    print("=" * 70)
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))

    tid = TIDInstance()
    for i in range(6):
        tid.add(fact("R", i), 0.5)
        tid.add(fact("T", i), 0.6)
        if i + 1 < 6:
            tid.add(fact("S", i, i + 1), 0.7)

    exact = tid_probability(query, tid)  # Theorem 1 engine
    oracle = tid_probability_enumerate(query, tid)  # 2^16 worlds
    sampled = monte_carlo_probability(query, tid, samples=20_000, seed=0)

    print(f"instance: {len(tid)} uncertain facts, treewidth "
          f"{tid.treewidth_upper_bound()}")
    print(f"engine (lineage + d-D evaluation): {exact:.6f}")
    print(f"possible-world enumeration oracle: {oracle:.6f}")
    print(f"Monte Carlo (20k samples):         {sampled:.6f}")
    assert abs(exact - oracle) < 1e-9, "engine must match brute force"


if __name__ == "__main__":
    trips_example()
    treewidth_engine_example()
    print("\nQuickstart complete — all exact numbers cross-checked.")
