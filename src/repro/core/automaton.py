"""Deterministic bottom-up automata over nice tree decompositions.

This is our rendering of the paper's "compile the query to a tree automaton
and run it on tree encodings of bounded-treewidth instances". An automaton
processes a :class:`repro.treewidth.NiceTree` bottom-up; at *read* nodes it
consumes the uncertain presence of one fact, branching on absent/present.

Determinism is the load-bearing property: for a fixed subinstance below a
node, the automaton is in exactly one state. The lineage engine exploits it
to emit OR gates with mutually exclusive children, which is what makes the
resulting circuits directly evaluable in linear time (Theorem 1).

States must be hashable; all transition functions must be pure.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.instances.base import Fact
from repro.util import check

Bag = frozenset


class DecompositionAutomaton:
    """Interface for deterministic automata over nice decompositions."""

    def initial_state(self):
        """State at a leaf node (empty bag)."""
        raise NotImplementedError

    def introduce(self, state, vertex, bag: Bag):
        """State after introducing ``vertex`` (``bag`` already contains it)."""
        raise NotImplementedError

    def forget(self, state, vertex, bag: Bag):
        """State after forgetting ``vertex`` (``bag`` no longer contains it)."""
        raise NotImplementedError

    def join(self, left, right, bag: Bag):
        """State after joining two branches with identical bags."""
        raise NotImplementedError

    def read(self, state, fact: Fact, bag: Bag):
        """Return ``(state_if_absent, state_if_present)`` after reading a fact."""
        raise NotImplementedError

    def accepts(self, state) -> bool:
        """Acceptance at the root (whose bag is empty)."""
        raise NotImplementedError


class ProductAutomaton(DecompositionAutomaton):
    """Run several automata in lockstep; acceptance combines their verdicts.

    The product of deterministic automata is deterministic, which gives
    Boolean closure: conjunction, disjunction, or any Boolean combination of
    component acceptances via ``accept_fn``.
    """

    def __init__(
        self,
        components: Sequence[DecompositionAutomaton],
        accept_fn: Callable[[tuple[bool, ...]], bool],
    ):
        check(len(components) > 0, "product of zero automata")
        self.components = tuple(components)
        self.accept_fn = accept_fn

    def initial_state(self):
        return tuple(c.initial_state() for c in self.components)

    def introduce(self, state, vertex, bag):
        return tuple(
            c.introduce(s, vertex, bag) for c, s in zip(self.components, state)
        )

    def forget(self, state, vertex, bag):
        return tuple(c.forget(s, vertex, bag) for c, s in zip(self.components, state))

    def join(self, left, right, bag):
        return tuple(
            c.join(l, r, bag) for c, l, r in zip(self.components, left, right)
        )

    def read(self, state, fact, bag):
        absents = []
        presents = []
        for c, s in zip(self.components, state):
            absent, present = c.read(s, fact, bag)
            absents.append(absent)
            presents.append(present)
        return tuple(absents), tuple(presents)

    def accepts(self, state) -> bool:
        return self.accept_fn(tuple(c.accepts(s) for c, s in zip(self.components, state)))


def conjunction(*components: DecompositionAutomaton) -> ProductAutomaton:
    """Automaton accepting when all components accept."""
    return ProductAutomaton(components, all)


def disjunction(*components: DecompositionAutomaton) -> ProductAutomaton:
    """Automaton accepting when some component accepts."""
    return ProductAutomaton(components, any)


class NegationAutomaton(DecompositionAutomaton):
    """Complement of a deterministic automaton (flip acceptance).

    Valid precisely because the inner automaton is deterministic — the same
    reason MSO on trees is closed under negation via determinization.
    """

    def __init__(self, inner: DecompositionAutomaton):
        self.inner = inner

    def initial_state(self):
        return self.inner.initial_state()

    def introduce(self, state, vertex, bag):
        return self.inner.introduce(state, vertex, bag)

    def forget(self, state, vertex, bag):
        return self.inner.forget(state, vertex, bag)

    def join(self, left, right, bag):
        return self.inner.join(left, right, bag)

    def read(self, state, fact, bag):
        return self.inner.read(state, fact, bag)

    def accepts(self, state) -> bool:
        return not self.inner.accepts(state)


def negation(inner: DecompositionAutomaton) -> NegationAutomaton:
    """Automaton accepting when ``inner`` rejects."""
    return NegationAutomaton(inner)
