"""Tests for existential rules, the chase, and the probabilistic chase."""

import math

import pytest

from repro.baselines import pcc_probability_enumerate
from repro.core import pcc_probability
from repro.instances import Instance, fact
from repro.queries import atom, cq, variables
from repro.rules import (
    ProbabilisticRule,
    RULE_LEVEL,
    TRIGGER_LEVEL,
    certain_answer,
    chase,
    is_weakly_acyclic,
    probabilistic_chase,
    rule,
)
from repro.util import ReproError
from repro.workloads import advisor_kb, citizenship_kb

X, Y, Z = variables("x", "y", "z")


class TestRuleStructure:
    def test_frontier_and_existentials(self):
        r = rule([atom("AdvisedBy", X, Y)], [atom("Author", X, Z), atom("Author", Y, Z)])
        assert r.frontier() == {X, Y}
        assert r.existential_variables() == {Z}

    def test_guardedness(self):
        guarded = rule([atom("R", X, Y)], [atom("P", X)])
        assert guarded.is_guarded()
        unguarded = rule([atom("R", X), atom("S", Y)], [atom("P", X, Y)])
        assert not unguarded.is_guarded()

    def test_empty_rule_rejected(self):
        with pytest.raises(ReproError):
            rule([], [atom("P", X)])


class TestWeakAcyclicity:
    def test_projection_rules_acyclic(self):
        rules = [rule([atom("Citizen", X, Y)], [atom("LivesIn", X, Y)])]
        assert is_weakly_acyclic(rules)

    def test_null_feeding_cycle_detected(self):
        # R(x,y) → ∃z R(y,z): the existential position feeds itself.
        rules = [rule([atom("R", X, Y)], [atom("R", Y, Z)])]
        assert not is_weakly_acyclic(rules)

    def test_kb_rule_sets_acyclic(self):
        assert is_weakly_acyclic([pr.rule for pr in citizenship_kb(2).rules])
        assert is_weakly_acyclic([pr.rule for pr in advisor_kb(2).rules])


class TestChase:
    def test_simple_projection(self):
        inst = Instance([fact("Citizen", "alice", "fr")])
        result = chase(inst, [rule([atom("Citizen", X, Y)], [atom("LivesIn", X, Y)])])
        assert fact("LivesIn", "alice", "fr") in result

    def test_existential_invents_nulls(self):
        inst = Instance([fact("AdvisedBy", "s", "p")])
        result = chase(
            inst, [rule([atom("AdvisedBy", X, Y)], [atom("Author", X, Z), atom("Author", Y, Z)])]
        )
        papers = [f.args[1] for f in result.by_relation("Author")]
        assert len(papers) == 2
        assert papers[0] == papers[1]  # same invented paper for both

    def test_chase_does_not_refire_satisfied_heads(self):
        inst = Instance([fact("AdvisedBy", "s", "p"), fact("Author", "s", "paper1"),
                         fact("Author", "p", "paper1")])
        result = chase(
            inst, [rule([atom("AdvisedBy", X, Y)], [atom("Author", X, Z), atom("Author", Y, Z)])]
        )
        # Head already satisfied: no new nulls.
        assert len(result.by_relation("Author")) == 2

    def test_transitive_rules_terminate(self):
        inst = Instance([fact("E", 1, 2), fact("E", 2, 3)])
        result = chase(inst, [rule([atom("E", X, Y), atom("E", Y, Z)], [atom("E", X, Z)])])
        assert fact("E", 1, 3) in result

    def test_non_terminating_chase_raises(self):
        inst = Instance([fact("R", 1, 2)])
        with pytest.raises(ReproError, match="terminate"):
            chase(inst, [rule([atom("R", X, Y)], [atom("R", Y, Z)])], max_rounds=5)

    def test_certain_answer(self):
        inst = Instance([fact("Citizen", "alice", "fr"), fact("OfficialLanguage", "fr", "french")])
        rules = [
            rule([atom("Citizen", X, Y)], [atom("LivesIn", X, Y)]),
            rule(
                [atom("LivesIn", X, Y), atom("OfficialLanguage", Y, Z)],
                [atom("Speaks", X, Z)],
            ),
        ]
        assert certain_answer(cq(atom("Speaks", "alice", "french")), inst, rules)


class TestProbabilisticChase:
    def test_single_rule_marginal(self):
        inst = Instance([fact("Citizen", "alice", "fr")])
        rules = [ProbabilisticRule(rule([atom("Citizen", X, Y)], [atom("LivesIn", X, Y)]), 0.8)]
        pcc = probabilistic_chase(inst, rules, rounds=2)
        assert math.isclose(
            pcc.fact_probability_enumerate(fact("LivesIn", "alice", "fr")), 0.8
        )

    def test_chained_rules_multiply(self):
        kb = citizenship_kb(1, countries=1, seed=3)
        pcc = probabilistic_chase(kb.instance, kb.rules, rounds=3)
        person_facts = kb.instance.by_relation("Citizen")
        person, country = person_facts[0].args
        lives = fact("LivesIn", person, country)
        known_resident = lives in kb.instance
        expected_lives = 1.0 if known_resident else 0.8
        assert math.isclose(pcc.fact_probability_enumerate(lives), expected_lives)

    def test_multiple_derivations_or_together(self):
        # Two independent derivation paths for the same fact.
        inst = Instance([fact("A", 1), fact("B", 1)])
        rules = [
            ProbabilisticRule(rule([atom("A", X)], [atom("C", X)]), 0.5),
            ProbabilisticRule(rule([atom("B", X)], [atom("C", X)]), 0.5),
        ]
        pcc = probabilistic_chase(inst, rules, rounds=2)
        assert math.isclose(pcc.fact_probability_enumerate(fact("C", 1)), 0.75)

    def test_trigger_vs_rule_level_semantics(self):
        # Two triggers of the same rule: independent at trigger level,
        # perfectly correlated at rule level.
        inst = Instance([fact("A", 1), fact("A", 2)])
        soft = [ProbabilisticRule(rule([atom("A", X)], [atom("C", X)]), 0.5)]
        trigger = probabilistic_chase(inst, soft, rounds=1, semantics=TRIGGER_LEVEL)
        rule_lvl = probabilistic_chase(inst, soft, rounds=1, semantics=RULE_LEVEL)
        q = cq(atom("C", 1), atom("C", 2))
        p_trigger = pcc_probability_enumerate(q, trigger)
        p_rule = pcc_probability_enumerate(q, rule_lvl)
        assert math.isclose(p_trigger, 0.25)
        assert math.isclose(p_rule, 0.5)

    def test_uncertain_base_facts(self):
        inst = Instance([fact("A", 1)])
        rules = [ProbabilisticRule(rule([atom("A", X)], [atom("C", X)]), 0.5)]
        pcc = probabilistic_chase(
            inst, rules, rounds=1, base_probabilities={fact("A", 1): 0.5}
        )
        assert math.isclose(pcc.fact_probability_enumerate(fact("C", 1)), 0.25)

    def test_existential_chase_produces_nulls(self):
        kb = advisor_kb(1, seed=1)
        pcc = probabilistic_chase(kb.instance, kb.rules, rounds=1)
        authors = pcc.instance.by_relation("Author")
        assert any("_z" in str(f.args[1]) for f in authors)

    def test_engine_matches_enumeration_on_chased_instance(self):
        kb = citizenship_kb(2, countries=1, seed=0)
        pcc = probabilistic_chase(kb.instance, kb.rules, rounds=3)
        q = cq(atom("Speaks", X, Y))
        if len(pcc.space) <= 14:
            assert math.isclose(
                pcc_probability(q, pcc),
                pcc_probability_enumerate(q, pcc),
                abs_tol=1e-9,
            )

    def test_derived_probability_monotone_in_rounds(self):
        inst = Instance([fact("E", 1, 2), fact("E", 2, 3), fact("E", 3, 4)])
        rules = [
            ProbabilisticRule(
                rule([atom("E", X, Y), atom("E", Y, Z)], [atom("E", X, Z)]), 0.5
            )
        ]
        shallow = probabilistic_chase(inst, rules, rounds=1)
        deep = probabilistic_chase(inst, rules, rounds=2)
        f = fact("E", 1, 4)
        p_shallow = (
            shallow.fact_probability_enumerate(f) if f in shallow.instance else 0.0
        )
        p_deep = deep.fact_probability_enumerate(f)
        assert p_deep >= p_shallow - 1e-12
