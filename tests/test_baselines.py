"""Tests for the enumeration, Monte-Carlo and Karp–Luby baselines."""

import math

import pytest

from repro.baselines import (
    karp_luby_probability,
    monte_carlo_probability,
    required_samples,
    tid_certain,
    tid_possible,
    tid_probability_enumerate,
)
from repro.instances import TIDInstance, fact
from repro.queries import atom, cq, variables
from repro.util import ReproError

X, Y = variables("x", "y")
Q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))


def small_tid() -> TIDInstance:
    return TIDInstance(
        {
            fact("R", 1): 0.6,
            fact("S", 1, 2): 0.5,
            fact("T", 2): 0.8,
            fact("R", 3): 0.2,
            fact("S", 3, 2): 0.7,
        }
    )


class TestEnumeration:
    def test_probability_by_hand(self):
        tid = TIDInstance({fact("R", 1): 0.6, fact("S", 1, 2): 0.5, fact("T", 2): 0.8})
        assert math.isclose(tid_probability_enumerate(Q, tid), 0.6 * 0.5 * 0.8)

    def test_possible_and_certain(self):
        tid = small_tid()
        assert tid_possible(Q, tid)
        assert not tid_certain(Q, tid)

    def test_certain_when_all_probability_one(self):
        tid = TIDInstance({fact("R", 1): 1.0, fact("S", 1, 2): 1.0, fact("T", 2): 1.0})
        assert tid_certain(Q, tid)

    def test_impossible_query(self):
        tid = TIDInstance({fact("R", 1): 0.5})
        assert not tid_possible(Q, tid)
        assert tid_probability_enumerate(Q, tid) == 0.0

    def test_zero_probability_facts_ignored_for_possibility(self):
        tid = TIDInstance({fact("R", 1): 0.0, fact("S", 1, 2): 1.0, fact("T", 2): 1.0})
        assert not tid_possible(Q, tid)


class TestMonteCarlo:
    def test_estimate_close_to_exact(self):
        tid = small_tid()
        exact = tid_probability_enumerate(Q, tid)
        estimate = monte_carlo_probability(Q, tid, samples=4000, seed=0)
        assert abs(estimate - exact) < 0.05

    def test_requires_positive_samples(self):
        with pytest.raises(ReproError):
            monte_carlo_probability(Q, small_tid(), samples=0)

    def test_deterministic_given_seed(self):
        tid = small_tid()
        a = monte_carlo_probability(Q, tid, samples=200, seed=5)
        b = monte_carlo_probability(Q, tid, samples=200, seed=5)
        assert a == b

    def test_required_samples_formula(self):
        assert required_samples(0.1, 0.05) == math.ceil(math.log(40.0) / 0.02)
        with pytest.raises(ReproError):
            required_samples(0.0, 0.5)


class TestKarpLuby:
    def test_estimate_close_to_exact(self):
        tid = small_tid()
        exact = tid_probability_enumerate(Q, tid)
        estimate = karp_luby_probability(Q, tid, samples=4000, seed=0)
        assert abs(estimate - exact) < 0.05

    def test_zero_when_no_witness(self):
        tid = TIDInstance({fact("R", 1): 0.9})
        assert karp_luby_probability(Q, tid, samples=100) == 0.0

    def test_handles_tiny_probabilities_better_than_naive(self):
        # With minuscule fact probabilities, naive MC sees ~no positive
        # samples while Karp–Luby keeps bounded relative error.
        tid = TIDInstance(
            {fact("R", 1): 1e-4, fact("S", 1, 2): 1e-4, fact("T", 2): 1e-4}
        )
        exact = 1e-12
        kl = karp_luby_probability(Q, tid, samples=3000, seed=1)
        assert kl > 0.0
        assert 0.1 < kl / exact < 10.0

    def test_single_witness_exact_weight(self):
        tid = TIDInstance({fact("R", 1): 0.3, fact("S", 1, 2): 0.5, fact("T", 2): 0.2})
        estimate = karp_luby_probability(Q, tid, samples=500, seed=2)
        # One witness: the estimator is exactly the witness weight.
        assert math.isclose(estimate, 0.3 * 0.5 * 0.2, rel_tol=0.2)
