"""E5 — Bounded event scopes keep PrXML with cie nodes tractable.

The paper's §2.1 result ([7]): on PrXML documents with events, if every node
is in the scope of at most a constant number of events, MSO/tree-pattern
evaluation is PTIME. Operationally: bounded scope width keeps the lineage
circuit tree-like. We measure, on Wikidata-like documents (one contributor
event per entity — scope width 1) versus grid-correlated adversarial
documents (scope width growing with the side):

- the scope width,
- the measured treewidth of the query lineage circuit,
- evaluation time / the width wall.

Run the table:  python benchmarks/bench_scope_prxml.py
Benchmarks:     pytest benchmarks/bench_scope_prxml.py --benchmark-only
"""

import time

import pytest

from repro.circuits import circuit_width
from repro.prxml import build_pattern_lineage, path_pattern, query_probability, scope_width
from repro.util import ReproError
from repro.workloads import adversarial_scope_document, wikidata_like_document

PATTERN = path_pattern("statement")


@pytest.mark.parametrize("entities", [4, 8, 16])
def test_bounded_scope_documents_scale(benchmark, entities):
    doc = wikidata_like_document(entities, contributors=entities, seed=0)
    assert scope_width(doc) == 1
    p = benchmark(query_probability, doc, PATTERN)
    assert 0.0 <= p <= 1.0


def test_adversarial_document_hits_width_wall(benchmark):
    doc = adversarial_scope_document(6, seed=0)

    def attempt():
        try:
            query_probability(doc, PATTERN, max_width=8)
            return "evaluated"
        except ReproError:
            return "width wall"

    outcome = benchmark(attempt)
    assert outcome == "width wall"


def main() -> None:
    print("E5 — event scopes: bounded (Wikidata-like) vs growing (adversarial)")
    print("\nWikidata-like documents (one contributor event per entity):")
    print(f"{'entities':>9} {'nodes':>6} {'scope w':>8} {'circuit w':>10} {'time (s)':>9} {'P':>8}")
    for entities in [4, 8, 16, 32]:
        doc = wikidata_like_document(entities, contributors=entities, seed=0)
        lineage = build_pattern_lineage(doc, PATTERN)
        start = time.perf_counter()
        p = lineage.probability()
        elapsed = time.perf_counter() - start
        print(
            f"{entities:>9} {len(doc.nodes()):>6} {scope_width(doc):>8}"
            f" {circuit_width(lineage.circuit):>10} {elapsed:>9.3f} {p:>8.4f}"
        )

    print("\nadversarial grid-correlated documents:")
    print(f"{'side':>5} {'nodes':>6} {'scope w':>8} {'circuit w':>10} {'outcome':<30}")
    for side in [2, 3, 4, 5]:
        doc = adversarial_scope_document(side, seed=0)
        lineage = build_pattern_lineage(doc, PATTERN)
        width = circuit_width(lineage.circuit)
        try:
            start = time.perf_counter()
            p = lineage.probability(max_width=8)
            elapsed = time.perf_counter() - start
            outcome = f"P={p:.4f} in {elapsed:.3f}s"
        except ReproError:
            outcome = "width wall (> 8): intractable"
        print(
            f"{side:>5} {len(doc.nodes()):>6} {scope_width(doc):>8}"
            f" {width:>10} {outcome:<30}"
        )
    print("\nshape check: scope width 1 → flat circuit width; growing scopes → width wall.")


if __name__ == "__main__":
    main()
