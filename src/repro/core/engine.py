"""The lineage engine: Theorems 1 and 2 of the paper, executable.

Given an uncertain instance, a tree decomposition of its Gaifman graph, and a
deterministic decomposition automaton for the query, one bottom-up pass over
the nice decomposition produces a *lineage circuit* over fact-presence
variables: the circuit is true exactly on the possible worlds satisfying the
query. By construction the circuit is

- **deterministic** (OR children correspond to distinct automaton states or
  to a fact's presence/absence — mutually exclusive events), and
- **decomposable** (AND children range over disjoint sets of read facts),

so on TID instances the query probability is a single linear pass
(:func:`repro.circuits.probability_dd`) — Theorem 1. On pcc-instances the
fact variables are substituted by their annotation gates and the combined
circuit is evaluated by junction-tree message passing — Theorem 2.

A second mode builds the *monotone provenance circuit* of the
nondeterministic automaton run (no negation, one gate per reachable
nondeterministic state), which specializes to semiring provenance for
absorptive semirings — the paper's provenance connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits import Circuit, CompiledCircuit, compile_circuit, probability
from repro.core.cq_automaton import automaton_for
from repro.instances.base import Fact, Instance
from repro.instances.pcc import PCCInstance
from repro.instances.tid import TIDInstance
from repro.treewidth import (
    FORGET,
    INTRODUCE,
    JOIN,
    LEAF,
    READ,
    NiceTree,
    TreeDecomposition,
    build_nice_tree,
    decompose,
)
from repro.util import ReproError, check


@dataclass
class Lineage:
    """Result of a lineage run: the circuit plus structural diagnostics."""

    circuit: Circuit
    nice_tree: NiceTree
    decomposition: TreeDecomposition
    max_profile_size: int
    node_count: int
    fact_variables: dict[Fact, str] = field(default_factory=dict)

    def compiled(self) -> CompiledCircuit:
        """The lineage circuit lowered to the flat IR (compiled once).

        The compiled form is cached on the circuit arena, so every
        evaluation path — probabilities, possible-world checks, sampled
        batches — shares one lowering.
        """
        return compile_circuit(self.circuit)

    def probability_tid(self, tid: TIDInstance) -> float:
        """Theorem 1 evaluation: linear-time pass over the d-D circuit.

        Dispatches through the engine registry (engine ``dd``) so a
        process-wide :func:`repro.circuits.evaluation.force_engine`
        override applies here too.
        """
        return probability(self.compiled(), tid.event_space(), engine="dd")


def instance_decomposition(
    instance: Instance, heuristic: str = "min_fill"
) -> TreeDecomposition:
    """Tree decomposition of the instance's Gaifman graph."""
    graph = instance.gaifman_graph()
    if graph.number_of_nodes() == 0:
        return TreeDecomposition({0: []}, [])
    return decompose(graph, heuristic)


def assign_facts_to_bags(
    instance: Instance, decomposition: TreeDecomposition
) -> dict[int, list[Fact]]:
    """Choose, for every fact, one bag containing all of its constants.

    Existence is guaranteed for valid decompositions because a fact's
    constants form a clique of the Gaifman graph.
    """
    items_at: dict[int, list[Fact]] = {}
    bag_ids = sorted(decomposition.bags)
    # Invert the decomposition once (constant → bags holding it) so each
    # fact intersects the bag sets of its constants instead of scanning all
    # bags — O(|facts| · bag-set size) instead of O(|facts| · |bags|).
    bags_of_constant: dict[object, set[int]] = {}
    for node, bag in decomposition.bags.items():
        for constant in bag:
            bags_of_constant.setdefault(constant, set()).add(node)
    for f in instance.facts():
        candidates: set[int] | None = None
        for constant in frozenset(f.args):
            holding = bags_of_constant.get(constant)
            if holding is None:
                candidates = None
                break
            candidates = holding if candidates is None else candidates & holding
            if not candidates:
                candidates = None
                break
        if candidates is None and f.args:
            raise ReproError(
                f"no bag contains the constants of {f!r}; "
                "is the decomposition valid for this instance?"
            )
        home = min(candidates) if candidates else bag_ids[0]
        items_at.setdefault(home, []).append(f)
    return items_at


def build_lineage(
    instance: Instance,
    query,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
) -> Lineage:
    """Run the deterministic automaton for ``query`` over ``instance``.

    ``query`` may be a CQ, a UCQ, or any :class:`DecompositionAutomaton`.
    Returns the deterministic, decomposable lineage circuit whose variables
    are the facts' :attr:`~repro.instances.base.Fact.variable_name`.
    """
    automaton = automaton_for(query)
    if decomposition is None:
        decomposition = instance_decomposition(instance, heuristic)
    items_at = assign_facts_to_bags(instance, decomposition)
    nice = build_nice_tree(decomposition, items_at)

    circuit = Circuit()
    max_profile = 0
    node_count = 0
    # state_gates maps each nice node (by object identity, postorder) to a
    # dict from automaton state to the gate "the run below is in this state".
    gates_of: dict[int, dict] = {}

    for node in nice.iter_postorder():
        node_count += 1
        if node.kind == LEAF:
            table = {automaton.initial_state(): circuit.true()}
        elif node.kind == INTRODUCE:
            child_table = gates_of.pop(id(node.children[0]))
            table = {}
            for state, gate in child_table.items():
                new_state = automaton.introduce(state, node.vertex, node.bag)
                _accumulate(table, new_state, gate)
            table = _combine(circuit, table)
        elif node.kind == FORGET:
            child_table = gates_of.pop(id(node.children[0]))
            table = {}
            for state, gate in child_table.items():
                new_state = automaton.forget(state, node.vertex, node.bag)
                _accumulate(table, new_state, gate)
            table = _combine(circuit, table)
        elif node.kind == JOIN:
            left_table = gates_of.pop(id(node.children[0]))
            right_table = gates_of.pop(id(node.children[1]))
            table = {}
            for left_state, left_gate in left_table.items():
                for right_state, right_gate in right_table.items():
                    new_state = automaton.join(left_state, right_state, node.bag)
                    _accumulate(
                        table, new_state, circuit.and_gate([left_gate, right_gate])
                    )
            table = _combine(circuit, table)
        elif node.kind == READ:
            child_table = gates_of.pop(id(node.children[0]))
            f: Fact = node.item  # type: ignore[assignment]
            fact_var = circuit.variable(f.variable_name)
            table = {}
            for state, gate in child_table.items():
                absent, present = automaton.read(state, f, node.bag)
                if absent == present:
                    _accumulate(table, absent, gate)
                else:
                    _accumulate(
                        table, absent, circuit.and_gate([gate, circuit.negation(fact_var)])
                    )
                    _accumulate(table, present, circuit.and_gate([gate, fact_var]))
            table = _combine(circuit, table)
        else:  # pragma: no cover
            raise ReproError(f"unknown nice-tree node kind {node.kind!r}")
        max_profile = max(max_profile, len(table))
        gates_of[id(node)] = table

    root_table = gates_of[id(nice.root)]
    accepting = [gate for state, gate in root_table.items() if automaton.accepts(state)]
    circuit.set_output(circuit.or_gate(accepting))
    fact_variables = {f: f.variable_name for f in instance.facts()}
    return Lineage(
        circuit=circuit,
        nice_tree=nice,
        decomposition=decomposition,
        max_profile_size=max_profile,
        node_count=node_count,
        fact_variables=fact_variables,
    )


def _accumulate(table: dict, state, gate) -> None:
    table.setdefault(state, []).append(gate)


def _combine(circuit: Circuit, table: dict) -> dict:
    return {state: circuit.or_gate(gates) for state, gates in table.items()}


# --------------------------------------------------------------------------- #
# Probability front-ends


def tid_probability(
    query,
    tid: TIDInstance,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
) -> float:
    """Theorem 1: exact query probability on a TID instance.

    Linear in the instance for fixed query and decomposition width.
    """
    lineage = build_lineage(tid.instance, query, decomposition, heuristic)
    return lineage.probability_tid(tid)


def pcc_probability(
    query,
    pcc: PCCInstance,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
    max_width: int = 24,
    return_report: bool = False,
):
    """Theorem 2: exact query probability on a pcc-instance.

    Builds a lineage over fact variables, substitutes each fact variable by
    its annotation gate (yielding the combined circuit over event variables),
    and runs junction-tree message passing. Tractable when the combined
    circuit is tree-like — the bounded-treewidth pcc condition.

    Message passing does not require determinism, so for monotone CQ/UCQ
    queries we use the compact nondeterministic (monotone) lineage; the
    deterministic profile circuit is reserved for non-monotone automata.
    """
    from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries

    if isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
        lineage = build_provenance_circuit(pcc.instance, query, decomposition, heuristic)
    else:
        lineage = build_lineage(pcc.instance, query, decomposition, heuristic)
    combined = combine_with_annotations(lineage.circuit, pcc)
    return probability(
        combined,
        pcc.space,
        engine="message_passing",
        heuristic=heuristic,
        max_width=max_width,
        return_report=return_report,
    )


def combine_with_annotations(lineage_circuit: Circuit, pcc: PCCInstance) -> Circuit:
    """Substitute fact variables of a lineage by their annotation gates."""
    combined = Circuit()
    annotation_gate: dict[str, int] = {}
    translation = pcc.circuit.copy_into(
        combined, substitution={}, roots=[pcc.gate_of(f) for f in pcc.facts()]
    )
    for f in pcc.facts():
        annotation_gate[f.variable_name] = translation[pcc.gate_of(f)]
    lineage_translation = lineage_circuit.copy_into(combined, annotation_gate)
    check(lineage_circuit.output is not None, "lineage circuit has no output")
    combined.set_output(lineage_translation[lineage_circuit.output])  # type: ignore[index]
    return combined


def pc_probability(query, pc, **kwargs):
    """Query probability on a pc-instance (formulas compiled to a circuit)."""
    from repro.instances.pcc import from_pc_instance

    return pcc_probability(query, from_pc_instance(pc), **kwargs)


# --------------------------------------------------------------------------- #
# Monotone provenance circuits (nondeterministic run)


class NondeterministicView:
    """Adapter exposing the nondeterministic states inside a profile.

    The CQ automaton's deterministic states are *profiles* (sets of
    nondeterministic states). The provenance construction needs the
    nondeterministic automaton itself; this adapter recovers it from the
    same transition logic by running each singleton through the profile
    functions.
    """

    def __init__(self, cq_automaton):
        self.inner = cq_automaton

    def initial_states(self):
        return list(self.inner.initial_state())

    def introduce(self, state, vertex, bag):
        return list(self.inner.introduce(frozenset({state}), vertex, bag))

    def forget(self, state, vertex, bag):
        return list(self.inner.forget(frozenset({state}), vertex, bag))

    def join(self, left, right, bag):
        return list(self.inner.join(frozenset({left}), frozenset({right}), bag))

    def read_present(self, state, fact, bag):
        _absent, present = self.inner.read(frozenset({state}), fact, bag)
        return list(present)

    def accepts(self, state) -> bool:
        return self.inner.accepts(frozenset({state}))


def build_provenance_circuit(
    instance: Instance,
    query,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
) -> Lineage:
    """Build the *monotone* provenance circuit of a CQ/UCQ over an instance.

    One gate per reachable nondeterministic state; reads guard transitions by
    the fact variable, absence is never mentioned (monotone queries only).
    Evaluating the circuit in an absorptive commutative semiring yields the
    query's semiring provenance (Green et al.) — see
    :mod:`repro.semirings.provenance`.
    """
    from repro.core.cq_automaton import CQAutomaton
    from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries

    if isinstance(query, ConjunctiveQuery):
        inner = CQAutomaton(query)
    elif isinstance(query, UnionOfConjunctiveQueries):
        # Provenance of a union is the sum; build per-disjunct circuits and OR
        # them below via a shared construction.
        inner = None
    else:
        raise ReproError("provenance circuits support CQs and UCQs only")

    if inner is None:
        disjunct_lineages = [
            build_provenance_circuit(instance, q, decomposition, heuristic)
            for q in query.disjuncts
        ]
        merged = Circuit()
        outputs = []
        for lin in disjunct_lineages:
            translation = lin.circuit.copy_into(merged)
            outputs.append(translation[lin.circuit.output])  # type: ignore[index]
        merged.set_output(merged.or_gate(outputs))
        first = disjunct_lineages[0]
        return Lineage(
            circuit=merged,
            nice_tree=first.nice_tree,
            decomposition=first.decomposition,
            max_profile_size=max(
                lin.max_profile_size for lin in disjunct_lineages
            ),
            node_count=first.node_count,
            fact_variables={f: f.variable_name for f in instance.facts()},
        )

    view = NondeterministicView(inner)
    if decomposition is None:
        decomposition = instance_decomposition(instance, heuristic)
    items_at = assign_facts_to_bags(instance, decomposition)
    nice = build_nice_tree(decomposition, items_at)

    circuit = Circuit()
    gates_of: dict[int, dict] = {}
    max_states = 0
    node_count = 0

    for node in nice.iter_postorder():
        node_count += 1
        if node.kind == LEAF:
            table = {state: [circuit.true()] for state in view.initial_states()}
        elif node.kind in (INTRODUCE, FORGET):
            child_table = gates_of.pop(id(node.children[0]))
            step = view.introduce if node.kind == INTRODUCE else view.forget
            table = {}
            for state, gate in child_table.items():
                for new_state in step(state, node.vertex, node.bag):
                    _accumulate(table, new_state, gate)
        elif node.kind == JOIN:
            left_table = gates_of.pop(id(node.children[0]))
            right_table = gates_of.pop(id(node.children[1]))
            table = {}
            for ls, lg in left_table.items():
                for rs, rg in right_table.items():
                    for new_state in view.join(ls, rs, node.bag):
                        _accumulate(table, new_state, circuit.and_gate([lg, rg]))
        elif node.kind == READ:
            child_table = gates_of.pop(id(node.children[0]))
            f: Fact = node.item  # type: ignore[assignment]
            fact_var = circuit.variable(f.variable_name)
            table = {}
            for state, gate in child_table.items():
                # Not using the fact: free pass (monotone — absence unneeded).
                _accumulate(table, state, gate)
                for new_state in view.read_present(state, f, node.bag):
                    if new_state != state:
                        _accumulate(
                            table, new_state, circuit.and_gate([gate, fact_var])
                        )
        else:  # pragma: no cover
            raise ReproError(f"unknown nice-tree node kind {node.kind!r}")
        table = _combine(circuit, table)
        max_states = max(max_states, len(table))
        gates_of[id(node)] = table

    root_table = gates_of[id(nice.root)]
    accepting = [gate for state, gate in root_table.items() if view.accepts(state)]
    circuit.set_output(circuit.or_gate(accepting))
    return Lineage(
        circuit=circuit,
        nice_tree=nice,
        decomposition=decomposition,
        max_profile_size=max_states,
        node_count=node_count,
        fact_variables={f: f.variable_name for f in instance.facts()},
    )
