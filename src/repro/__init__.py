"""repro — Structurally Tractable Uncertain Data.

A complete implementation of the systems described in Antoine Amarilli's
SIGMOD 2015 PhD-symposium paper "Structurally Tractable Uncertain Data":

- uncertain relational data (TID, c-/pc-/pcc-instances) with exact query
  evaluation that is linear-time on bounded-treewidth instances (Theorems
  1–2), via deterministic decomposition automata, lineage circuits, and
  junction-tree message passing;
- probabilistic XML with local (ind/mux) and scoped global (cie) uncertainty;
- semiring provenance through provenance circuits;
- order-incomplete data (po-relations) with a bag-semantics positive
  relational algebra;
- conditioning on observations and crowd question selection;
- probabilistic rules via the trigger-level probabilistic chase;
- baselines: possible-world enumeration, Monte Carlo, Karp–Luby, Shannon
  expansion, Dalvi–Suciu safe plans.

Quickstart::

    from repro import TIDInstance, fact, cq, atom, variables, tid_probability
    x, y = variables("x", "y")
    q = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = TIDInstance({fact("R", 1): 0.6, fact("S", 1, 2): 0.5, fact("T", 2): 0.8})
    print(tid_probability(q, tid))   # exact, via the treewidth-based engine

This package root is the blessed public surface: the core verbs
(:func:`make_instance`, :func:`homomorphisms`,
:func:`build_provenance_circuit`, :func:`compile_circuit`,
:func:`probability_batch`, :func:`certain_answers`), introspection
(:func:`capabilities`), and configuration (:func:`configure` /
:func:`overrides` over the knob registry in :mod:`repro.config`).
Submodules remain importable for specialized entry points, but everything
``examples/quickstart.py`` needs comes from ``repro`` directly.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.baselines import (
    karp_luby_probability,
    monte_carlo_probability,
    pc_probability_enumerate,
    pcc_probability_enumerate,
    tid_certain,
    tid_possible,
    tid_probability_enumerate,
)
from repro.circuits import (
    Circuit,
    CompiledCircuit,
    available_engines,
    capabilities,
    compile_circuit,
    distributed_hosts,
    numpy_available,
    plan_from_bytes,
    pool_stats,
    probability_batch,
    probability_dd,
    set_default_engine,
    wmc_enumerate,
    wmc_message_passing,
    wmc_shannon,
)
from repro.circuits import probability as circuit_probability
from repro.conditioning import ConditionedInstance, SimulatedCrowd, run_crowd_session
from repro.config import configure, overrides
from repro.core import (
    BipartiteAutomaton,
    CQAutomaton,
    DecompositionAutomaton,
    Lineage,
    ParityAutomaton,
    STConnectivityAutomaton,
    build_lineage,
    build_provenance_circuit,
    pc_probability,
    pcc_probability,
    tid_probability,
)
from repro.cqa import (
    certain_answers,
    certain_oracle,
    classify,
    cqa_stats,
    fo_rewriting,
    reset_cqa_stats,
)
from repro.events import EventSpace, Formula, var
from repro.instances import (
    AbstractInstance,
    CInstance,
    ColumnarInstance,
    Fact,
    Instance,
    PCCInstance,
    PCInstance,
    TIDInstance,
    fact,
    instance_backend,
    instance_backend_set,
    make_instance,
    pc_from_tid,
    pcc_from_pc,
    pcc_from_tid,
    set_instance_backend,
)
from repro.order import LabeledPoset, antichain, chain
from repro.prxml import PrXMLDocument, TreePattern, path_pattern, query_probability
from repro.queries import (
    ConjunctiveQuery,
    KeySpec,
    UnionOfConjunctiveQueries,
    atom,
    cq,
    homomorphisms,
    is_safe,
    key_spec,
    safe_plan_probability,
    ucq,
    variables,
)
from repro.rules import ProbabilisticRule, chase, probabilistic_chase, rule
from repro.semirings import Semiring, circuit_provenance, reference_provenance
from repro.service import ServiceClient, spawn_service
from repro.treewidth import TreeDecomposition, decompose, exact_treewidth
from repro.workloads import (
    ALL_TRIPS,
    cqa_trichotomy_queries,
    key_violation_instance,
    rst_chain_tid,
    table1_cinstance,
    table1_pc_instance,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_TRIPS",
    "AbstractInstance",
    "BipartiteAutomaton",
    "CInstance",
    "CQAutomaton",
    "ColumnarInstance",
    "Circuit",
    "CompiledCircuit",
    "ConditionedInstance",
    "ConjunctiveQuery",
    "DecompositionAutomaton",
    "EventSpace",
    "Fact",
    "Formula",
    "Instance",
    "KeySpec",
    "LabeledPoset",
    "Lineage",
    "PCCInstance",
    "PCInstance",
    "ParityAutomaton",
    "PrXMLDocument",
    "ProbabilisticRule",
    "STConnectivityAutomaton",
    "Semiring",
    "ServiceClient",
    "SimulatedCrowd",
    "TIDInstance",
    "TreeDecomposition",
    "TreePattern",
    "UnionOfConjunctiveQueries",
    "antichain",
    "atom",
    "available_engines",
    "build_lineage",
    "build_provenance_circuit",
    "capabilities",
    "certain_answers",
    "certain_oracle",
    "chain",
    "chase",
    "circuit_probability",
    "circuit_provenance",
    "classify",
    "compile_circuit",
    "configure",
    "cq",
    "cqa_stats",
    "cqa_trichotomy_queries",
    "decompose",
    "distributed_hosts",
    "exact_treewidth",
    "fact",
    "fo_rewriting",
    "homomorphisms",
    "instance_backend",
    "instance_backend_set",
    "is_safe",
    "karp_luby_probability",
    "key_spec",
    "key_violation_instance",
    "make_instance",
    "monte_carlo_probability",
    "numpy_available",
    "overrides",
    "path_pattern",
    "pc_from_tid",
    "pc_probability",
    "pc_probability_enumerate",
    "pcc_from_pc",
    "pcc_from_tid",
    "pcc_probability",
    "pcc_probability_enumerate",
    "plan_from_bytes",
    "pool_stats",
    "probabilistic_chase",
    "probability_batch",
    "probability_dd",
    "query_probability",
    "reference_provenance",
    "reset_cqa_stats",
    "rst_chain_tid",
    "rule",
    "run_crowd_session",
    "safe_plan_probability",
    "set_default_engine",
    "set_instance_backend",
    "spawn_service",
    "table1_cinstance",
    "table1_pc_instance",
    "tid_certain",
    "tid_possible",
    "tid_probability",
    "tid_probability_enumerate",
    "ucq",
    "var",
    "variables",
    "wmc_enumerate",
    "wmc_message_passing",
    "wmc_shannon",
]
