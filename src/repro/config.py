"""One registry for every process-wide knob.

Historically each knob grew its own triple — a getter, a ``set_X``
setter, and an ``X_set`` context manager, plus a ``REPRO_X`` environment
fallback — scattered across the modules that own the state.  This module
collapses the *surface*: one :func:`configure` call sets any number of
knobs by name, one :func:`overrides` context manager scopes any number
of them, and :func:`describe` lists them all with their current values.

The state itself stays where it always lived (the owning modules), so
the old names keep working — the per-knob ``X_set`` context managers are
now thin shims over :func:`overrides`.

>>> from repro import config
>>> config.configure(engine="message_passing", parallel_workers=0)
>>> with config.overrides(instance_backend="columnar", pipeline_depth=4):
...     ...                                        # scoped; restored on exit

Knob values round-trip: :func:`overrides` snapshots through the same
accessors it restores through, so "no override installed" (fall back to
the ``REPRO_*`` environment) is faithfully reinstated — it does not get
frozen into whatever the environment said at entry.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable

from repro.circuits import evaluation as _evaluation
from repro.circuits import distributed as _distributed
from repro.circuits import parallel as _parallel
from repro.circuits import plancache as _plancache
from repro.instances import columnar as _columnar
from repro.util import ReproError

__all__ = ["Knob", "configure", "describe", "get", "knobs", "overrides"]


@dataclass(frozen=True)
class Knob:
    """One registered knob: accessors plus documentation."""

    name: str
    get: Callable[[], Any]
    set: Callable[[Any], None]
    doc: str
    env: str | None = None


def _set_tls(value: dict | None) -> None:
    if value is None:
        _distributed.set_distributed_tls()
    else:
        _distributed.set_distributed_tls(**value)


# Raw-override accessors: these two knobs' public getters return the
# *effective* value (environment fallback / provider ladder), which must
# not be pinned on restore — snapshot the override itself instead.
def _instance_backend_override() -> str | None:
    return _columnar._BACKEND


def _auth_provider_override():
    return _distributed._AUTH_PROVIDER


_KNOBS: dict[str, Knob] = {
    knob.name: knob
    for knob in (
        Knob(
            "engine",
            _evaluation.default_engine,
            _evaluation.set_default_engine,
            "Default probability engine when a call names none.",
        ),
        Knob(
            "forced_engine",
            _evaluation.forced_engine,
            _evaluation.force_engine,
            "Engine override trumping every per-call choice (None = off).",
        ),
        Knob(
            "instance_backend",
            _instance_backend_override,
            _columnar.set_instance_backend,
            "Default instance backend for make_instance and the generators "
            "(None = follow the environment).",
            "REPRO_INSTANCE_BACKEND",
        ),
        Knob(
            "parallel_workers",
            _parallel.parallel_workers,
            _parallel.set_parallel_workers,
            "Local worker processes for sharded batch evaluation (0 = serial).",
            "REPRO_PARALLEL_WORKERS",
        ),
        Knob(
            "distributed_hosts",
            _distributed.distributed_hosts,
            _distributed.set_distributed_hosts,
            "Remote worker host:port list (empty = stay local).",
            "REPRO_DISTRIBUTED_HOSTS",
        ),
        Knob(
            "distributed_secret",
            _distributed.distributed_secret,
            _distributed.set_distributed_secret,
            "Shared HMAC worker-auth secret (None = unauthenticated).",
            "REPRO_DISTRIBUTED_SECRET",
        ),
        Knob(
            "distributed_tls",
            _distributed.distributed_tls,
            _set_tls,
            "TLS knob dict (certfile/keyfile/cafile/allow_plaintext; None = off).",
            "REPRO_DISTRIBUTED_TLS_*",
        ),
        Knob(
            "auth_provider",
            _auth_provider_override,
            _distributed.set_auth_provider,
            "Explicitly installed AuthProvider, overriding the TLS/HMAC ladder "
            "(None = derive from the other knobs).",
        ),
        Knob(
            "pipeline_depth",
            _distributed.pipeline_depth,
            _distributed.set_pipeline_depth,
            "Task frames kept in flight per worker connection (1 = lockstep).",
            "REPRO_DISTRIBUTED_PIPELINE",
        ),
        Knob(
            "plan_cache_dir",
            _plancache.plan_cache_dir,
            _plancache.set_plan_cache_dir,
            "On-disk compiled-plan cache directory (None = cache off).",
            "REPRO_PLAN_CACHE_DIR",
        ),
        Knob(
            "plan_cache_limit_bytes",
            _plancache.plan_cache_limit_bytes,
            _plancache.set_plan_cache_limit_bytes,
            "Plan-cache directory size bound triggering LRU eviction.",
            "REPRO_PLAN_CACHE_LIMIT_BYTES",
        ),
        Knob(
            "plan_cache_min_gates",
            _plancache.min_gates,
            _plancache.set_min_gates,
            "Gate count below which circuits bypass the plan cache.",
            "REPRO_PLAN_CACHE_MIN_GATES",
        ),
    )
}


def knobs() -> tuple[str, ...]:
    """All registered knob names, sorted."""
    return tuple(sorted(_KNOBS))


def _knob(name: str) -> Knob:
    knob = _KNOBS.get(name)
    if knob is None:
        known = ", ".join(sorted(_KNOBS))
        raise ReproError(f"unknown knob {name!r}; known knobs: {known}")
    return knob


def get(name: str) -> Any:
    """The current value of one knob (the override, not the env fallback)."""
    return _knob(name).get()


def describe() -> dict[str, dict[str, Any]]:
    """Every knob with its current value, docstring, and env fallback."""
    return {
        name: {"value": knob.get(), "doc": knob.doc, "env": knob.env}
        for name, knob in sorted(_KNOBS.items())
    }


def configure(**values: Any) -> None:
    """Set any number of knobs by name: ``configure(engine="dd", ...)``.

    All names are validated before anything is applied; if a *setter*
    rejects its value midway, the knobs already changed are rolled back
    so a failed call leaves the process as it found it.
    """
    items = [(_knob(name), value) for name, value in sorted(values.items())]
    applied: list[tuple[Knob, Any]] = []
    try:
        for knob, value in items:
            previous = knob.get()
            knob.set(value)
            applied.append((knob, previous))
    except BaseException:
        for knob, previous in reversed(applied):
            knob.set(previous)
        raise


@contextmanager
def overrides(**values: Any):
    """Scope any number of knob changes, restoring prior values on exit.

    The single replacement for the per-knob ``X_set`` context managers
    (which now delegate here)::

        with config.overrides(engine="shannon", parallel_workers=2):
            ...
    """
    snapshot = [(_knob(name), _knob(name).get()) for name in sorted(values)]
    configure(**values)
    try:
        yield
    finally:
        for knob, previous in reversed(snapshot):
            knob.set(previous)
