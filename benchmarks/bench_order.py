"""E8 — order uncertainty: tractable structures vs the hard general case.

Section 3's claims, measured:

- counting possible worlds (linear extensions) is #P-hard in general
  ([Brightwell–Winkler]) — the downset DP degrades on wide random posets —
  but polynomial on the series-parallel posets produced by the po-relation
  algebra (union/concat);
- possible-world *membership* is polynomial for distinct labels and total /
  empty orders, and needs backtracking with duplicated labels (log merging);
- the algebra itself (selection/projection/union/product) is cheap.

Run the table:  python benchmarks/bench_order.py
Benchmarks:     pytest benchmarks/bench_order.py --benchmark-only
"""

import time

import pytest

from repro.order import (
    antichain,
    chain,
    concat,
    count_linear_extensions,
    count_linear_extensions_sp,
    is_possible_world,
    product_direct,
    sample_linear_extension,
    union,
)
from repro.workloads import generate_logs, true_interleaving


def sp_poset(blocks: int):
    """Alternating union/concat of small chains: series-parallel by construction."""
    poset = chain(["a", "b"], "c0_")
    for i in range(1, blocks):
        term = chain([f"x{i}", f"y{i}"], f"c{i}_")
        poset = union(poset, term) if i % 2 else concat(poset, term)
    return poset


@pytest.mark.parametrize("blocks", [4, 8, 16])
def test_sp_counting_polynomial(benchmark, blocks):
    poset = sp_poset(blocks)
    count = benchmark(count_linear_extensions_sp, poset)
    assert count >= 1


def test_downset_dp_on_antichain(benchmark):
    poset = union(antichain(range(7), "a"), chain(range(7), "c"))
    count = benchmark(count_linear_extensions, poset)
    assert count > 0


def test_membership_distinct_labels_fast(benchmark):
    workload = generate_logs(3, 6, seed=0, shared_vocabulary=False)
    truth = true_interleaving(workload, seed=1)
    assert benchmark(is_possible_world, workload.merged, truth)


def test_membership_duplicate_labels_backtracking(benchmark):
    workload = generate_logs(3, 6, seed=0, shared_vocabulary=True)
    truth = true_interleaving(workload, seed=1)
    assert benchmark(is_possible_world, workload.merged, truth)


def test_uniform_sampling(benchmark):
    workload = generate_logs(2, 8, seed=0)
    extension = benchmark(sample_linear_extension, workload.merged, 7)
    assert len(extension) == 16


def main() -> None:
    print("E8 — order uncertainty")
    print("\ncounting possible worlds: series-parallel (poly) vs downset DP:")
    print(f"{'elements':>9} {'SP count (s)':>13} {'DP count (s)':>13} {'#worlds':>22}")
    for blocks in [4, 6, 8, 10]:
        poset = sp_poset(blocks)
        start = time.perf_counter()
        sp_count = count_linear_extensions_sp(poset)
        sp_time = time.perf_counter() - start
        start = time.perf_counter()
        dp_count = count_linear_extensions(poset)
        dp_time = time.perf_counter() - start
        assert sp_count == dp_count
        print(f"{len(poset):>9} {sp_time:>13.4f} {dp_time:>13.4f} {sp_count:>22,}")

    print("\nmembership testing on merged logs (3 machines x n events):")
    print(f"{'n/log':>6} {'distinct labels (s)':>20} {'duplicate labels (s)':>21}")
    for n in [4, 6, 8, 10]:
        distinct = generate_logs(3, n, seed=0, shared_vocabulary=False)
        shared = generate_logs(3, n, seed=0, shared_vocabulary=True)
        t1 = true_interleaving(distinct, seed=1)
        t2 = true_interleaving(shared, seed=1)
        start = time.perf_counter()
        assert is_possible_world(distinct.merged, t1)
        distinct_time = time.perf_counter() - start
        start = time.perf_counter()
        assert is_possible_world(shared.merged, t2)
        shared_time = time.perf_counter() - start
        print(f"{n:>6} {distinct_time:>20.4f} {shared_time:>21.4f}")

    print("\nalgebra operator costs (two 6-element chains):")
    left, right = chain(range(6), "l"), chain(range(100, 106), "r")
    for name, op in (
        ("union", lambda: union(left, right)),
        ("concat", lambda: concat(left, right)),
        ("product_direct", lambda: product_direct(left, right)),
    ):
        start = time.perf_counter()
        result = op()
        print(f"  {name:<15} {time.perf_counter() - start:>8.4f}s"
              f"  ({len(result)} elements)")
    print("\nshape check: SP counting stays flat; duplicate-label membership"
          " costs more than distinct-label; DP blows up on wide posets.")


if __name__ == "__main__":
    main()
