"""Distributed shard execution over wire-serialized circuit plans: stage 5.

The sharded worker pool (:mod:`repro.circuits.parallel`, fourth stage) is
bounded by one machine. This module fans the *same* deterministic shards out
over TCP so any number of hosts can chew on one batch or Monte-Carlo run:

- **Wire format** — :func:`plan_to_bytes` / :func:`plan_from_bytes` pack a
  compiled circuit's int32 CSR buffers, its level schedule, and the metadata
  a worker needs (``size``/``output``/``n_vars``) into a self-describing,
  versioned, CRC-checksummed binary blob (layout table in
  ``ARCHITECTURE.md``). Corrupted, truncated, or wrong-version payloads are
  rejected with :class:`~repro.util.ReproError` before any evaluation can
  happen. Packing and unpacking work with or without numpy (the pure-python
  path uses :mod:`array`), so a numpy-less host can still decode and
  evaluate a plan with the scalar interpreter.
- **Protocol** — length-prefixed frames over TCP (``uint32`` length, one
  message-kind byte, a JSON header, a binary blob). A coordinator publishes
  the plan (and, for Karp–Luby, the witness tables) **once per connection**,
  then streams tiny shard descriptors; workers answer with hit counts or
  output slices. :class:`WorkerServer` is the worker side; the CLI exposes
  it as ``repro-worker serve`` / ``python -m repro serve``.
- **Persistent runtime** — a module-level :class:`HostPool` owns one
  authenticated TCP connection per worker host, kept open **across**
  ``evaluate_batch``/``probability_batch``/sampling calls on a dedicated
  event-loop thread. Plans cross the wire at most once per worker per
  circuit: the coordinator offers a content digest first
  (``PLAN_OFFER`` → ``PLAN_HAVE``/``PLAN_NEED``) and ships the blob only
  on ``PLAN_NEED``. Shard dispatch is a **work-stealing queue**: an idle
  connection pulls the next ``(seed, shard_index, count)`` descriptor, and
  when the queue runs dry it re-runs descriptors still in flight on slower
  hosts, so one slow host never gates the merge — determinism is
  untouched because a shard's content depends only on its descriptor and
  results merge keyed by shard id (first answer wins). Idle connections
  are health-checked with a ``PING`` heartbeat before reuse and
  transparently reconnected, so a bounced worker rejoins the pool (and is
  re-sent any plan it lost). **A shard is retried on worker disconnect**
  (on another worker, or locally when none remain), exactly as before.
- **Auth + transport security** — a pluggable :class:`AuthProvider` seam.
  Shared-secret authentication (a worker started with ``repro serve
  --secret …`` or ``REPRO_DISTRIBUTED_SECRET`` embeds a random challenge
  in its ``HELLO`` and requires an HMAC-SHA256 response) remains one
  provider; :class:`TLSAuth` wraps every socket in TLS — mutual TLS when
  a CA bundle demands client certificates — configured by ``repro serve
  --tls-cert/--tls-key/--tls-ca`` and the ``REPRO_DISTRIBUTED_TLS_*``
  knobs, with a plaintext retry only when explicitly allowed
  (``REPRO_DISTRIBUTED_TLS_ALLOW_PLAINTEXT``).
- **Capability handshake + pipelining + elastic membership** — ``HELLO``
  carries a capability set (:data:`PROTOCOL_CAPS`) and peers restrict
  themselves to the intersection, so mixed worker versions keep serving
  each other (only an empty intersection rejects). Connections whose
  worker negotiated ``pipeline`` keep :func:`pipeline_depth` task frames
  in flight with out-of-order RESULT correlation by shard id — shard N+1
  crosses the wire while shard N computes. Workers may also dial *in*:
  ``repro serve --register host:port`` REGISTERs with the coordinator's
  registry (``REPRO_DISTRIBUTED_REGISTRY_BIND`` / :func:`start_registry`)
  and joins the default host list until its registration link drops —
  an autoscaler adds and drains hosts mid-run with no static config.

Knob: ``hosts=`` on the entry points (and on the sampling baselines),
defaulting to the process-wide :func:`distributed_hosts` (set with
:func:`set_distributed_hosts`, the scoped :func:`distributed_hosts_set`,
the ``REPRO_DISTRIBUTED_HOSTS`` environment variable — a comma-separated
``host:port`` list — or the CLI ``--hosts`` flag). An empty host list means
"stay local": every entry point then defers to the worker pool / in-process
kernels, so the five execution tiers degrade gracefully top to bottom.
Unreachable hosts are warned about once per process and skipped; a run
whose every worker dies still completes locally with identical results.
:func:`pool_stats` exposes the runtime's counters (connects, reconnects,
digest hits, plans published, steals, per-host task counts);
:func:`reset_pool` drops the persistent connections (the per-call baseline
benchmarks measure against).
"""

from __future__ import annotations

import asyncio
import atexit
import hashlib
import hmac as hmac_module
import json
import os
import secrets as secrets_module
import ssl
import struct
import sys
import threading
import warnings
import zlib
from collections import deque

from repro.circuits import compiled as _compiled
from repro.circuits import parallel as _parallel
from repro.circuits.compiled import numpy_module
from repro.util import ReproError, check

# --------------------------------------------------------------------------- #
# wire format: versioned, checksummed plan serialization

#: Magic bytes opening every wire blob (``R``\ epro ``C``\ ircuit ``P``\ lan).
WIRE_MAGIC = b"RCP1"

#: Version of the wire layout; bumped on any incompatible change.
WIRE_VERSION = 1

#: Version of the *connection* protocol, carried in HELLO and checked by
#: the coordinator — distinct from the blob layout version above so either
#: can move alone. Bumped to 2 when the digest handshake (PLAN_OFFER /
#: PLAN_HAVE / PLAN_NEED) and the AUTH challenge became part of every
#: conversation: a version-1 peer would not merely miss features, it would
#: drop the connection on the first unknown frame, so mismatches must fail
#: loudly at hello time instead. From there on the int is frozen: new
#: features negotiate through the capability set below instead of another
#: bump, so mixed worker versions keep serving each other.
PROTOCOL_VERSION = 2

#: What a plain version-2 peer can do. A HELLO without a ``caps`` entry
#: (an older build) is assumed to speak exactly this set — the behaviours
#: the version-2 protocol already required.
V2_BASELINE_CAPS = frozenset({"mc", "kl", "eval", "ping", "plan-offer"})

#: Everything this build speaks. HELLO carries ``sorted(PROTOCOL_CAPS)``
#: and each side restricts itself to the *intersection* with its peer's
#: set: a worker missing ``pipeline`` is simply driven lockstep, a
#: coordinator that never registers ignores ``register``, and only an
#: empty intersection is a hard handshake failure. ``caps`` itself is
#: advertised so peers can tell "negotiated baseline" from "legacy hello".
PROTOCOL_CAPS = V2_BASELINE_CAPS | frozenset({"caps", "pipeline", "register"})


def negotiate_caps(meta: dict, peer: str) -> frozenset:
    """The capability set shared with a peer, from its HELLO metadata.

    A hello without ``caps`` must carry the exact legacy version int (the
    old all-or-nothing check) and grants :data:`V2_BASELINE_CAPS`. With
    ``caps`` present the version int is advisory and the intersection with
    :data:`PROTOCOL_CAPS` decides; an empty intersection — nothing both
    sides can do — is the only remaining hard rejection.
    """
    advertised = meta.get("caps")
    if advertised is None:
        if meta.get("version") != PROTOCOL_VERSION:
            raise ReproError(
                f"peer {peer} speaks protocol {meta.get('version')!r} with no "
                f"capability set, not {PROTOCOL_VERSION}"
            )
        return V2_BASELINE_CAPS
    shared = PROTOCOL_CAPS & frozenset(str(cap) for cap in advertised)
    if not (shared - {"caps"}):
        raise ReproError(
            f"peer {peer} shares no protocol capabilities with this build "
            f"(it offered {sorted(str(c) for c in advertised)!r})"
        )
    return shared

#: Fixed wire header: magic, version, flags, crc32(meta+payload), meta
#: length, payload length — little-endian, 24 bytes.
_HEADER = struct.Struct("<4sHHIIQ")

#: Section type codes: ``i`` int32, ``f`` float32, ``d`` float64.
_DTYPES = {"i": ("<i4", 4), "f": ("<f4", 4), "d": ("<f8", 8)}

#: Hard cap on a single protocol frame / wire blob (guards a corrupt length
#: prefix from allocating unbounded memory).
MAX_FRAME_BYTES = 1 << 31


def _values_to_bytes(typecode: str, values) -> bytes:
    """Little-endian bytes of a flat numeric sequence, with or without numpy."""
    np = numpy_module()
    dtype, itemsize = _DTYPES[typecode]
    if np is not None:
        return np.ascontiguousarray(values, dtype=dtype).reshape(-1).tobytes()
    import array

    arr = array.array(typecode, [v for v in values])
    check(arr.itemsize == itemsize, f"platform array('{typecode}') width unsupported")
    if sys.byteorder == "big":  # pragma: no cover - little-endian dev hosts
        arr.byteswap()
    return arr.tobytes()


def _values_from_bytes(typecode: str, raw: bytes, arrays: bool = False):
    """Inverse of :func:`_values_to_bytes`.

    Returns a python list by default (what the numpy-less wire interpreter
    indexes). With ``arrays=True`` the caller gets the cheapest flat
    sequence instead — a numpy array when available, else an
    ``array.array`` — skipping the ``tolist`` round-trip; the plan cache
    loads through this so a disk hit never materializes python lists.
    """
    np = numpy_module()
    dtype, itemsize = _DTYPES[typecode]
    check(len(raw) % itemsize == 0, "wire section length is not a whole item count")
    if np is not None:
        values = np.frombuffer(raw, dtype=dtype)
        # ``copy`` detaches from (and drops the reference pinning) the blob.
        return values.copy() if arrays else values.tolist()
    import array

    arr = array.array(typecode)
    arr.frombytes(raw)
    if sys.byteorder == "big":  # pragma: no cover - little-endian dev hosts
        arr.byteswap()
    return arr if arrays else arr.tolist()


def _pack_blob(meta: dict, sections: list[tuple[str, str, object]]) -> bytes:
    """Pack named numeric sections + JSON metadata into one checksummed blob.

    ``sections`` is ``[(name, typecode, values), ...]``; the JSON header
    gains a ``sections`` entry of ``[name, typecode, offset, nbytes]`` rows
    so the blob is self-describing — a reader needs nothing but this module.
    """
    payload_parts: list[bytes] = []
    directory = []
    offset = 0
    for name, typecode, values in sections:
        raw = _values_to_bytes(typecode, values)
        directory.append([name, typecode, offset, len(raw)])
        payload_parts.append(raw)
        offset += len(raw)
    payload = b"".join(payload_parts)
    meta = dict(meta, sections=directory)
    meta_bytes = json.dumps(meta, separators=(",", ":"), sort_keys=True).encode()
    crc = zlib.crc32(payload, zlib.crc32(meta_bytes)) & 0xFFFFFFFF
    header = _HEADER.pack(
        WIRE_MAGIC, WIRE_VERSION, 0, crc, len(meta_bytes), len(payload)
    )
    return header + meta_bytes + payload


def _unpack_blob(data: bytes, arrays: bool = False) -> tuple[dict, dict]:
    """Validate and unpack a :func:`_pack_blob` blob; raises on any damage.

    ``arrays=True`` is forwarded to :func:`_values_from_bytes` — sections
    come back as flat arrays instead of python lists.
    """
    check(isinstance(data, (bytes, bytearray, memoryview)), "wire payload must be bytes")
    data = bytes(data)
    check(
        len(data) >= _HEADER.size,
        f"wire payload truncated: {len(data)} bytes is shorter than the header",
    )
    magic, version, _flags, crc, meta_len, payload_len = _HEADER.unpack_from(data)
    check(magic == WIRE_MAGIC, f"not a circuit-plan wire payload (magic {magic!r})")
    check(
        version == WIRE_VERSION,
        f"unsupported wire version {version} (this build speaks {WIRE_VERSION})",
    )
    expected = _HEADER.size + meta_len + payload_len
    check(
        len(data) == expected,
        f"wire payload truncated or padded: expected {expected} bytes, got {len(data)}",
    )
    meta_bytes = data[_HEADER.size : _HEADER.size + meta_len]
    payload = data[_HEADER.size + meta_len :]
    actual = zlib.crc32(payload, zlib.crc32(meta_bytes)) & 0xFFFFFFFF
    check(actual == crc, "wire payload corrupt: checksum mismatch")
    try:
        meta = json.loads(meta_bytes)
    except ValueError as exc:  # pragma: no cover - crc catches random damage
        raise ReproError(f"wire metadata is not valid JSON: {exc}") from None
    out: dict[str, list] = {}
    for name, typecode, offset, nbytes in meta.pop("sections"):
        check(typecode in _DTYPES, f"unknown wire section type {typecode!r}")
        check(
            0 <= offset and offset + nbytes <= len(payload),
            f"wire section {name!r} overruns the payload",
        )
        out[name] = _values_from_bytes(
            typecode, payload[offset : offset + nbytes], arrays
        )
    return meta, out


def plan_to_bytes(compiled) -> bytes:
    """Serialize a compiled circuit's batch plan to the versioned wire format.

    Packs the four int32 CSR buffers, the per-gate level schedule
    (:func:`repro.circuits.compiled.gate_levels` — redundant with the CSR
    arrays, carried as an integrity check a receiver re-verifies), and the
    ``size``/``output``/``n_vars`` metadata. The result is cached on the
    compiled circuit, so repeated connections reuse one encoding.
    """
    compiled = _compiled.compile_circuit(compiled)
    cached = compiled._wire_cache
    if cached is None:
        levels = compiled.levels_list()
        arrays = compiled._np32
        kinds, offsets, indices, var_slot = (
            arrays
            if arrays is not None
            else (
                compiled.kinds,
                compiled.offsets,
                compiled.indices,
                compiled.var_slot,
            )
        )
        cached = _pack_blob(
            {
                "kind": "plan",
                "size": compiled.size,
                "output": compiled.output,
                "n_vars": len(compiled.var_names),
            },
            [
                ("kinds", "i", kinds),
                ("offsets", "i", offsets),
                ("indices", "i", indices),
                ("var_slot", "i", var_slot),
                ("levels", "i", levels),
            ],
        )
        compiled._wire_cache = cached
        if compiled._wire_digest is None:
            compiled._wire_digest = plan_checksum(cached)
        from repro.circuits import plancache

        if plancache.enabled() and compiled.size >= plancache.min_gates():
            plancache.store_plan_blob(compiled._wire_digest, cached)
    return cached


def plan_checksum(plan_bytes: bytes) -> str:
    """Content digest of a wire payload (workers cache decoded plans by it).

    SHA-256 over the exact bytes, truncated to 128 bits of hex — strong
    enough that the ``PLAN_HAVE``/``PLAN_NEED`` handshake can treat digest
    equality as payload equality (the CRC in the header only guards
    transport damage, not cache identity).
    """
    return hashlib.sha256(plan_bytes).hexdigest()[:32]


class WirePlan:
    """A circuit plan decoded from the wire, ready to evaluate shards.

    Holds the CSR arrays as plain python lists (so a numpy-less worker can
    interpret them) and lowers them to the level-scheduled
    :class:`~repro.circuits.compiled._BatchPlan` on first use when numpy is
    importable. The level schedule shipped in the payload is re-verified
    against the CSR arrays on construction — a plan that decodes is a plan
    that evaluates.
    """

    __slots__ = ("size", "output", "n_vars", "kinds", "offsets", "indices",
                 "var_slot", "levels", "_plan")

    def __init__(self, meta: dict, sections: dict[str, list]):
        self.size = int(meta["size"])
        self.output = int(meta["output"])
        self.n_vars = int(meta["n_vars"])
        for name in ("kinds", "offsets", "indices", "var_slot", "levels"):
            check(name in sections, f"wire plan is missing the {name!r} section")
            setattr(self, name, sections[name])
        self._validate()
        self._plan = None

    def _validate(self) -> None:
        size = self.size
        check(
            len(self.levels) == size,
            "wire plan sections disagree about the gate count",
        )
        _compiled.check_plan_arrays(
            size=size, kinds=self.kinds, offsets=self.offsets,
            indices=self.indices, var_slot=self.var_slot,
            n_vars=self.n_vars, output=self.output,
        )
        check(
            _compiled.levels_consistent(
                self.kinds, self.offsets, self.indices, self.levels
            ),
            "wire plan corrupt: level schedule does not match the CSR arrays",
        )

    # -- evaluation ------------------------------------------------------- #

    def batch_plan(self):
        """The level-scheduled numpy plan, built once; ``None`` without numpy."""
        if numpy_module() is None:
            return None
        if self._plan is None:
            self._plan = _compiled._BatchPlan(self)
        return self._plan

    def _interpret_row(self, slot_values, as_float: bool):
        """One scalar bottom-up pass over the CSR arrays (numpy-less path)."""
        kinds, offsets, indices, var_slot = (
            self.kinds, self.offsets, self.indices, self.var_slot,
        )
        values: list = [0] * self.size
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == _compiled.K_VAR:
                value = slot_values[var_slot[pos]]
                value = float(value) if as_float else (1 if value else 0)
            elif kind == _compiled.K_AND:
                value = 1.0 if as_float else 1
                for j in range(offsets[pos], offsets[pos + 1]):
                    if as_float:
                        value *= values[indices[j]]
                    elif not values[indices[j]]:
                        value = 0
                        break
            elif kind == _compiled.K_OR:
                value = 0.0 if as_float else 0
                for j in range(offsets[pos], offsets[pos + 1]):
                    if as_float:
                        value += values[indices[j]]
                    elif values[indices[j]]:
                        value = 1
                        break
            elif kind == _compiled.K_NOT:
                child = values[indices[offsets[pos]]]
                value = 1.0 - child if as_float else 1 - child
            else:
                value = float(kind) if as_float else kind  # K_TRUE==1, K_FALSE==0
            values[pos] = value
        return values[self.output]

    def run_rows(self, rows, as_float: bool) -> list:
        """Evaluate an iterable of slot-value rows, one output per row."""
        rows = [list(row) for row in rows]  # copies rows drawn from shared buffers
        plan = self.batch_plan()
        if plan is not None:
            np = numpy_module()
            dtype = np.float64 if as_float else np.bool_
            matrix = np.asarray(rows, dtype=dtype)
            if matrix.ndim != 2:  # empty batch, or zero-variable circuit
                matrix = matrix.reshape(len(rows), self.n_vars)
            out = np.empty(matrix.shape[0], dtype=dtype)
            plan.run_into(matrix, out, as_float)
            return out.tolist()
        return [self._interpret_row(row, as_float) for row in rows]

    def mc_shard_hits(self, probs, seed: int, index: int, count: int) -> int:
        """Hit count of one deterministic ``(seed, index, count)`` MC shard.

        With numpy this is exactly
        :func:`repro.circuits.parallel._mc_shard_hits` on the decoded plan —
        bit-identical to the in-process and pool paths. Without numpy a
        scalar loop with its own deterministic stream runs instead (same
        estimator, different draws — matching the documented no-numpy tier).
        """
        np = numpy_module()
        if np is not None:
            probs32 = np.asarray(probs, dtype=np.float32)
            return _parallel._mc_shard_hits(
                np, self.batch_plan(), probs32, seed, index, count
            )
        import random

        rng = random.Random((int(seed) << 32) ^ int(index))
        hits = 0
        row = [0] * self.n_vars
        for _ in range(count):
            for i, p in enumerate(probs):
                row[i] = 1 if rng.random() < p else 0
            if self._interpret_row(row, as_float=False):
                hits += 1
        return hits


def plan_from_bytes(data: bytes) -> WirePlan:
    """Decode, verify and lower a :func:`plan_to_bytes` payload.

    Raises :class:`~repro.util.ReproError` for anything that is not a
    byte-exact, current-version plan: wrong magic, unsupported version,
    truncation, checksum mismatch, or internally inconsistent sections
    (including a level schedule that disagrees with the CSR arrays).
    """
    meta, sections = _unpack_blob(data)
    check(meta.get("kind") == "plan", "wire payload is not a circuit plan")
    return WirePlan(meta, sections)


def _plan_from_disk(digest: str) -> WirePlan | None:
    """Decode a plan from the persistent cache, or ``None`` (best-effort).

    The digest pins the exact payload bytes, so a blob that loads but does
    not decode is a damaged entry: it is dropped from the cache and
    reported as a miss rather than trusted.
    """
    from repro.circuits import plancache

    if not plancache.enabled():
        return None
    blob = plancache.load_plan_blob(digest)
    if blob is None:
        return None
    try:
        return plan_from_bytes(blob)
    except ReproError:
        plancache._drop_corrupt(
            plancache._entry_path(digest, plancache.PLAN_SUFFIX)
        )
        return None


def _tables_to_bytes(membership_rows, n_facts, probs, cumulative, total_weight):
    """Pack Karp–Luby witness tables with the same framing as plans."""
    flat = []
    for row in membership_rows:
        flat.extend(int(v) for v in row)
    return _pack_blob(
        {
            "kind": "tables",
            "n_witnesses": len(membership_rows),
            "n_facts": n_facts,
            "total_weight": float(total_weight),
        },
        [
            ("membership", "i", flat),
            ("probs", "d", probs),
            ("cumulative", "d", cumulative),
        ],
    )


class WireTables:
    """Decoded Karp–Luby witness tables (membership matrix + weights)."""

    __slots__ = ("n_witnesses", "n_facts", "total_weight", "membership",
                 "probs", "cumulative")

    def __init__(self, meta: dict, sections: dict[str, list]):
        self.n_witnesses = int(meta["n_witnesses"])
        self.n_facts = int(meta["n_facts"])
        self.total_weight = float(meta["total_weight"])
        check(
            len(sections["membership"]) == self.n_witnesses * self.n_facts
            and len(sections["probs"]) == self.n_facts
            and len(sections["cumulative"]) == self.n_witnesses,
            "wire tables sections disagree about their shape",
        )
        self.membership = sections["membership"]
        self.probs = sections["probs"]
        self.cumulative = sections["cumulative"]

    def kl_shard_hits(self, seed: int, index: int, count: int) -> int:
        np = numpy_module()
        if np is not None:
            membership = np.asarray(self.membership, dtype=np.int32).reshape(
                self.n_witnesses, self.n_facts
            )
            return _parallel._kl_shard_hits(
                np,
                membership,
                membership.sum(axis=1, dtype=np.int32),
                np.asarray(self.probs, dtype=np.float64),
                np.asarray(self.cumulative, dtype=np.float64),
                self.total_weight,
                seed,
                index,
                count,
            )
        import bisect
        import random

        rng = random.Random((int(seed) << 32) ^ int(index))
        n_facts = self.n_facts
        rows = [
            self.membership[w * n_facts : (w + 1) * n_facts]
            for w in range(self.n_witnesses)
        ]
        hits = 0
        for _ in range(count):
            chosen = min(
                bisect.bisect_left(self.cumulative, rng.random() * self.total_weight),
                self.n_witnesses - 1,
            )
            world = [1 if rng.random() < p else 0 for p in self.probs]
            for i, member in enumerate(rows[chosen]):
                if member:
                    world[i] = 1
            for w, row in enumerate(rows):
                if all(world[i] for i, member in enumerate(row) if member):
                    if w == chosen:
                        hits += 1
                    break
        return hits


def tables_from_bytes(data: bytes) -> WireTables:
    meta, sections = _unpack_blob(data)
    check(meta.get("kind") == "tables", "wire payload is not a witness table set")
    return WireTables(meta, sections)


# --------------------------------------------------------------------------- #
# routing knob

def _hosts_from_env() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_DISTRIBUTED_HOSTS", "")
    hosts = []
    for part in raw.replace(";", ",").split(","):
        part = part.strip()
        if not part:
            continue
        try:
            _parse_hostport(part)
        except ReproError:
            return ()  # one malformed entry disables the knob rather than half-working
        hosts.append(part)
    return tuple(hosts)


def _parse_hostport(spec: str) -> tuple[str, int]:
    host, sep, port = str(spec).strip().rpartition(":")
    check(bool(sep) and bool(host), f"host spec {spec!r} is not host:port")
    try:
        port_number = int(port)
    except ValueError:
        raise ReproError(f"host spec {spec!r} has a non-integer port") from None
    check(0 < port_number < 65536, f"host spec {spec!r} port out of range")
    return host, port_number


_HOSTS: tuple[str, ...] = _hosts_from_env()


def distributed_hosts() -> tuple[str, ...]:
    """The process-wide worker host list (empty = stay local, the default)."""
    return _HOSTS


def set_distributed_hosts(hosts) -> None:
    """Set the process-wide host list.

    Accepts ``None`` (clear), a comma-separated ``"host:port,host:port"``
    string, or an iterable of ``host:port`` strings; every entry is
    validated up front.
    """
    global _HOSTS
    if hosts is None:
        _HOSTS = ()
        return
    if isinstance(hosts, str):
        hosts = [part for part in hosts.replace(";", ",").split(",") if part.strip()]
    normalized = []
    for spec in hosts:
        _parse_hostport(spec)
        normalized.append(str(spec).strip())
    _HOSTS = tuple(normalized)


def distributed_hosts_set(hosts):
    """Scope a :func:`set_distributed_hosts` change, restoring the previous.

    Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    return config.overrides(distributed_hosts=hosts)


def effective_hosts(hosts) -> tuple[str, ...]:
    """Resolve a per-call ``hosts`` argument against the process-wide knob.

    ``None`` defers to :func:`distributed_hosts` *plus* any workers that
    REGISTERed with this coordinator's registry (static list first,
    deduplicated); an explicit empty list (or ``()``) forces local
    execution regardless of the knob, and an explicit list is taken
    verbatim — elastic members only ever extend the default.
    """
    if hosts is None:
        elastic = registered_hosts()
        if elastic:
            return tuple(dict.fromkeys(_HOSTS + elastic))
        return _HOSTS
    if isinstance(hosts, str):
        hosts = [part for part in hosts.replace(";", ",").split(",") if part.strip()]
    return tuple(str(spec).strip() for spec in hosts)


def should_distribute(n_rows: int, hosts=None) -> bool:
    """Whether a matrix batch of ``n_rows`` should go over the wire."""
    return bool(effective_hosts(hosts)) and n_rows >= _parallel.PARALLEL_MIN_ROWS


_SECRET: str | None = os.environ.get("REPRO_DISTRIBUTED_SECRET") or None


def distributed_secret() -> str | None:
    """The shared worker-auth secret (``None`` = unauthenticated, the default)."""
    return _SECRET


def set_distributed_secret(secret: str | None) -> None:
    """Set the process-wide shared secret used to answer worker challenges.

    Both sides read ``REPRO_DISTRIBUTED_SECRET`` at import; this overrides
    it for the coordinator side. ``None`` or ``""`` clear the secret. A
    worker without a secret accepts any coordinator; a worker *with* one
    rejects every connection that cannot answer its HMAC challenge.
    """
    global _SECRET
    _SECRET = str(secret) if secret else None


def distributed_secret_set(secret: str | None):
    """Scope a :func:`set_distributed_secret` change, restoring the previous.

    Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    return config.overrides(distributed_secret=secret)


def auth_response(secret: str, challenge_hex: str) -> str:
    """The HMAC-SHA256 answer to a worker's hello challenge.

    The worker sends a random ``challenge`` (hex) in its ``HELLO``; the
    coordinator must reply with ``HMAC(secret, challenge_bytes)`` before
    anything else. Challenge-response keeps the secret itself off the wire
    and makes every handshake transcript single-use.
    """
    return hmac_module.new(
        secret.encode(), bytes.fromhex(challenge_hex), hashlib.sha256
    ).hexdigest()


# --------------------------------------------------------------------------- #
# transport security: the pluggable AuthProvider seam

class AuthProvider:
    """How a coordinator secures (and authenticates) worker connections.

    The base class is the plaintext provider: no transport encryption, and
    worker challenges answered with the process-wide
    :func:`distributed_secret`. Subclasses override any of the three
    seams — :meth:`client_ssl` / :meth:`server_ssl` for transport
    contexts, :meth:`secret` for the challenge-response credential — so
    HMAC, TLS, mTLS, or a custom backend all plug into the same
    :class:`HostPool` without it knowing which is active.
    """

    name = "plaintext"

    def client_ssl(self) -> ssl.SSLContext | None:
        """Context for dialing out (coordinator→worker); ``None`` = plaintext."""
        return None

    def server_ssl(self) -> ssl.SSLContext | None:
        """Context for listening (the registration endpoint); ``None`` = plaintext."""
        return None

    def secret(self) -> str | None:
        """The shared secret used to answer HMAC challenges, if any."""
        return distributed_secret()

    def plaintext_fallback(self) -> bool:
        """Whether a failed TLS handshake may retry in plaintext (opt-in)."""
        return False


class HMACAuth(AuthProvider):
    """Shared-secret challenge-response only (the pre-TLS behaviour)."""

    name = "hmac"

    def __init__(self, secret: str | None = None):
        self._secret = str(secret) if secret else None

    def secret(self) -> str | None:
        return self._secret if self._secret is not None else distributed_secret()


class TLSAuth(AuthProvider):
    """TLS transport security, optionally mutual, on top of the HMAC layer.

    ``certfile``/``keyfile`` are this endpoint's own certificate — a
    worker's server certificate, or the coordinator's *client* certificate
    when the fleet requires mutual TLS. ``cafile`` is the bundle the peer
    is verified against: a coordinator needs it to trust workers; a worker
    that sets it demands (and verifies) client certificates, turning the
    link into mTLS. Hostname/IP checking stays on — certificates must name
    the address they serve. ``allow_plaintext`` opts into a one-shot
    plaintext retry when the peer does not speak TLS at all (never when
    certificate *verification* fails).
    """

    def __init__(self, certfile: str | None = None, keyfile: str | None = None,
                 cafile: str | None = None, *, secret: str | None = None,
                 allow_plaintext: bool = False):
        self.certfile = str(certfile) if certfile else None
        self.keyfile = str(keyfile) if keyfile else None
        self.cafile = str(cafile) if cafile else None
        self._secret = str(secret) if secret else None
        self._allow_plaintext = bool(allow_plaintext)
        self._client_ctx: ssl.SSLContext | None = None
        self._server_ctx: ssl.SSLContext | None = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return "mtls" if (self.cafile and self.certfile) else "tls"

    def client_ssl(self) -> ssl.SSLContext | None:
        if self._client_ctx is None:
            check(
                self.cafile is not None,
                "TLS coordinator needs a CA bundle to verify workers "
                "(REPRO_DISTRIBUTED_TLS_CA)",
            )
            context = ssl.create_default_context(
                ssl.Purpose.SERVER_AUTH, cafile=self.cafile
            )
            if self.certfile:  # present a client certificate for mTLS peers
                context.load_cert_chain(self.certfile, self.keyfile)
            self._client_ctx = context
        return self._client_ctx

    def server_ssl(self) -> ssl.SSLContext | None:
        if self._server_ctx is None:
            check(
                self.certfile is not None and self.keyfile is not None,
                "a TLS endpoint needs its own certificate and key "
                "(--tls-cert/--tls-key or REPRO_DISTRIBUTED_TLS_CERT/_KEY)",
            )
            context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
            context.load_cert_chain(self.certfile, self.keyfile)
            if self.cafile:  # mutual TLS: demand and verify client certs
                context.load_verify_locations(self.cafile)
                context.verify_mode = ssl.CERT_REQUIRED
            self._server_ctx = context
        return self._server_ctx

    def secret(self) -> str | None:
        return self._secret if self._secret is not None else distributed_secret()

    def plaintext_fallback(self) -> bool:
        return self._allow_plaintext


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")


def _tls_from_env() -> dict | None:
    cert = os.environ.get("REPRO_DISTRIBUTED_TLS_CERT") or None
    key = os.environ.get("REPRO_DISTRIBUTED_TLS_KEY") or None
    ca = os.environ.get("REPRO_DISTRIBUTED_TLS_CA") or None
    if not (cert or ca):
        return None
    return {
        "certfile": cert,
        "keyfile": key,
        "cafile": ca,
        "allow_plaintext": _env_flag("REPRO_DISTRIBUTED_TLS_ALLOW_PLAINTEXT"),
    }


_TLS: dict | None = _tls_from_env()
_AUTH_PROVIDER: AuthProvider | None = None
_TLS_PROVIDER_CACHE: tuple[tuple, TLSAuth] | None = None
_PLAINTEXT_PROVIDER = AuthProvider()


def distributed_tls() -> dict | None:
    """The process-wide TLS knob values (``None`` = TLS not configured)."""
    return dict(_TLS) if _TLS is not None else None


def set_distributed_tls(certfile=None, keyfile=None, cafile=None,
                        allow_plaintext: bool = False) -> None:
    """Set the process-wide TLS knobs (``REPRO_DISTRIBUTED_TLS_*`` override).

    With neither a certificate nor a CA bundle the knob clears and the
    provider falls back to HMAC/plaintext. Coordinators need ``cafile``
    (to verify workers) and present ``certfile``/``keyfile`` when workers
    demand client certificates (mTLS); workers read the same knobs for
    their server side.
    """
    global _TLS
    if not (certfile or cafile):
        _TLS = None
        return
    _TLS = {
        "certfile": str(certfile) if certfile else None,
        "keyfile": str(keyfile) if keyfile else None,
        "cafile": str(cafile) if cafile else None,
        "allow_plaintext": bool(allow_plaintext),
    }


def distributed_tls_set(certfile=None, keyfile=None, cafile=None,
                        allow_plaintext: bool = False):
    """Scope a :func:`set_distributed_tls` change, restoring the previous.

    Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    value = None
    if certfile or cafile:
        value = {
            "certfile": str(certfile) if certfile else None,
            "keyfile": str(keyfile) if keyfile else None,
            "cafile": str(cafile) if cafile else None,
            "allow_plaintext": bool(allow_plaintext),
        }
    return config.overrides(distributed_tls=value)


def set_auth_provider(provider: AuthProvider | None) -> None:
    """Install an explicit :class:`AuthProvider`, overriding the knobs."""
    global _AUTH_PROVIDER
    check(
        provider is None or isinstance(provider, AuthProvider),
        "auth provider must be an AuthProvider (or None to clear)",
    )
    _AUTH_PROVIDER = provider


def auth_provider_set(provider: AuthProvider | None):
    """Scope a :func:`set_auth_provider` change, restoring the previous.

    Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    return config.overrides(auth_provider=provider)


def auth_provider() -> AuthProvider:
    """The active provider: explicit install > TLS knobs > HMAC > plaintext."""
    global _TLS_PROVIDER_CACHE
    if _AUTH_PROVIDER is not None:
        return _AUTH_PROVIDER
    if _TLS is not None:
        key = tuple(sorted(_TLS.items()))
        if _TLS_PROVIDER_CACHE is None or _TLS_PROVIDER_CACHE[0] != key:
            # Cache per config so SSL contexts build once, not per connect.
            _TLS_PROVIDER_CACHE = (key, TLSAuth(**_TLS))
        return _TLS_PROVIDER_CACHE[1]
    if _SECRET is not None:
        return HMACAuth()
    return _PLAINTEXT_PROVIDER


# --------------------------------------------------------------------------- #
# pipelining and registration knobs

#: Default task frames kept in flight per pooled connection. Depth 1 is
#: the old lockstep send→wait protocol; anything higher lets shard N+1
#: cross the wire while shard N computes, hiding per-shard round-trip
#: latency behind worker compute.
PIPELINE_DEPTH = 4

#: Task payload bytes allowed in flight beyond the first frame. Both peers
#: write without reading while a pipeline drains, so unread bytes in each
#: direction must stay below the kernel socket buffers or the pair can
#: deadlock writing at each other; results are never larger than their
#: tasks here (a row's answer is one value), so capping outstanding *task*
#: bytes bounds both directions. Frames bigger than the window simply ride
#: an empty pipe — lockstep, exactly as before.
PIPELINE_WINDOW_BYTES = 1 << 17


def _pipeline_depth_from_env() -> int:
    raw = os.environ.get("REPRO_DISTRIBUTED_PIPELINE", "").strip()
    if not raw:
        return PIPELINE_DEPTH
    try:
        return max(1, int(raw))
    except ValueError:
        return PIPELINE_DEPTH


_PIPELINE_DEPTH: int = _pipeline_depth_from_env()


def pipeline_depth() -> int:
    """Task frames kept in flight per connection (1 = lockstep)."""
    return _PIPELINE_DEPTH


def set_pipeline_depth(depth: int | None) -> None:
    """Set the pipeline depth (``None`` restores the default; floor 1)."""
    global _PIPELINE_DEPTH
    _PIPELINE_DEPTH = PIPELINE_DEPTH if depth is None else max(1, int(depth))


def pipeline_depth_set(depth: int | None):
    """Scope a :func:`set_pipeline_depth` change, restoring the previous.

    Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    return config.overrides(pipeline_depth=depth)


#: ``host:port`` to bind the coordinator's registration endpoint on, from
#: ``REPRO_DISTRIBUTED_REGISTRY_BIND``. When set, the endpoint starts
#: lazily with the pool and workers launched with ``repro serve
#: --register host:port`` join the host list without being configured on
#: the coordinator at all.
_REGISTRY_BIND: str | None = os.environ.get("REPRO_DISTRIBUTED_REGISTRY_BIND") or None

#: Seconds a registering worker waits between dial attempts (the registry
#: may simply not be up yet; registration failure is never fatal).
REGISTER_RETRY_SECONDS = 1.0


_WARNED: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message + " (warning once per process)", RuntimeWarning, stacklevel=3)


# --------------------------------------------------------------------------- #
# protocol framing

MSG_HELLO = 1
MSG_PLAN = 2
MSG_TABLES = 3
MSG_TASK = 4
MSG_RESULT = 5
MSG_ERROR = 6
MSG_SHUTDOWN = 7
MSG_PING = 8
MSG_PONG = 9
MSG_PLAN_OFFER = 10
MSG_PLAN_HAVE = 11
MSG_PLAN_NEED = 12
MSG_AUTH = 13
MSG_AUTH_OK = 14
MSG_REGISTER = 15
MSG_DEREGISTER = 16

#: Seconds allowed for a TCP connect + handshake before a host is skipped.
CONNECT_TIMEOUT = 5.0

#: Seconds a pooled idle connection gets to answer the PING heartbeat
#: before it is declared dead and reconnected.
HEARTBEAT_TIMEOUT = 2.0

#: Matrix passes cut their rows into this many shards per host so the
#: stealing queue has slack to rebalance between hosts of unequal speed.
STEAL_SHARDS_PER_HOST = 4

#: Minimum seconds a shard must have been in flight before an idle
#: connection may steal (re-run) it. The effective grace per connection is
#: ``max(STEAL_GRACE, 2 × its own observed per-shard latency)``, so
#: homogeneous hosts finishing within a whisker of each other do not
#: duplicate the tail shard of every call — stealing fires for genuine
#: stragglers only.
STEAL_GRACE = 0.05

#: Upper bound on one matrix shard's payload, so a frame always fits the
#: uint32 length prefix with room to spare and workers never buffer more
#: than this per task.
MAX_SHARD_BYTES = 1 << 26


async def _send_message(writer, kind: int, meta: dict, blob: bytes = b"") -> None:
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode()
    payload = struct.pack("<BI", kind, len(meta_bytes)) + meta_bytes + blob
    check(
        len(payload) <= MAX_FRAME_BYTES,
        f"protocol frame of {len(payload)} bytes exceeds the wire limit",
    )
    writer.write(struct.pack("<I", len(payload)) + payload)
    await writer.drain()


async def _read_message(reader) -> tuple[int, dict, bytes]:
    raw = await reader.readexactly(4)
    (length,) = struct.unpack("<I", raw)
    if not 5 <= length <= MAX_FRAME_BYTES:
        raise ReproError(f"protocol frame length {length} out of bounds")
    payload = await reader.readexactly(length)
    kind, meta_len = struct.unpack_from("<BI", payload)
    if 5 + meta_len > length:
        raise ReproError("protocol frame header overruns the frame")
    meta = json.loads(payload[5 : 5 + meta_len])
    return kind, meta, payload[5 + meta_len :]


#: Exceptions that mean "this connection is gone", triggering a shard retry.
_CONNECTION_ERRORS = (
    ConnectionError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
    TimeoutError,
    OSError,
)


async def _open_transport(host: str, port: int, provider: AuthProvider):
    """``(reader, writer)`` with the provider's transport security applied.

    Certificate *verification* failures are always fatal (the peer speaks
    TLS; trust is the whole point). A peer that does not speak TLS at all
    raises unless the provider explicitly allows a one-shot plaintext
    retry — the "mixed fleet mid-rollout" escape hatch.
    """
    context = provider.client_ssl()
    if context is None:
        return await asyncio.wait_for(
            asyncio.open_connection(host, port), CONNECT_TIMEOUT
        )
    try:
        return await asyncio.wait_for(
            asyncio.open_connection(host, port, ssl=context), CONNECT_TIMEOUT
        )
    except ssl.SSLCertVerificationError as exc:
        raise ReproError(
            f"worker {host}:{port} failed TLS certificate verification ({exc})"
        ) from None
    except ssl.SSLError as exc:
        if not provider.plaintext_fallback():
            raise ReproError(
                f"TLS handshake with worker {host}:{port} failed ({exc}); set "
                "REPRO_DISTRIBUTED_TLS_ALLOW_PLAINTEXT=1 to permit a plaintext "
                "retry during rollout"
            ) from None
        _warn_once(
            f"tls-fallback:{host}:{port}",
            f"worker {host}:{port} does not speak TLS; retrying in plaintext "
            "as explicitly allowed",
        )
        return await asyncio.wait_for(
            asyncio.open_connection(host, port), CONNECT_TIMEOUT
        )


# --------------------------------------------------------------------------- #
# worker side

_WORKER_CACHE_LIMIT = 8


class WorkerServer:
    """The worker side of the protocol: serve shards over localhost/TCP.

    One instance serves any number of coordinator connections; decoded
    plans and witness tables are cached per process by content digest, so
    a coordinator reconnecting (or several coordinators sharing one
    circuit) pays the decode once — and, via the ``PLAN_OFFER`` →
    ``PLAN_HAVE``/``PLAN_NEED`` handshake, the *transfer* once too.

    ``secret`` arms shared-secret authentication: the hello carries a
    random challenge and the first client message must be a valid
    ``MSG_AUTH`` HMAC response or the connection is refused.
    ``tls_cert``/``tls_key`` wrap the listener in TLS (plus ``tls_ca`` to
    demand client certificates — mutual TLS); ``register`` dials a
    coordinator's registration endpoint so this worker joins its host
    list without static configuration, advertising ``advertise`` (or its
    own bound address). ``max_tasks`` is a fault-injection hook for tests
    and drills: the process dies abruptly (``os._exit``) when asked to
    run task ``max_tasks + 1``, simulating a mid-run crash. ``delay``
    sleeps before every task — the slow-host hook the work-stealing tests
    and drills use. ``hello_caps``/``hello_version`` override what HELLO
    advertises — the mixed-version drill hooks (``hello_caps=()`` sends a
    caps-less legacy version-2 hello).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_tasks: int | None = None, secret: str | None = None,
                 delay: float = 0.0, tls_cert: str | None = None,
                 tls_key: str | None = None, tls_ca: str | None = None,
                 register: str | None = None, advertise: str | None = None,
                 hello_caps=None, hello_version: int | None = None):
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port on start
        self.max_tasks = max_tasks
        self.secret = str(secret) if secret else None
        self.delay = float(delay or 0.0)
        self.tls = (
            TLSAuth(tls_cert, tls_key, tls_ca, secret=self.secret)
            if tls_cert
            else None
        )
        self.register = str(register) if register else None
        self.advertise = str(advertise) if advertise else None
        self.hello_caps = None if hello_caps is None else tuple(hello_caps)
        self.hello_version = hello_version
        self.registered = False  # True while the registry link is up
        self._executed = 0
        self._plans: dict[str, WirePlan] = {}
        self._tables: dict[str, WireTables] = {}
        self._server = None
        self._register_task = None

    def _hello_meta(self) -> dict:
        hello = {
            "version": (
                PROTOCOL_VERSION if self.hello_version is None else self.hello_version
            ),
            "wire": WIRE_VERSION,
            "pid": os.getpid(),
            "numpy": numpy_module() is not None,
            "auth": self.secret is not None,
        }
        caps = sorted(PROTOCOL_CAPS) if self.hello_caps is None else self.hello_caps
        if caps:  # an empty override simulates a caps-less legacy hello
            hello["caps"] = list(caps)
        return hello

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port,
            ssl=self.tls.server_ssl() if self.tls is not None else None,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.register is not None:
            self._register_task = asyncio.ensure_future(self._register_loop())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._register_task is not None:
            self._register_task.cancel()
            try:
                await self._register_task
            except asyncio.CancelledError:
                pass
            self._register_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _register_loop(self) -> None:
        """Keep a registration link to the coordinator open, forever.

        Dials ``self.register``, answers its challenge, REGISTERs this
        worker's advertised address, then holds the connection open
        answering PINGs — its EOF is the coordinator's signal to drain
        the membership. Every failure (registry not up yet, bounced
        coordinator) just waits and re-dials; a worker that cannot
        register still serves its static listeners. On cancellation
        (worker stop) a polite DEREGISTER is attempted first.
        """
        reg_host, reg_port = _parse_hostport(self.register)
        advertise = self.advertise or f"{self.host}:{self.port}"
        context = None
        if self.tls is not None and self.tls.cafile is not None:
            context = self.tls.client_ssl()
        writer = None
        announced = False
        try:
            while True:
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(reg_host, reg_port, ssl=context),
                        CONNECT_TIMEOUT,
                    )
                    kind, meta, _blob = await asyncio.wait_for(
                        _read_message(reader), CONNECT_TIMEOUT
                    )
                    if kind != MSG_HELLO:
                        raise ReproError("registry endpoint did not greet")
                    challenge = meta.get("challenge")
                    if challenge is not None:
                        check(
                            self.secret is not None,
                            "coordinator registry requires authentication and "
                            "this worker has no secret",
                        )
                        await _send_message(
                            writer, MSG_AUTH,
                            {"mac": auth_response(self.secret, challenge)},
                        )
                        akind, _ameta, _ablob = await asyncio.wait_for(
                            _read_message(reader), CONNECT_TIMEOUT
                        )
                        if akind != MSG_AUTH_OK:
                            raise ReproError("registry rejected authentication")
                    await _send_message(
                        writer, MSG_REGISTER,
                        {"advertise": advertise, "pid": os.getpid(),
                         "caps": sorted(PROTOCOL_CAPS)},
                    )
                    kind, meta, _blob = await asyncio.wait_for(
                        _read_message(reader), CONNECT_TIMEOUT
                    )
                    if kind != MSG_REGISTER or not meta.get("accepted"):
                        raise ReproError("registry refused the registration")
                    self.registered = True
                    if not announced:
                        announced = True
                        print(
                            f"repro-worker registered with {self.register} "
                            f"as {advertise}",
                            flush=True,
                        )
                    while True:  # hold the link; EOF on either side = drain
                        kind, meta, _blob = await _read_message(reader)
                        if kind == MSG_PING:
                            await _send_message(
                                writer, MSG_PONG, {"pid": os.getpid()}
                            )
                        elif kind == MSG_SHUTDOWN:
                            raise asyncio.IncompleteReadError(b"", None)
                except asyncio.CancelledError:
                    if writer is not None and self.registered:
                        try:  # polite drain; EOF covers it if this fails
                            await _send_message(
                                writer, MSG_DEREGISTER, {"advertise": advertise}
                            )
                        except BaseException:  # noqa: BLE001 - best effort
                            pass
                    raise
                except _CONNECTION_ERRORS + (ReproError,):
                    pass
                finally:
                    self.registered = False
                    if writer is not None:
                        try:
                            writer.close()
                        except Exception:  # pragma: no cover - teardown race
                            pass
                        writer = None
                await asyncio.sleep(REGISTER_RETRY_SECONDS)
        except asyncio.CancelledError:
            raise

    def _cache_put(self, cache: dict, key: str, value) -> None:
        while len(cache) >= _WORKER_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = value

    async def _handle(self, reader, writer) -> None:
        try:
            hello = self._hello_meta()
            challenge = None
            if self.secret is not None:
                challenge = secrets_module.token_hex(16)
                hello["challenge"] = challenge
            await _send_message(writer, MSG_HELLO, hello)
            if challenge is not None:
                kind, meta, _blob = await asyncio.wait_for(
                    _read_message(reader), CONNECT_TIMEOUT
                )
                expected = auth_response(self.secret, challenge)
                if kind != MSG_AUTH or not hmac_module.compare_digest(
                    str(meta.get("mac", "")), expected
                ):
                    await _send_message(
                        writer, MSG_ERROR, {"message": "authentication failed"}
                    )
                    return
                await _send_message(writer, MSG_AUTH_OK, {"pid": os.getpid()})
            while True:
                kind, meta, blob = await _read_message(reader)
                if kind == MSG_SHUTDOWN:
                    break
                if kind == MSG_PING:
                    await _send_message(writer, MSG_PONG, {"pid": os.getpid()})
                elif kind == MSG_PLAN_OFFER:
                    key = meta["checksum"]
                    cache = self._tables if meta.get("kind") == "tables" else self._plans
                    have = key in cache
                    if not have and cache is self._plans:
                        # A fresh worker can answer PLAN_HAVE from the
                        # persistent disk cache: the plan then never
                        # crosses the wire at all.
                        plan = _plan_from_disk(key)
                        if plan is not None:
                            self._cache_put(self._plans, key, plan)
                            have = True
                    await _send_message(
                        writer,
                        MSG_PLAN_HAVE if have else MSG_PLAN_NEED,
                        {"checksum": key},
                    )
                elif kind == MSG_PLAN:
                    key = meta["checksum"]
                    if key not in self._plans:
                        self._cache_put(self._plans, key, plan_from_bytes(blob))
                        from repro.circuits import plancache

                        if plancache.enabled():
                            plancache.store_plan_blob(key, bytes(blob))
                elif kind == MSG_TABLES:
                    key = meta["checksum"]
                    if key not in self._tables:
                        self._cache_put(self._tables, key, tables_from_bytes(blob))
                elif kind == MSG_TASK:
                    if self.max_tasks is not None and self._executed >= self.max_tasks:
                        os._exit(17)  # fault injection: die instead of answering
                    self._executed += 1
                    if self.delay > 0:  # slow-host drill hook
                        await asyncio.sleep(self.delay)
                    try:
                        rmeta, rblob = self._execute(meta, blob)
                    except Exception as exc:  # noqa: BLE001 - reported to coordinator
                        await _send_message(
                            writer, MSG_ERROR,
                            {"id": meta.get("id"),
                             "message": f"{type(exc).__name__}: {exc}"},
                        )
                    else:
                        await _send_message(writer, MSG_RESULT, rmeta, rblob)
                else:
                    raise ReproError(f"unexpected protocol message kind {kind}")
        except _CONNECTION_ERRORS:
            pass  # coordinator went away; nothing to answer
        except ReproError:
            pass  # malformed stream; drop the connection
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except _CONNECTION_ERRORS:  # pragma: no cover - teardown race
                pass

    def _execute(self, meta: dict, blob: bytes) -> tuple[dict, bytes]:
        op = meta["op"]
        task_id = meta["id"]
        if op == "mc":
            plan = self._plans.get(meta["plan"])
            check(plan is not None, "task references a plan this worker never got")
            probs = _values_from_bytes("f", blob)
            hits = plan.mc_shard_hits(probs, meta["seed"], meta["index"], meta["count"])
            return {"id": task_id, "hits": hits}, b""
        if op == "kl":
            tables = self._tables.get(meta["tables"])
            check(tables is not None, "task references tables this worker never got")
            hits = tables.kl_shard_hits(meta["seed"], meta["index"], meta["count"])
            return {"id": task_id, "hits": hits}, b""
        if op == "eval":
            plan = self._plans.get(meta["plan"])
            check(plan is not None, "task references a plan this worker never got")
            as_float = bool(meta["as_float"])
            rows = int(meta["rows"])
            itemsize = 8 if as_float else 1
            check(
                len(blob) == rows * plan.n_vars * itemsize,
                "eval task blob does not match its row count",
            )
            np = numpy_module()
            if np is not None:
                dtype = np.float64 if as_float else np.bool_
                matrix = np.frombuffer(blob, dtype=dtype).reshape(rows, plan.n_vars)
                out = np.empty(rows, dtype=dtype)
                plan.batch_plan().run_into(matrix, out, as_float)
                return {"id": task_id}, out.tobytes()
            values = (
                _values_from_bytes("d", blob)
                if as_float
                else [1 if b else 0 for b in blob]
            )
            n = plan.n_vars
            out_rows = plan.run_rows(
                [values[r * n : (r + 1) * n] for r in range(rows)], as_float
            )
            if as_float:
                return {"id": task_id}, _values_to_bytes("d", out_rows)
            return {"id": task_id}, bytes(1 if v else 0 for v in out_rows)
        raise ReproError(f"unknown distributed task op {op!r}")


class LocalWorker:
    """A ``repro serve`` worker subprocess spawned by :func:`spawn_local_worker`."""

    __slots__ = ("process", "host", "port")

    def __init__(self, process, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def alive(self) -> bool:
        return self.process.poll() is None

    def wait_dead(self, timeout: float = 10.0) -> int:
        """Block until the process exits; returns its exit code."""
        return self.process.wait(timeout=timeout)

    def stop(self) -> None:
        """Terminate the worker and reap it (idempotent, escalates to kill)."""
        import subprocess

        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.wait(timeout=5.0)
        if self.process.stdout is not None:
            self.process.stdout.close()


def spawn_local_worker(max_tasks: int | None = None,
                       startup_timeout: float = 30.0, port: int = 0,
                       secret: str | None = None,
                       delay: float | None = None,
                       tls_cert: str | None = None,
                       tls_key: str | None = None,
                       tls_ca: str | None = None,
                       register: str | None = None,
                       advertise: str | None = None) -> LocalWorker:
    """Start a localhost shard worker subprocess and wait until it is ready.

    Runs ``python -m repro serve`` (``port=0`` lets the OS pick, so any
    number can coexist; a fixed port lets tests bounce a worker and
    relaunch it at the same address) with this process's ``repro`` package
    on the child's path, and blocks until the worker prints its
    ``repro-worker listening on host:port`` readiness line. The caller owns
    teardown (:meth:`LocalWorker.stop`). Tests and benchmarks share this
    one implementation of the spawn/readiness/teardown dance; ``max_tasks``
    (crash after N tasks), ``secret`` (require auth), ``delay`` (sleep
    before each task), the ``tls_*`` certificate paths and
    ``register``/``advertise`` (elastic membership) pass the serve flags
    through.
    """
    import re
    import subprocess
    import time
    from pathlib import Path

    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if tls_cert is not None or tls_key is not None or tls_ca is not None:
        # An explicit TLS configuration means exactly these files: serve
        # backfills each missing --tls-* flag from the environment on its
        # own, so an ambient REPRO_DISTRIBUTED_TLS_CA (the CI distributed
        # job runs the suite under full mTLS) would silently upgrade a
        # server-auth-only worker to demanding client certificates.
        for tls_var in ("REPRO_DISTRIBUTED_TLS_CERT",
                        "REPRO_DISTRIBUTED_TLS_KEY",
                        "REPRO_DISTRIBUTED_TLS_CA"):
            env.pop(tls_var, None)
    command = [sys.executable, "-m", "repro", "serve", "--port", str(port)]
    if max_tasks is not None:
        command += ["--max-tasks", str(max_tasks)]
    if secret is not None:
        command += ["--secret", str(secret)]
    if delay is not None:
        command += ["--delay", str(delay)]
    if tls_cert is not None:
        command += ["--tls-cert", str(tls_cert)]
    if tls_key is not None:
        command += ["--tls-key", str(tls_key)]
    if tls_ca is not None:
        command += ["--tls-ca", str(tls_ca)]
    if register is not None:
        command += ["--register", str(register)]
    if advertise is not None:
        command += ["--advertise", str(advertise)]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    deadline = time.monotonic() + startup_timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on ([\w.\-]+):(\d+)", line)
        if match:
            return LocalWorker(process, match.group(1), int(match.group(2)))
    process.kill()
    process.wait(timeout=5.0)
    raise ReproError(f"worker never became ready (last output: {line!r})")


# --------------------------------------------------------------------------- #
# coordinator side: the persistent host pool

class _Conn:
    """One pooled worker connection plus what that worker is known to hold."""

    __slots__ = ("hostport", "reader", "writer", "published", "pid", "caps")

    def __init__(self, hostport: str, reader, writer, pid, caps=V2_BASELINE_CAPS):
        self.hostport = hostport
        self.reader = reader
        self.writer = writer
        self.published: set[str] = set()  # digests confirmed on this worker
        self.pid = pid
        self.caps = caps  # negotiated capability intersection


class _StealQueue:
    """The work-stealing shard queue one coordinated call pumps from.

    Connections pull the next pending slot when idle; once the pending
    deque runs dry, an idle connection *steals* a slot still in flight on
    another (presumably slower) connection and re-runs it. Shard contents
    are pure functions of their descriptors and results are recorded
    first-answer-wins by task id, so a steal can never change the merged
    value — it only stops a slow host from gating the merge. ``ran`` (per
    connection) caps each slot at one execution per connection, which
    bounds total work at ``shards × hosts`` even in pathological cases,
    and a slot only becomes stealable after ``min_age`` seconds in flight
    (:data:`STEAL_GRACE`-based), so near-simultaneous finishers do not
    re-run each other's tail shards for nothing.
    """

    __slots__ = ("_pending", "_inflight", "_stats")

    def __init__(self, n_tasks: int, stats: dict):
        self._pending = deque(range(n_tasks))
        self._inflight: dict[int, float] = {}  # slot -> first-dispatch time
        self._stats = stats

    def take(
        self, ran: set[int], now: float = 0.0, min_age: float = 0.0
    ) -> tuple[int | None, float | None]:
        """``(slot, None)`` to run, ``(None, seconds)`` to retry after a
        wait (in-flight work exists but is younger than ``min_age``), or
        ``(None, None)`` when nothing is left for this connection."""
        if self._pending:
            slot = self._pending.popleft()
            self._inflight[slot] = now
            return slot, None
        best = None
        soonest: float | None = None
        for slot, started in self._inflight.items():
            if slot in ran:
                continue
            age = now - started
            if age >= min_age:
                if best is None or started < self._inflight[best]:
                    best = slot  # steal the longest-suffering shard first
            else:
                remaining = min_age - age
                soonest = remaining if soonest is None else min(soonest, remaining)
        if best is not None:
            self._stats["steals"] += 1
            return best, None  # original dispatch time kept: age keeps growing
        return None, soonest

    def release(self, slot: int) -> None:
        """Put a failed slot back for some other connection (or the local
        fallback) to run."""
        self._inflight.pop(slot, None)
        self._pending.append(slot)

    def done(self, slot: int) -> None:
        self._inflight.pop(slot, None)


def _fresh_stats() -> dict:
    return {
        "calls": 0,
        "connects": 0,
        "reconnects": 0,
        "heartbeat_failures": 0,
        "plan_offers": 0,
        "plan_cache_hits": 0,
        "plans_published": 0,
        "publishes_skipped": 0,
        "tasks_completed": 0,
        "steals": 0,
        "registrations": 0,
        "drains": 0,
        "per_host_tasks": {},
    }


class HostPool:
    """Persistent coordinator runtime: connections that outlive calls.

    One instance per process (module-level :data:`_HOST_POOL`). All socket
    I/O runs on a dedicated daemon thread's event loop, so entry points can
    block on :meth:`run` from plain synchronous code *and* from inside a
    running event loop (a web handler, a notebook) without nesting
    ``asyncio.run``. Connections are keyed by ``host:port`` and reused
    across calls; before reuse an idle connection is health-checked with a
    ``PING`` heartbeat and transparently re-opened if the worker bounced —
    the fresh connection re-publishes whatever plans the new worker
    process is missing (the digest handshake makes that exact). Counters
    are exposed by :meth:`stats`; they are only ever mutated on the pool
    thread.
    """

    def __init__(self):
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._start_lock = threading.Lock()
        self._conns: dict[str, _Conn] = {}
        self._host_locks: dict[str, asyncio.Lock] = {}
        self._ever_connected: set[str] = set()
        self._stats = _fresh_stats()
        self._registered: dict[str, int] = {}  # hostport -> registering pid
        self._registry = None  # the asyncio server accepting registrations
        self._registry_addr: str | None = None
        self._registry_lock = threading.Lock()
        self._registry_tasks: set = set()  # live per-connection handlers

    # -- lifecycle -------------------------------------------------------- #

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._start_lock:
            if self._loop is not None and self._thread is not None \
                    and self._thread.is_alive():
                return self._loop
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="repro-host-pool", daemon=True
            )
            thread.start()
            self._loop, self._thread = loop, thread
            return loop

    def _submit(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._ensure_loop())

    def reset(self) -> None:
        """Drop every pooled connection (politely), keeping the stats.

        The next call reconnects from scratch — this is the per-call
        baseline the amortization benchmark measures against, and the
        test hook for exercising the worker-side plan cache across
        connections.
        """
        if self._loop is None:
            return
        self._submit(self._close_connections()).result()

    def close(self) -> None:
        """Tear the runtime down: connections, registry, then the loop thread.

        Runs at interpreter exit via :func:`close_pool`, which may be
        *after* the daemon loop thread was already torn down — so every
        step is best-effort and the method is idempotent: a dead loop
        just has its references dropped, never awaited. Exceptions never
        escape (an atexit hook that raises turns a clean exit noisy).
        """
        loop, thread = self._loop, self._thread
        if loop is None:
            return
        alive = thread is not None and thread.is_alive() and not loop.is_closed()
        if alive:
            try:
                # Not _submit: that would restart a dead loop thread.
                asyncio.run_coroutine_threadsafe(
                    self._close_runtime(), loop
                ).result(timeout=5.0)
            except Exception:  # pragma: no cover - interpreter-exit races
                pass
            try:
                loop.call_soon_threadsafe(loop.stop)
                thread.join(timeout=5.0)
            except Exception:  # pragma: no cover - interpreter-exit races
                pass
        try:
            if not loop.is_closed():
                loop.close()
        except Exception:  # pragma: no cover - interpreter-exit races
            pass
        self._loop = None
        self._thread = None
        self._host_locks = {}
        self._conns = {}
        self._registered = {}
        self._registry = None
        self._registry_addr = None

    async def _close_runtime(self) -> None:
        await self._close_registry()
        await self._close_connections()

    async def _close_registry(self) -> None:
        if self._registry is None:
            return
        self._registry.close()
        try:
            await asyncio.wait_for(self._registry.wait_closed(), timeout=1.0)
        except Exception:  # pragma: no cover - teardown race
            pass
        # Registered workers hold their link open (membership = the link),
        # so every live handler is parked in a read that would outlive the
        # loop — cancel them or interpreter exit logs pending-task noise.
        for task in list(self._registry_tasks):
            task.cancel()
        if self._registry_tasks:
            await asyncio.gather(
                *self._registry_tasks, return_exceptions=True
            )
        self._registry_tasks.clear()
        self._registry = None
        self._registry_addr = None
        self._registered = {}

    async def _close_connections(self) -> None:
        for conn in list(self._conns.values()):
            try:
                await _send_message(conn.writer, MSG_SHUTDOWN, {})
            except _CONNECTION_ERRORS:
                pass
            self._discard(conn)

    def stats(self) -> dict:
        """A snapshot of the runtime counters plus the open connections.

        Counters (and the connection dict) are mutated on the pool thread,
        so the snapshot is taken there too — a caller iterating them
        directly could race a resize mid-call. With no loop running yet
        the pool is idle and the direct copy is safe.
        """
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            return self._submit(self._snapshot()).result()
        return self._snapshot_now()

    async def _snapshot(self) -> dict:
        return self._snapshot_now()

    def _snapshot_now(self) -> dict:
        snapshot = dict(self._stats)
        snapshot["per_host_tasks"] = dict(self._stats["per_host_tasks"])
        snapshot["open_connections"] = sorted(self._conns)
        snapshot["registered_hosts"] = sorted(self._registered)
        snapshot["registry_addr"] = self._registry_addr
        return snapshot

    # -- elastic membership: the registration endpoint -------------------- #

    def registered(self) -> tuple[str, ...]:
        """Hosts currently registered via the endpoint (insertion order)."""
        return tuple(self._registered)

    def ensure_registry(self) -> str | None:
        """Start the env-armed registry once; returns its bound address."""
        if _REGISTRY_BIND is None:
            return self._registry_addr
        host, port = _parse_hostport(_REGISTRY_BIND)
        try:
            return self.start_registry(host, port)
        except (ReproError, OSError) as exc:
            _warn_once(
                "registry-bind",
                f"could not bind the worker registry on {_REGISTRY_BIND} "
                f"({exc}); elastic registration disabled",
            )
            return None

    def start_registry(self, host: str = "127.0.0.1", port: int = 0) -> str:
        """Bind the registration endpoint (idempotent); returns ``host:port``.

        Workers started with ``repro serve --register host:port`` dial it,
        authenticate exactly like a coordinator dialing a worker (HMAC
        challenge when a secret is armed; TLS when the provider has a
        server certificate), REGISTER an advertised address, and hold the
        connection open — membership lasts exactly as long as the link.
        """
        with self._registry_lock:
            if self._registry_addr is not None:
                return self._registry_addr
            self._registry_addr = self._submit(
                self._start_registry(host, port)
            ).result(timeout=CONNECT_TIMEOUT)
            return self._registry_addr

    def stop_registry(self) -> None:
        """Close the registration endpoint and drop every registered host."""
        with self._registry_lock:
            if self._registry_addr is None:
                return
            self._submit(self._close_registry()).result(timeout=CONNECT_TIMEOUT)

    def admit(self, hostport: str) -> None:
        """Add a worker to the elastic membership (thread-safe test/API hook)."""
        _parse_hostport(hostport)
        self._submit(self._admit(hostport)).result(timeout=CONNECT_TIMEOUT)

    def drain(self, hostport: str) -> None:
        """Remove a worker from the elastic membership (thread-safe)."""
        self._submit(self._drain(hostport)).result(timeout=CONNECT_TIMEOUT)

    async def _start_registry(self, host: str, port: int):
        provider = auth_provider()
        try:
            context = provider.server_ssl()
        except ReproError:
            # A coordinator without its own certificate still registers
            # workers — the link is then HMAC/plaintext like the old wire.
            context = None
        self._registry = await asyncio.start_server(
            self._handle_registration, host, port, ssl=context
        )
        bound = self._registry.sockets[0].getsockname()[1]
        return f"{host}:{bound}"

    async def _admit(self, hostport: str, pid: int = 0) -> None:
        if hostport not in self._registered:
            self._stats["registrations"] += 1
        self._registered[hostport] = pid

    async def _drain(self, hostport: str) -> None:
        if self._registered.pop(hostport, None) is None:
            return
        self._stats["drains"] += 1
        conn = self._conns.get(hostport)
        lock = self._host_locks.get(hostport)
        if conn is not None and (lock is None or not lock.locked()):
            # The pooled connection is idle: retire it politely now. A
            # busy one finishes its current call first (the queue simply
            # stops handing the host work on the next call).
            try:
                await _send_message(conn.writer, MSG_SHUTDOWN, {})
            except _CONNECTION_ERRORS:
                pass
            self._discard(conn)

    async def _handle_registration(self, reader, writer) -> None:
        """One registry peer: challenge, REGISTER, then hold until EOF."""
        provider = auth_provider()
        advertise = None
        task = asyncio.current_task()
        self._registry_tasks.add(task)
        try:
            hello = {
                "version": PROTOCOL_VERSION,
                "caps": sorted(PROTOCOL_CAPS),
                "role": "registry",
                "pid": os.getpid(),
            }
            secret = provider.secret()
            challenge = None
            if secret is not None:
                challenge = secrets_module.token_hex(16)
                hello["challenge"] = challenge
            await _send_message(writer, MSG_HELLO, hello)
            kind, meta, _blob = await asyncio.wait_for(
                _read_message(reader), CONNECT_TIMEOUT
            )
            if challenge is not None:
                expected = auth_response(secret, challenge)
                if kind != MSG_AUTH or not hmac_module.compare_digest(
                    str(meta.get("mac", "")), expected
                ):
                    await _send_message(
                        writer, MSG_ERROR, {"message": "authentication failed"}
                    )
                    return
                await _send_message(writer, MSG_AUTH_OK, {"pid": os.getpid()})
                kind, meta, _blob = await asyncio.wait_for(
                    _read_message(reader), CONNECT_TIMEOUT
                )
            if kind != MSG_REGISTER:
                await _send_message(
                    writer, MSG_ERROR, {"message": "expected a REGISTER"}
                )
                return
            advertise = str(meta.get("advertise", ""))
            _parse_hostport(advertise)  # garbage advertisements are refused
            await self._admit(advertise, int(meta.get("pid") or 0))
            await _send_message(
                writer, MSG_REGISTER, {"advertise": advertise, "accepted": True}
            )
            while True:  # membership lasts exactly as long as this link
                kind, meta, _blob = await _read_message(reader)
                if kind == MSG_DEREGISTER:
                    return
                if kind == MSG_PING:
                    await _send_message(writer, MSG_PONG, {"pid": os.getpid()})
        except _CONNECTION_ERRORS:
            pass  # worker went away: EOF is the drain signal
        except ReproError:
            pass  # malformed registration; refuse silently
        except asyncio.CancelledError:
            # Registry shutdown. Swallow so the task completes instead of
            # ending *cancelled*: asyncio.streams retrieves task.exception()
            # in a done-callback, and a cancelled task would re-raise there
            # and spam the loop's exception handler at teardown.
            pass
        finally:
            self._registry_tasks.discard(task)
            if advertise is not None:
                await self._drain(advertise)
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown race
                pass

    # -- connection management (pool thread only) ------------------------- #

    def _discard(self, conn: _Conn) -> None:
        if self._conns.get(conn.hostport) is conn:
            del self._conns[conn.hostport]
        try:
            conn.writer.close()
        except Exception:  # pragma: no cover - teardown race
            pass

    async def _heartbeat(self, conn: _Conn) -> bool:
        try:
            await _send_message(conn.writer, MSG_PING, {})
            kind, _meta, _blob = await asyncio.wait_for(
                _read_message(conn.reader), HEARTBEAT_TIMEOUT
            )
            return kind == MSG_PONG
        except _CONNECTION_ERRORS + (ReproError,):
            # ReproError covers a dying worker flushing a garbled partial
            # frame: that PING failed just as surely as a dropped socket —
            # letting it propagate would skip the failure accounting *and*
            # leak the dead _Conn in the pool map.
            return False

    async def _connect(self, hostport: str) -> _Conn:
        host, port = _parse_hostport(hostport)
        provider = auth_provider()
        reader, writer = await _open_transport(host, port, provider)
        try:
            kind, meta, _blob = await asyncio.wait_for(
                _read_message(reader), CONNECT_TIMEOUT
            )
            if kind != MSG_HELLO:
                raise ReproError(f"worker {hostport} did not greet with HELLO")
            caps = negotiate_caps(meta, f"worker {hostport}")
            challenge = meta.get("challenge")
            if challenge is not None:
                secret = provider.secret()
                if secret is None:
                    raise ReproError(
                        f"worker {hostport} requires authentication and no "
                        "shared secret is set (REPRO_DISTRIBUTED_SECRET)"
                    )
                await _send_message(
                    writer, MSG_AUTH, {"mac": auth_response(secret, challenge)}
                )
                akind, ameta, _ablob = await asyncio.wait_for(
                    _read_message(reader), CONNECT_TIMEOUT
                )
                if akind != MSG_AUTH_OK:
                    raise ReproError(
                        f"worker {hostport} rejected authentication "
                        f"({ameta.get('message', 'denied')})"
                    )
        except BaseException:
            writer.close()
            raise
        conn = _Conn(hostport, reader, writer, meta.get("pid"), caps)
        self._stats["connects"] += 1
        if hostport in self._ever_connected:
            self._stats["reconnects"] += 1
        self._ever_connected.add(hostport)
        self._conns[hostport] = conn
        return conn

    async def _acquire(self, hostport: str, payloads) -> _Conn | None:
        """A healthy connection with ``payloads`` published, or ``None``.

        Reuses the pooled connection when its heartbeat answers; otherwise
        reconnects (a bounced worker rejoining the pool). Failures warn
        once per host per process and return ``None`` — the caller's other
        hosts, or the local fallback, absorb the work. The whole sequence
        (heartbeat included) runs inside one try so no failure path can
        leave a dead connection behind in the pool map.
        """
        conn = self._conns.get(hostport)
        try:
            if conn is not None and not await self._heartbeat(conn):
                self._stats["heartbeat_failures"] += 1
                self._discard(conn)
                conn = None
            if conn is None:
                conn = await self._connect(hostport)
            await self._publish(conn, payloads)
        except asyncio.CancelledError:
            # Cancelled mid-exchange (a steal completed the call while
            # this host was still heartbeating/publishing): a PING or
            # offer may be on the wire with its reply unread, so the
            # connection cannot be pooled — the next call would read the
            # stale PONG/HAVE where it expects its own reply.
            if conn is not None:
                self._discard(conn)
            raise
        except _CONNECTION_ERRORS + (ReproError,) as exc:
            if conn is not None:
                self._discard(conn)
            _warn_once(
                f"connect:{hostport}",
                f"distributed worker {hostport} unreachable ({exc}); "
                "continuing without it",
            )
            return None
        return conn

    async def _publish(self, conn: _Conn, payloads) -> None:
        """Digest handshake: ship each payload at most once per worker.

        A digest already confirmed on this connection is skipped outright;
        otherwise the worker is offered the digest and only answers
        ``PLAN_NEED`` when its process-wide cache lacks it — so a plan
        crosses the wire once per worker per circuit, not once per call,
        and a reconnect to a live worker costs two tiny frames.
        """
        for msg_kind, msg_meta, msg_blob in payloads:
            digest = msg_meta["checksum"]
            if digest in conn.published:
                self._stats["publishes_skipped"] += 1
                continue
            self._stats["plan_offers"] += 1
            await _send_message(
                conn.writer, MSG_PLAN_OFFER,
                {"checksum": digest,
                 "kind": "tables" if msg_kind == MSG_TABLES else "plan"},
            )
            kind, meta, _blob = await _read_message(conn.reader)
            if kind == MSG_PLAN_HAVE and meta.get("checksum") == digest:
                self._stats["plan_cache_hits"] += 1
            elif kind == MSG_PLAN_NEED and meta.get("checksum") == digest:
                await _send_message(conn.writer, msg_kind, msg_meta, msg_blob)
                self._stats["plans_published"] += 1
            else:
                raise ReproError(
                    f"worker {conn.hostport} answered a plan offer with "
                    f"message kind {kind}"
                )
            conn.published.add(digest)

    # -- coordinated calls ------------------------------------------------ #

    def run(self, hosts, payloads, tasks) -> dict:
        """Coordinate ``tasks`` over ``hosts``; returns ``{task_id: result}``.

        Blocks the calling thread until the workers have done what they
        can; anything missing from the returned dict is the caller's to
        run locally. Thread-safe: concurrent calls interleave on the pool
        loop, serialized per host by a host lock.
        """
        if not hosts or not tasks:
            return {}
        return self._submit(self._run(tuple(hosts), payloads, tasks)).result()

    async def _run(self, hosts, payloads, tasks) -> dict:
        self._stats["calls"] += 1
        results: dict = {}
        complete = asyncio.Event()
        queue = _StealQueue(len(tasks), self._stats)
        pumps = [
            asyncio.ensure_future(
                self._pump(hostport, payloads, queue, tasks, results, complete)
            )
            for hostport in dict.fromkeys(hosts)  # dedupe, keep order
        ]
        waiter = asyncio.ensure_future(complete.wait())
        all_pumps = asyncio.ensure_future(
            asyncio.gather(*pumps, return_exceptions=True)
        )
        # Wake when the pumps are all done OR every result is already in —
        # whichever comes first. In the second case, cancel stragglers
        # still blocked on a slow or wedged worker (their shard was
        # already answered by a steal); a cancelled pump discards its
        # connection, so no stale RESULT frame can be misread later.
        await asyncio.wait((all_pumps, waiter), return_when=asyncio.FIRST_COMPLETED)
        for pump in pumps:
            if not pump.done():
                pump.cancel()
        waiter.cancel()
        outcomes = await all_pumps
        for outcome in outcomes:
            if isinstance(outcome, BaseException) and not isinstance(
                outcome, asyncio.CancelledError
            ):
                raise outcome
        return results

    async def _pump(self, hostport, payloads, queue, tasks, results, complete):
        """One host's task loop for one call: pull, pipeline, record, steal.

        Up to :func:`pipeline_depth` task frames ride the connection at
        once (when the worker negotiated the ``pipeline`` capability), so
        shard N+1 crosses the wire while shard N computes; RESULT frames
        are correlated back to their shard by task id, out of order.
        Outstanding payload bytes beyond the first frame are capped at
        :data:`PIPELINE_WINDOW_BYTES` — a frame that will not fit waits
        for the pipe to empty and goes lockstep, which keeps unread bytes
        in both directions bounded far below the kernel socket buffers
        (the classic both-sides-blocked-writing pipelining deadlock).

        Tracks its own per-task latency so the stealing grace scales with
        the connection's real speed (a fast host may steal a shard that
        has been in flight for twice its own per-shard time; a slow one
        effectively never steals). ``dirty`` marks the moments a frame may
        be half-way through the socket — only then does a cancellation
        (every result already in via a steal) have to cost the pooled
        connection.
        """
        lock = self._host_locks.setdefault(hostport, asyncio.Lock())
        loop = asyncio.get_running_loop()
        conn = None
        dirty = False
        ran: set[int] = set()
        inflight: dict[int, tuple[int, float, int]] = {}  # id -> (slot, t0, bytes)

        def abandon_inflight() -> None:
            """Requeue every unanswered shard (the connection is lost)."""
            for slot, _started, _nbytes in inflight.values():
                queue.release(slot)
                ran.discard(slot)
            inflight.clear()

        try:
            async with lock:
                dirty = True  # _acquire exchanges heartbeat/auth/plan frames
                conn = await self._acquire(hostport, payloads)
                dirty = False
                if conn is None:
                    return
                depth = pipeline_depth() if "pipeline" in conn.caps else 1
                rejoined = False
                latency_total = 0.0
                latency_count = 0
                window_bytes = 0
                while len(results) < len(tasks):
                    min_age = STEAL_GRACE if latency_count == 0 else max(
                        STEAL_GRACE, 2.0 * latency_total / latency_count
                    )
                    retry_in = None
                    try:
                        while len(inflight) < depth:
                            slot, retry_in = queue.take(ran, loop.time(), min_age)
                            if slot is None:
                                break
                            task_id, meta, blob = tasks[slot]
                            if task_id in results:
                                queue.done(slot)
                                continue
                            payload = blob() if callable(blob) else blob
                            if inflight and (
                                window_bytes + len(payload) > PIPELINE_WINDOW_BYTES
                            ):
                                # Too big to pipeline safely: put it back
                                # and ship it alone once the pipe drains.
                                queue.release(slot)
                                break
                            ran.add(slot)
                            inflight[task_id] = (slot, loop.time(), len(payload))
                            window_bytes += len(payload)
                            dirty = True
                            await _send_message(conn.writer, MSG_TASK, meta, payload)
                        if not inflight:
                            if retry_in is None:
                                break
                            # In-flight work exists elsewhere but is too
                            # young to steal: give its owner a beat.
                            await asyncio.sleep(min(retry_in, STEAL_GRACE))
                            continue
                        kind, rmeta, rblob = await _read_message(conn.reader)
                    except _CONNECTION_ERRORS:
                        abandon_inflight()
                        window_bytes = 0
                        dirty = False
                        self._discard(conn)
                        conn = None
                        _warn_once(
                            "worker-died",
                            "a distributed worker disconnected mid-run; its "
                            "shards were requeued",
                        )
                        if rejoined:
                            return
                        rejoined = True  # one rejoin attempt per host per call
                        dirty = True
                        conn = await self._acquire(hostport, payloads)
                        dirty = False
                        if conn is None:
                            return
                        depth = pipeline_depth() if "pipeline" in conn.caps else 1
                        continue
                    entry = (
                        inflight.pop(rmeta.get("id"), None)
                        if kind == MSG_RESULT
                        else None
                    )
                    if entry is None:
                        # MSG_ERROR (e.g. a cache-evicted plan on a shared
                        # worker) or a reply for nothing in flight: requeue
                        # everything and drop the connection so the next
                        # call re-publishes from a clean slate.
                        detail = (
                            rmeta.get("message") if kind == MSG_ERROR
                            else "bad reply"
                        )
                        abandon_inflight()
                        _warn_once(
                            "worker-refused",
                            f"a distributed worker refused a shard ({detail}); "
                            "it was requeued",
                        )
                        self._discard(conn)
                        return
                    slot, started, nbytes = entry
                    window_bytes -= nbytes
                    dirty = bool(inflight)  # pipelined replies still unread
                    task_id = rmeta.get("id")
                    queue.done(slot)
                    latency_total += loop.time() - started
                    latency_count += 1
                    if task_id not in results:  # first answer wins on steals
                        results[task_id] = (rmeta, rblob)
                        self._stats["tasks_completed"] += 1
                        per_host = self._stats["per_host_tasks"]
                        per_host[hostport] = per_host.get(hostport, 0) + 1
                    if len(results) >= len(tasks):
                        complete.set()
        except asyncio.CancelledError:
            # Cancelled with frames possibly half-exchanged (mid-task,
            # mid-handshake, or pipelined replies unread): the connection
            # has bytes in flight and cannot be pooled. A cancel between
            # frames keeps it.
            if conn is not None and (dirty or inflight):
                self._discard(conn)
            raise


_HOST_POOL = HostPool()


def host_pool() -> HostPool:
    """The process-wide persistent coordinator runtime."""
    return _HOST_POOL


def pool_stats() -> dict:
    """Counters of the persistent runtime (see :meth:`HostPool.stats`)."""
    return _HOST_POOL.stats()


def reset_pool() -> None:
    """Drop the pooled worker connections; the next call reconnects."""
    _HOST_POOL.reset()


def registered_hosts() -> tuple[str, ...]:
    """Workers currently registered with this coordinator's registry.

    Starts the env-armed registry (``REPRO_DISTRIBUTED_REGISTRY_BIND``)
    lazily on first use, so merely importing this module never binds a
    socket. Without the env knob or an explicit :func:`start_registry`
    this is always empty and costs a dict copy.
    """
    if _REGISTRY_BIND is not None:
        _HOST_POOL.ensure_registry()
    return _HOST_POOL.registered()


def start_registry(host: str = "127.0.0.1", port: int = 0) -> str:
    """Bind the worker-registration endpoint; returns its ``host:port``."""
    return _HOST_POOL.start_registry(host, port)


def stop_registry() -> None:
    """Close the registration endpoint and drop the elastic membership."""
    _HOST_POOL.stop_registry()


def close_pool() -> None:
    """Close the persistent runtime entirely (connections + loop thread).

    Distinct from :func:`repro.circuits.parallel.shutdown_pool` (the
    multi-process pool); this one tears down the TCP runtime. Registered
    at exit; safe to call repeatedly — the next coordinated call simply
    starts a fresh runtime.
    """
    _HOST_POOL.close()


atexit.register(close_pool)


def _run_distributed(hosts, payloads, tasks, run_local) -> list:
    """Execute wire tasks over ``hosts``, completing any remainder locally.

    ``tasks`` is ``[(task_id, meta, blob), ...]`` (``blob`` may be a
    callable, materialized per send); returns the per-task
    ``(result_meta, result_blob)`` pairs in task order — the deterministic
    merge order — regardless of which host (or the local fallback) ran each
    shard. Never loses a shard: anything the workers did not finish is
    evaluated in-process through ``run_local(meta)``. Coordination runs on
    the persistent :class:`HostPool` (its own loop thread), so this is
    safe to call from plain code and from inside a running event loop
    alike.
    """
    results = _HOST_POOL.run(hosts, payloads, tasks)
    for task_id, meta, _blob in tasks:
        if task_id not in results:
            results[task_id] = run_local(meta)
    return [results[task_id] for task_id, _meta, _blob in tasks]


# --------------------------------------------------------------------------- #
# entry points

def _plan_payload(compiled) -> tuple[bytes, str]:
    plan_bytes = plan_to_bytes(compiled)
    return plan_bytes, compiled.plan_digest()


def monte_carlo_hits(compiled, marginals, samples: int, seed: int = 0,
                     hosts=None, workers: int | None = None) -> int:
    """Monte-Carlo hit count, fanned out over distributed workers.

    The ``hosts=`` layer above :func:`repro.circuits.parallel.monte_carlo_hits`:
    the same ``(seed, shard_index, count)`` shard decomposition is streamed
    to remote workers that rebuilt the plan from its wire form, and the
    per-shard hit counts are summed in shard order — bit-identical to the
    in-process and pool paths for a fixed seed. With no effective hosts the
    call simply defers to the pool entry point (honouring ``workers=``).
    """
    hosts = effective_hosts(hosts)
    if not hosts:
        return _parallel.monte_carlo_hits(
            compiled, marginals, samples, seed=seed, workers=workers
        )
    check(samples > 0, "need at least one sample")
    compiled = _compiled.compile_circuit(compiled)
    seed = 0 if seed is None else int(seed)
    probs_blob = _values_to_bytes("f", list(marginals))
    plan_bytes, checksum = _plan_payload(compiled)
    decoded = plan_from_bytes(plan_bytes)  # local shards run the same wire plan

    tasks = [
        (
            slot,
            {"id": slot, "op": "mc", "plan": checksum,
             "seed": seed, "index": index, "count": count},
            probs_blob,
        )
        for slot, (index, count) in enumerate(_parallel._sample_shards(samples))
    ]

    def run_local(meta):
        probs = _values_from_bytes("f", probs_blob)
        hits = decoded.mc_shard_hits(probs, meta["seed"], meta["index"], meta["count"])
        return {"hits": hits}, b""

    results = _run_distributed(
        hosts, [(MSG_PLAN, {"checksum": checksum}, plan_bytes)], tasks, run_local
    )
    return sum(int(meta["hits"]) for meta, _blob in results)


def karp_luby_hits(membership, probs, weights, samples: int, seed: int = 0,
                   hosts=None, workers: int | None = None) -> int:
    """Karp–Luby trial count over distributed workers (see
    :func:`repro.circuits.parallel.karp_luby_hits` for the semantics)."""
    hosts = effective_hosts(hosts)
    if not hosts:
        return _parallel.karp_luby_hits(
            membership, probs, weights, samples, seed=seed, workers=workers
        )
    check(samples > 0, "need at least one sample")
    seed = 0 if seed is None else int(seed)
    membership_rows = [list(row) for row in membership]
    n_facts = len(membership_rows[0]) if membership_rows else 0
    probs_list = [float(p) for p in probs]
    cumulative = []
    total = 0.0
    for weight in weights:
        total += float(weight)
        cumulative.append(total)
    tables_bytes = _tables_to_bytes(
        membership_rows, n_facts, probs_list, cumulative, total
    )
    checksum = plan_checksum(tables_bytes)
    decoded = tables_from_bytes(tables_bytes)

    tasks = [
        (
            slot,
            {"id": slot, "op": "kl", "tables": checksum,
             "seed": seed, "index": index, "count": count},
            b"",
        )
        for slot, (index, count) in enumerate(_parallel._sample_shards(samples))
    ]

    def run_local(meta):
        return {"hits": decoded.kl_shard_hits(
            meta["seed"], meta["index"], meta["count"]
        )}, b""

    results = _run_distributed(
        hosts, [(MSG_TABLES, {"checksum": checksum}, tables_bytes)], tasks, run_local
    )
    return sum(int(meta["hits"]) for meta, _blob in results)


def _distributed_matrix_pass(compiled, matrix, as_float: bool, hosts):
    np = numpy_module()
    check(np is not None, "distributed matrix passes require numpy")
    hosts = effective_hosts(hosts)
    compiled = _compiled.compile_circuit(compiled)
    dtype = np.float64 if as_float else np.bool_
    matrix = np.ascontiguousarray(matrix, dtype=dtype)
    check(
        matrix.ndim == 2 and matrix.shape[1] == len(compiled.var_names),
        f"world matrix must be (n, {len(compiled.var_names)}), got {matrix.shape}",
    )
    n_rows = matrix.shape[0]
    out = np.empty(n_rows, dtype=dtype)
    if n_rows == 0:
        return out
    if not hosts:
        compiled.batch_plan().run_into(matrix, out, as_float)
        return out
    plan_bytes, checksum = _plan_payload(compiled)
    # Shard into STEAL_SHARDS_PER_HOST pieces per host (slack for the
    # stealing queue to rebalance), then re-split so no single shard's
    # payload can exceed MAX_SHARD_BYTES: frames stay far under the wire
    # limit and a worker never buffers more than one bounded slice. Blobs
    # are callables materialized per send, so the matrix is never
    # duplicated wholesale. Output values are per-row, so the shard
    # granularity cannot change the merged result.
    row_bytes = max(1, int(matrix.shape[1]) * matrix.dtype.itemsize)
    max_rows = max(1, MAX_SHARD_BYTES // row_bytes)
    shards: list[tuple[int, int]] = []
    for start, end in _parallel._row_shards(
        n_rows, max(1, len(hosts)), parts_per_worker=STEAL_SHARDS_PER_HOST
    ):
        for split in range(start, end, max_rows):
            shards.append((split, min(split + max_rows, end)))
    tasks = [
        (
            slot,
            {"id": slot, "op": "eval", "plan": checksum, "as_float": as_float,
             "start": start, "rows": end - start},
            (lambda start=start, end=end: matrix[start:end].tobytes()),
        )
        for slot, (start, end) in enumerate(shards)
    ]

    def run_local(meta):
        start = meta["start"]
        rows = meta["rows"]
        shard_out = np.empty(rows, dtype=dtype)
        compiled.batch_plan().run_into(matrix[start : start + rows], shard_out, as_float)
        return meta, shard_out.tobytes()

    results = _run_distributed(
        hosts, [(MSG_PLAN, {"checksum": checksum}, plan_bytes)], tasks, run_local
    )
    for (slot, meta, _blob), (rmeta, rblob) in zip(tasks, results):
        start = meta["start"]
        rows = meta["rows"]
        check(
            len(rblob) == rows * out.dtype.itemsize,
            "distributed eval result has the wrong length",
        )
        out[start : start + rows] = np.frombuffer(rblob, dtype=dtype)
    return out


def evaluate_batch_distributed(compiled, matrix, hosts=None):
    """Boolean batch evaluation with row shards streamed to remote workers.

    The stage-5 analogue of
    :func:`repro.circuits.parallel.evaluate_batch_sharded`: same kernels on
    the same rows (after a wire round trip of the plan), so the result is
    bit-identical to the local paths. With no effective hosts the pass runs
    in-process.
    """
    return _distributed_matrix_pass(compiled, matrix, as_float=False, hosts=hosts)


def probability_batch_distributed(compiled, matrix, hosts=None):
    """The Theorem-1 float pass with row shards streamed to remote workers."""
    return _distributed_matrix_pass(compiled, matrix, as_float=True, hosts=hosts)
