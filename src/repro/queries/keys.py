"""Primary-key declarations for relations.

Certain-answer query answering (``repro.cqa``) reasons about databases
that may *violate* their primary keys: several facts of one relation can
agree on the key attributes.  A :class:`KeySpec` records, per relation,
which argument positions form the primary key.  Facts that agree on those
positions form a **block**; a *repair* of the instance picks exactly one
fact from every block.

Relations with no declared key default to "every position is key", which
makes each fact its own block — the relation is then certain and repairs
never drop any of its facts.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.instances.base import AbstractInstance, Fact
from repro.util import check

__all__ = ["KeySpec", "key_spec"]


class KeySpec:
    """Maps relation names to the argument positions forming their key.

    Immutable and hashable; construct with :func:`key_spec` or directly
    from a mapping ``{relation: positions}``.
    """

    __slots__ = ("_positions", "_hash")

    def __init__(self, positions: Mapping[str, Iterable[int]]) -> None:
        cleaned: dict[str, tuple[int, ...]] = {}
        for relation, raw in positions.items():
            check(isinstance(relation, str) and relation != "", "relation names must be non-empty strings")
            pos = tuple(raw)
            for p in pos:
                check(isinstance(p, int) and p >= 0, f"key positions for {relation!r} must be non-negative ints")
            check(len(set(pos)) == len(pos), f"duplicate key position for relation {relation!r}")
            cleaned[relation] = tuple(sorted(pos))
        self._positions = cleaned
        self._hash = hash(tuple(sorted(cleaned.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{r}: {p}" for r, p in sorted(self._positions.items()))
        return f"KeySpec({{{inner}}})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeySpec):
            return NotImplemented
        return self._positions == other._positions

    def __hash__(self) -> int:
        return self._hash

    def relations(self) -> tuple[str, ...]:
        """Relations with an explicitly declared key, sorted."""
        return tuple(sorted(self._positions))

    def declares(self, relation: str) -> bool:
        return relation in self._positions

    def positions_for(self, relation: str, arity: int) -> tuple[int, ...]:
        """Key positions of ``relation``; all positions when undeclared."""
        declared = self._positions.get(relation)
        if declared is None:
            return tuple(range(arity))
        check(
            all(p < arity for p in declared),
            f"key position out of range for {relation!r} (arity {arity})",
        )
        return declared

    def key_of(self, f: Fact) -> tuple:
        """The key projection of a fact (the tuple identifying its block)."""
        return tuple(f.args[p] for p in self.positions_for(f.relation, len(f.args)))

    def violations(self, instance: AbstractInstance) -> int:
        """Number of facts beyond the first in some block (0 ⇔ consistent)."""
        total = 0
        for relation, arity in instance.relations().items():
            index = instance.key_index(relation, self.positions_for(relation, arity))
            total += sum(len(block) - 1 for block in index.values())
        return total

    def is_consistent(self, instance: AbstractInstance) -> bool:
        """Whether ``instance`` satisfies every declared key."""
        return self.violations(instance) == 0


def key_spec(**relations: Iterable[int] | int) -> KeySpec:
    """Build a :class:`KeySpec` from keyword arguments.

    >>> keys = key_spec(R=(0,), S=0)
    >>> keys.positions_for("R", 2)
    (0,)

    A bare int is shorthand for a singleton key.
    """
    positions: dict[str, Iterable[int]] = {}
    for relation, raw in relations.items():
        if isinstance(raw, int):
            positions[relation] = (raw,)
        else:
            positions[relation] = tuple(raw)
    return KeySpec(positions)
