"""E12 — partial decompositions: exact tentacles + sampled core.

The paper's perspective (and ProbTree [38]): real uncertain data may have a
dense core but large tree-like parts; handle the tree-like parts exactly and
sample only the core. We measure, on core+tentacle reachability workloads:

- the reduction (how many uncertain facts the sampler still has to touch);
- estimator accuracy at equal sample budgets (the hybrid additionally
  series-factors terminal chains — genuine variance reduction);
- time to reach a target accuracy.

Run the table:  python benchmarks/bench_hybrid.py
Benchmarks:     pytest benchmarks/bench_hybrid.py --benchmark-only
"""

import time

import networkx as nx
import pytest
from types import SimpleNamespace

from repro.baselines import tid_probability_enumerate
from repro.core.hybrid import hybrid_stconn, monte_carlo_stconn, reduce_for_stconn
from repro.workloads import core_and_tentacles_tid


def conn_oracle(s, t):
    def fn(world):
        graph = nx.Graph()
        graph.add_nodes_from([s, t])
        for f in world.facts():
            if f.relation == "E":
                graph.add_edge(*f.args)
        return nx.has_path(graph, s, t)

    return SimpleNamespace(holds_in=fn)


def test_reduction(benchmark):
    tid = core_and_tentacles_tid(5, 4, 6, seed=0)
    reduction = benchmark(reduce_for_stconn, tid, "core0", "t3_5")
    assert len(reduction.reduced) < len(tid)


def test_hybrid_estimator(benchmark):
    tid = core_and_tentacles_tid(5, 4, 6, seed=0)
    estimate, _reduction = benchmark(hybrid_stconn, tid, "core0", "t3_5", 2000, 0)
    assert 0.0 <= estimate <= 1.0


def test_naive_mc_baseline(benchmark):
    tid = core_and_tentacles_tid(5, 4, 6, seed=0)
    estimate = benchmark(monte_carlo_stconn, tid, "core0", "t3_5", 2000, 0)
    assert 0.0 <= estimate <= 1.0


@pytest.mark.parametrize("tentacle_length", [3, 6])
def test_hybrid_is_unbiased(benchmark, tentacle_length):
    tid = core_and_tentacles_tid(4, 2, tentacle_length, seed=1)
    s, t = "core0", f"t1_{tentacle_length - 1}"
    exact = tid_probability_enumerate(conn_oracle(s, t), tid)
    estimate, _ = benchmark(hybrid_stconn, tid, s, t, 6000, 0)
    assert abs(estimate - exact) < 0.05


def main() -> None:
    print("E12 — partial decompositions (mini-ProbTree) for s–t reachability")

    tid = core_and_tentacles_tid(4, 3, 4, seed=3)
    s, t = "core0", "t2_3"
    exact = tid_probability_enumerate(conn_oracle(s, t), tid)
    reduction = reduce_for_stconn(tid, s, t)
    print(f"\nworkload: {len(tid)} uncertain edges; exact P = {exact:.4f}")
    print(f"reduction: {len(reduction.reduced)} edges remain "
          f"({reduction.fragments_summarized} fragments summarized exactly)")

    print("\nmean absolute error over 30 runs at equal sample budgets:")
    print(f"{'samples':>8} {'hybrid MAE':>11} {'naive MAE':>10}")
    for samples in [50, 200, 800]:
        hybrid_errors = []
        naive_errors = []
        for seed in range(30):
            estimate, _ = hybrid_stconn(tid, s, t, samples=samples, seed=seed)
            hybrid_errors.append(abs(estimate - exact))
            naive_errors.append(
                abs(monte_carlo_stconn(tid, s, t, samples=samples, seed=seed) - exact)
            )
        print(f"{samples:>8} {sum(hybrid_errors)/30:>11.4f} {sum(naive_errors)/30:>10.4f}")

    print("\ntime per 1000 samples (larger workload, 5-core, 4 tentacles x 8):")
    big = core_and_tentacles_tid(5, 4, 8, seed=0)
    s2, t2 = "core0", "t3_7"
    big_reduction = reduce_for_stconn(big, s2, t2)
    start = time.perf_counter()
    monte_carlo_stconn(big, s2, t2, samples=1000, seed=0)
    naive_time = time.perf_counter() - start
    start = time.perf_counter()
    hybrid_stconn(big, s2, t2, samples=1000, seed=0)
    hybrid_time = time.perf_counter() - start
    print(f"  original: {len(big)} edges -> naive {naive_time:.3f}s")
    print(f"  reduced:  {len(big_reduction.reduced)} edges -> hybrid {hybrid_time:.3f}s"
          f" (includes exact fragment summarization)")
    print("\nshape check: hybrid error <= naive error at every budget;"
          " per-sample cost drops with the reduction.")


if __name__ == "__main__":
    main()
