"""Conditioning on observations and crowd question selection (S11)."""

from repro.conditioning.condition import (
    ConditionedInstance,
    condition_pc_on_literal,
)
from repro.conditioning.crowd import (
    CrowdSession,
    CrowdSessionStep,
    SimulatedCrowd,
    binary_entropy,
    choose_question_greedy,
    expected_entropy_after_asking,
    run_crowd_session,
)

__all__ = [
    "ConditionedInstance",
    "CrowdSession",
    "CrowdSessionStep",
    "SimulatedCrowd",
    "binary_entropy",
    "choose_question_greedy",
    "condition_pc_on_literal",
    "expected_entropy_after_asking",
    "run_crowd_session",
]
