"""Tests for distributed shard execution over wire-serialized plans.

Four layers, matching :mod:`repro.circuits.distributed`:

- the **wire format** — property-tested round trips (random circuits →
  serialize → deserialize → identical batch results), and rejection of
  corrupted, truncated, wrong-magic, wrong-version and
  inconsistent-schedule payloads. These tests need no sockets and no
  numpy, so they run everywhere;
- the **routing knobs** — env parsing, scoping, per-call overrides, and
  the shared-secret knob;
- the **coordinator/worker protocol** — real localhost worker
  subprocesses (spawned through the ``conftest`` lifecycle fixtures):
  bit-identical estimates at 0/1/2 workers, mid-run fault injection with
  shard retry and no duplicate or lost shards, and graceful local
  fallback when every host is unreachable;
- the **persistent runtime** — connection reuse across calls, the
  ``PLAN_OFFER``/``PLAN_HAVE``/``PLAN_NEED`` digest handshake (plan
  crosses the wire once per worker per circuit), HMAC authentication
  (wrong secret rejected, right secret served), heartbeat-detected worker
  bounce with rejoin on the same port, and work stealing keeping a slow
  host from gating the merge while staying bit-identical to the 0-host
  oracle.

Socket tests carry the ``distributed`` marker so socket-free CI jobs can
deselect them.
"""

import math
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, compile_circuit, plancache
from repro.circuits import compiled as compiled_module
from repro.circuits import distributed, parallel
from repro.util import ReproError, stable_rng


def random_circuit(seed: int, n_vars: int = 6, steps: int = 16) -> Circuit:
    rng = stable_rng(seed)
    c = Circuit()
    gates = [c.variable(f"v{i}") for i in range(n_vars)] + [c.true(), c.false()]
    for _ in range(rng.randint(4, steps)):
        op = rng.choice(["and", "or", "not"])
        if op == "not":
            gates.append(c.negation(rng.choice(gates)))
        else:
            picked = rng.sample(gates, rng.randint(2, min(4, len(gates))))
            gates.append(c.and_gate(picked) if op == "and" else c.or_gate(picked))
    c.set_output(gates[-1])
    return c


def all_worlds(n_vars: int) -> list[list[int]]:
    return [[(mask >> i) & 1 for i in range(n_vars)] for mask in range(1 << n_vars)]


@pytest.fixture
def no_numpy(monkeypatch):
    monkeypatch.setattr(compiled_module, "_np", None)


# --------------------------------------------------------------------------- #
# wire format

@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_wire_round_trip_preserves_batch_results(seed):
    """Property: serialize → deserialize → identical evaluation results."""
    compiled = compile_circuit(random_circuit(seed))
    plan = distributed.plan_from_bytes(compiled.wire_bytes())
    assert plan.size == compiled.size
    assert plan.output == compiled.output
    assert plan.kinds == list(compiled.kinds)
    assert plan.offsets == list(compiled.offsets)
    assert plan.indices == list(compiled.indices)
    assert plan.var_slot == list(compiled.var_slot)
    worlds = all_worlds(len(compiled.variables()))
    assert plan.run_rows(worlds, as_float=False) == compiled.evaluate_batch(worlds)
    n = len(compiled.variables())
    probs = [0.05 + 0.9 * i / max(1, n) for i in range(n)]
    got = plan.run_rows([probs], as_float=True)[0]
    assert math.isclose(got, compiled.probability(probs), abs_tol=1e-12)


class TestWireFormat:
    def test_wire_bytes_cached_on_compiled_circuit(self):
        compiled = compile_circuit(random_circuit(5))
        assert compiled.wire_bytes() is compiled.wire_bytes()
        assert distributed.plan_to_bytes(compiled) is compiled.wire_bytes()

    def test_round_trip_without_numpy(self, no_numpy):
        compiled = compile_circuit(random_circuit(9))
        blob = distributed.plan_to_bytes(compiled)
        plan = distributed.plan_from_bytes(blob)
        assert plan.kinds == list(compiled.kinds)
        worlds = all_worlds(len(compiled.variables()))
        assert plan.run_rows(worlds, as_float=False) == [
            bool(v) for v in compiled.evaluate_batch(worlds)
        ]

    def test_cross_backend_payloads_are_identical(self, monkeypatch):
        """numpy and pure-python packing produce byte-identical plans."""
        pytest.importorskip("numpy")
        with_numpy = distributed.plan_to_bytes(compile_circuit(random_circuit(13)))
        monkeypatch.setattr(compiled_module, "_np", None)
        without_numpy = distributed.plan_to_bytes(
            compile_circuit(random_circuit(13))
        )
        assert with_numpy == without_numpy

    def test_truncated_payload_rejected(self):
        blob = compile_circuit(random_circuit(3)).wire_bytes()
        for cut in (0, 3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ReproError, match="truncated"):
                distributed.plan_from_bytes(blob[:cut])

    def test_wrong_magic_rejected(self):
        blob = compile_circuit(random_circuit(3)).wire_bytes()
        with pytest.raises(ReproError, match="magic"):
            distributed.plan_from_bytes(b"XXXX" + blob[4:])

    def test_wrong_version_rejected(self):
        blob = compile_circuit(random_circuit(3)).wire_bytes()
        tampered = blob[:4] + bytes([99, 0]) + blob[6:]
        with pytest.raises(ReproError, match="unsupported wire version 99"):
            distributed.plan_from_bytes(tampered)

    def test_corrupted_payload_rejected_by_checksum(self):
        blob = compile_circuit(random_circuit(3)).wire_bytes()
        # Flip one byte in the binary payload (well past the JSON header).
        position = len(blob) - 5
        tampered = blob[:position] + bytes([blob[position] ^ 0xFF]) + blob[position + 1:]
        with pytest.raises(ReproError, match="checksum"):
            distributed.plan_from_bytes(tampered)

    def test_corrupted_metadata_rejected_by_checksum(self):
        blob = compile_circuit(random_circuit(3)).wire_bytes()
        position = distributed._HEADER.size + 2  # inside the JSON header
        tampered = blob[:position] + bytes([blob[position] ^ 0x01]) + blob[position + 1:]
        with pytest.raises(ReproError, match="checksum"):
            distributed.plan_from_bytes(tampered)

    def test_inconsistent_level_schedule_rejected(self):
        """A checksum-valid payload whose schedule lies is still rejected."""
        compiled = compile_circuit(random_circuit(3))
        levels = compiled_module.gate_levels(
            compiled.kinds, compiled.offsets, compiled.indices
        )
        assert max(levels) > 0  # the tamper below must change something
        levels[-1] += 1
        forged = distributed._pack_blob(
            {
                "kind": "plan",
                "size": compiled.size,
                "output": compiled.output,
                "n_vars": len(compiled.variables()),
            },
            [
                ("kinds", "i", compiled.kinds),
                ("offsets", "i", compiled.offsets),
                ("indices", "i", compiled.indices),
                ("var_slot", "i", compiled.var_slot),
                ("levels", "i", levels),
            ],
        )
        with pytest.raises(ReproError, match="level schedule"):
            distributed.plan_from_bytes(forged)

    def test_non_plan_payload_rejected(self):
        tables = distributed._tables_to_bytes([[1, 0]], 2, [0.5, 0.5], [0.5], 0.5)
        with pytest.raises(ReproError, match="not a circuit plan"):
            distributed.plan_from_bytes(tables)

    def test_checksum_identifies_payloads(self):
        a = compile_circuit(random_circuit(3)).wire_bytes()
        b = compile_circuit(random_circuit(4)).wire_bytes()
        assert distributed.plan_checksum(a) == distributed.plan_checksum(a)
        assert distributed.plan_checksum(a) != distributed.plan_checksum(b)


# --------------------------------------------------------------------------- #
# routing knob

class TestHostsKnob:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTRIBUTED_HOSTS", "h1:7001, h2:7002")
        assert distributed._hosts_from_env() == ("h1:7001", "h2:7002")
        monkeypatch.setenv("REPRO_DISTRIBUTED_HOSTS", "")
        assert distributed._hosts_from_env() == ()
        monkeypatch.setenv("REPRO_DISTRIBUTED_HOSTS", "not-a-hostport")
        assert distributed._hosts_from_env() == ()

    def test_set_and_scope(self):
        with distributed.distributed_hosts_set("a:1,b:2"):
            assert distributed.distributed_hosts() == ("a:1", "b:2")
            with distributed.distributed_hosts_set(None):
                assert distributed.distributed_hosts() == ()
            assert distributed.distributed_hosts() == ("a:1", "b:2")

    def test_rejects_malformed_hosts(self):
        with pytest.raises(ReproError, match="host:port"):
            distributed.set_distributed_hosts(["nohost"])
        with pytest.raises(ReproError, match="port"):
            distributed.set_distributed_hosts(["h:notaport"])
        with pytest.raises(ReproError, match="port"):
            distributed.set_distributed_hosts(["h:99999"])

    def test_effective_hosts_override_semantics(self):
        # Under an env-armed registry (the CI distributed job) ambient
        # REGISTERed workers legitimately extend the default host list,
        # so assert the knob's contribution, not an exact tuple.
        elastic = distributed.registered_hosts()
        with distributed.distributed_hosts_set("a:1"):
            assert distributed.effective_hosts(None) == tuple(
                dict.fromkeys(("a:1",) + elastic)
            )
            assert distributed.effective_hosts(()) == ()  # explicit opt-out
            # An explicit per-call list is verbatim — never extended.
            assert distributed.effective_hosts("b:2") == ("b:2",)

    def test_should_distribute_thresholds(self, monkeypatch):
        # Neutralize ambient elastic members (the CI distributed job keeps
        # a REGISTERed worker around): this test is about the row
        # threshold and the truly-unconfigured default.
        monkeypatch.setattr(distributed, "registered_hosts", lambda: ())
        with distributed.distributed_hosts_set("a:1"):
            assert distributed.should_distribute(parallel.PARALLEL_MIN_ROWS)
            assert not distributed.should_distribute(parallel.PARALLEL_MIN_ROWS - 1)
        with distributed.distributed_hosts_set(None):
            assert not distributed.should_distribute(10**6)

    def test_no_hosts_defers_to_parallel_entry_points(self):
        pytest.importorskip("numpy")
        compiled = compile_circuit(random_circuit(21))
        marginals = [0.3] * len(compiled.variables())
        with distributed.distributed_hosts_set(None):
            assert distributed.monte_carlo_hits(
                compiled, marginals, 500, seed=1
            ) == parallel.monte_carlo_hits(compiled, marginals, 500, seed=1, workers=0)


# --------------------------------------------------------------------------- #
# coordinator + real localhost workers

@pytest.mark.distributed
class TestDistributedExecution:
    @pytest.fixture(autouse=True)
    def _need_numpy(self):
        pytest.importorskip("numpy")

    def test_monte_carlo_bit_identical_at_0_1_2_workers(
        self, worker_factory, monkeypatch
    ):
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(31))
        marginals = [0.2 + 0.1 * (i % 5) for i in range(len(compiled.variables()))]
        serial = parallel.monte_carlo_hits(compiled, marginals, 700, seed=9, workers=0)
        one = worker_factory()
        hits_1 = distributed.monte_carlo_hits(
            compiled, marginals, 700, seed=9, hosts=(one.address,)
        )
        two = worker_factory()
        hits_2 = distributed.monte_carlo_hits(
            compiled, marginals, 700, seed=9, hosts=(one.address, two.address)
        )
        assert serial == hits_1 == hits_2
        # and again through a second serialize/deserialize of the plan
        compiled._wire_cache = None
        assert distributed.monte_carlo_hits(
            compiled, marginals, 700, seed=9, hosts=(one.address, two.address)
        ) == serial

    def test_karp_luby_bit_identical_across_hosts(self, worker_factory, monkeypatch):
        np = pytest.importorskip("numpy")
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        membership = np.array(
            [[1, 0, 1, 0], [0, 1, 1, 0], [1, 1, 0, 1]], dtype=np.int32
        )
        probs = np.array([0.3, 0.5, 0.2, 0.4])
        weights = [0.06, 0.1, 0.06]
        serial = parallel.karp_luby_hits(
            membership, probs, weights, 400, seed=4, workers=0
        )
        worker = worker_factory()
        assert distributed.karp_luby_hits(
            membership, probs, weights, 400, seed=4, hosts=(worker.address,)
        ) == serial

    def test_matrix_passes_bit_identical(self, module_worker):
        np = pytest.importorskip("numpy")
        compiled = compile_circuit(random_circuit(33))
        n = len(compiled.variables())
        worlds = np.random.default_rng(0).random((500, n)) < 0.5
        serial = compiled.evaluate_batch(worlds)
        dist = distributed.evaluate_batch_distributed(
            compiled, worlds, hosts=(module_worker.address,)
        )
        assert dist.dtype == np.bool_
        assert dist.tolist() == serial
        marginal_rows = np.random.default_rng(1).random((400, n))
        assert distributed.probability_batch_distributed(
            compiled, marginal_rows, hosts=(module_worker.address,)
        ).tolist() == compiled.probability_batch(marginal_rows)

    def test_empty_batch(self, module_worker):
        np = pytest.importorskip("numpy")
        compiled = compile_circuit(random_circuit(34))
        matrix = np.empty((0, len(compiled.variables())), dtype=bool)
        out = distributed.evaluate_batch_distributed(
            compiled, matrix, hosts=(module_worker.address,)
        )
        assert out.size == 0

    def test_evaluate_batch_routes_through_hosts_knob(self, module_worker):
        np = pytest.importorskip("numpy")
        compiled = compile_circuit(random_circuit(35))
        n = len(compiled.variables())
        matrix = np.random.default_rng(2).random(
            (parallel.PARALLEL_MIN_ROWS + 17, n)
        ) < 0.5
        with distributed.distributed_hosts_set(()):
            serial = compiled.evaluate_batch(matrix)
        with distributed.distributed_hosts_set((module_worker.address,)):
            assert compiled.evaluate_batch(matrix) == serial

    def test_sampling_baselines_take_hosts(self, module_worker, monkeypatch):
        from repro.baselines import karp_luby_probability, monte_carlo_probability
        from repro.instances import TIDInstance, fact
        from repro.queries import atom, cq, variables

        monkeypatch.setattr(parallel, "MC_SHARD", 128)
        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        tid = TIDInstance(
            {fact("R", 1): 0.6, fact("S", 1, 2): 0.5, fact("T", 2): 0.8,
             fact("R", 3): 0.2, fact("S", 3, 2): 0.7}
        )
        serial = monte_carlo_probability(
            query, tid, samples=600, seed=1, workers=0, hosts=()
        )
        assert monte_carlo_probability(
            query, tid, samples=600, seed=1, hosts=(module_worker.address,)
        ) == serial
        with distributed.distributed_hosts_set((module_worker.address,)):
            assert monte_carlo_probability(query, tid, samples=600, seed=1) == serial
        kl_serial = karp_luby_probability(
            query, tid, samples=600, seed=1, workers=0, hosts=()
        )
        assert karp_luby_probability(
            query, tid, samples=600, seed=1, hosts=(module_worker.address,)
        ) == kl_serial

    def test_worker_killed_mid_run_is_retried_without_loss(
        self, worker_factory, monkeypatch
    ):
        """Fault injection: a worker dies mid-run; shards are retried.

        The dying worker crashes (``os._exit``) the moment it is asked to
        run its first task; the coordinator must requeue that shard onto
        the healthy worker. ``_run_distributed`` returns exactly one result
        per shard, each equal to its locally computed value — no shard is
        lost, none is counted twice — and the merged estimate is
        bit-identical to the serial one.
        """
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(36))
        marginals = [0.4] * len(compiled.variables())
        samples = 700  # 11 shards at MC_SHARD=64
        shards = parallel._sample_shards(samples)
        assert len(shards) > 2
        serial = parallel.monte_carlo_hits(
            compiled, marginals, samples, seed=2, workers=0
        )
        dying = worker_factory(max_tasks=0)
        healthy = worker_factory()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            hits = distributed.monte_carlo_hits(
                compiled, marginals, samples, seed=2,
                hosts=(dying.address, healthy.address),
            )
        assert hits == serial
        assert dying.wait_dead() == 17  # really crashed, mid-run
        assert healthy.alive()

    def test_no_duplicate_or_lost_shards_under_fault(
        self, worker_factory, monkeypatch
    ):
        """Every shard is answered exactly once even when a worker dies."""
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(37))
        marginals = [0.5] * len(compiled.variables())
        shards = parallel._sample_shards(640)  # 10 shards
        plan_bytes = compiled.wire_bytes()
        checksum = distributed.plan_checksum(plan_bytes)
        probs_blob = distributed._values_to_bytes("f", marginals)
        decoded = distributed.plan_from_bytes(plan_bytes)
        tasks = [
            (slot, {"id": slot, "op": "mc", "plan": checksum,
                    "seed": 2, "index": index, "count": count}, probs_blob)
            for slot, (index, count) in enumerate(shards)
        ]
        local_calls = []

        def run_local(meta):
            local_calls.append(meta["index"])
            probs = distributed._values_from_bytes("f", probs_blob)
            return {"hits": decoded.mc_shard_hits(
                probs, meta["seed"], meta["index"], meta["count"]
            )}, b""

        dying = worker_factory(max_tasks=3)
        healthy = worker_factory()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results = distributed._run_distributed(
                (dying.address, healthy.address),
                [(distributed.MSG_PLAN, {"checksum": checksum}, plan_bytes)],
                tasks,
                run_local,
            )
        assert len(results) == len(shards)  # exactly one result per shard
        expected = [
            run_local({"seed": 2, "index": index, "count": count})[0]["hits"]
            for index, count in shards
        ]
        assert [int(meta["hits"]) for meta, _blob in results] == expected

    def test_all_workers_unreachable_falls_back_locally(self, unused_tcp_port):
        compiled = compile_circuit(random_circuit(38))
        marginals = [0.35] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 500, seed=3, workers=0
        )
        dead = f"127.0.0.1:{unused_tcp_port}"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            hits = distributed.monte_carlo_hits(
                compiled, marginals, 500, seed=3, hosts=(dead,)
            )
            # second call: the unreachable-host warning fired once only
            distributed.monte_carlo_hits(
                compiled, marginals, 500, seed=3, hosts=(dead,)
            )
        assert hits == serial
        unreachable = [w for w in caught if "unreachable" in str(w.message)]
        assert len(unreachable) == 1

    def test_usable_from_inside_a_running_event_loop(self, module_worker):
        """An async caller (web handler, notebook) can still distribute.

        ``asyncio.run`` refuses to nest, so the coordinator must detect a
        running loop and coordinate on a private loop in a helper thread —
        with the same bit-identical result.
        """
        import asyncio

        compiled = compile_circuit(random_circuit(40))
        marginals = [0.45] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 300, seed=8, workers=0
        )

        async def coordinate_from_coroutine():
            return distributed.monte_carlo_hits(
                compiled, marginals, 300, seed=8, hosts=(module_worker.address,)
            )

        assert asyncio.run(coordinate_from_coroutine()) == serial

    def test_worker_survives_garbage_then_serves(self, worker_factory):
        """A malformed frame drops the connection but not the worker."""
        import socket as socket_module

        worker = worker_factory()
        with socket_module.create_connection(
            ("127.0.0.1", worker.port), timeout=5
        ) as sock:
            sock.sendall(b"\xff\xff\xff\xff garbage that is not a frame")
        compiled = compile_circuit(random_circuit(39))
        marginals = [0.5] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 300, seed=7, workers=0
        )
        assert distributed.monte_carlo_hits(
            compiled, marginals, 300, seed=7, hosts=(worker.address,)
        ) == serial
        assert worker.alive()


# --------------------------------------------------------------------------- #
# the persistent runtime: auth, digest handshake, reconnect, stealing

class TestAuthKnob:
    """Socket-free coverage of the shared-secret knob and the HMAC."""

    def test_secret_set_and_scope(self):
        with distributed.distributed_secret_set("hunter2"):
            assert distributed.distributed_secret() == "hunter2"
            with distributed.distributed_secret_set(None):
                assert distributed.distributed_secret() is None
            assert distributed.distributed_secret() == "hunter2"

    def test_empty_secret_clears(self):
        with distributed.distributed_secret_set(""):
            assert distributed.distributed_secret() is None

    def test_auth_response_is_keyed_hmac(self):
        import hashlib
        import hmac

        challenge = "00ff" * 16
        expected = hmac.new(
            b"s3cret", bytes.fromhex(challenge), hashlib.sha256
        ).hexdigest()
        assert distributed.auth_response("s3cret", challenge) == expected
        # a different secret or challenge yields a different MAC
        assert distributed.auth_response("other", challenge) != expected
        assert distributed.auth_response("s3cret", "ab" * 16) != expected


class TestStealQueue:
    def test_steal_queue_caps_each_slot_at_one_run_per_connection(self):
        """Stealing re-runs in-flight slots but can never loop forever."""
        stats = {"steals": 0}
        queue = distributed._StealQueue(2, stats)
        ran_a, ran_b = set(), set()
        assert queue.take(ran_a, now=0.0) == (0, None)
        ran_a.add(0)
        assert queue.take(ran_b, now=0.0) == (1, None)
        ran_b.add(1)
        # Pending is dry: each connection may steal the other's slot once.
        assert queue.take(ran_a, now=1.0) == (1, None)
        ran_a.add(1)
        assert queue.take(ran_b, now=1.0) == (0, None)
        ran_b.add(0)
        assert queue.take(ran_a, now=2.0) == (None, None)
        assert queue.take(ran_b, now=2.0) == (None, None)
        assert stats["steals"] == 2
        # A released slot becomes takeable again, even by a connection that
        # already ran it (it was never answered).
        queue.release(0)
        ran_a.discard(0)
        assert queue.take(ran_a, now=2.0) == (0, None)

    def test_steal_queue_grace_defers_young_inflight_shards(self):
        """A shard younger than min_age is not stolen — the caller is told
        how long to wait; once aged (or released) it becomes stealable,
        oldest first."""
        stats = {"steals": 0}
        queue = distributed._StealQueue(2, stats)
        assert queue.take(set(), now=0.0) == (0, None)
        assert queue.take(set(), now=1.0) == (1, None)
        thief: set[int] = set()
        # Both in flight, both too young for a 5s grace at t=2.
        slot, retry_in = queue.take(thief, now=2.0, min_age=5.0)
        assert slot is None
        assert retry_in == 3.0  # slot 0 (dispatched at t=0) ages out first
        assert stats["steals"] == 0
        # At t=5 slot 0 is 5s old: stealable; slot 1 (4s old) still is not.
        assert queue.take(thief, now=5.0, min_age=5.0) == (0, None)
        assert stats["steals"] == 1


@pytest.mark.distributed
class TestPersistentRuntime:
    @pytest.fixture(autouse=True)
    def _need_numpy(self):
        pytest.importorskip("numpy")

    def _mc(self, compiled, marginals, hosts, samples=700, seed=9):
        return distributed.monte_carlo_hits(
            compiled, marginals, samples, seed=seed, hosts=hosts
        )

    @pytest.fixture
    def no_plan_cache(self, monkeypatch):
        """Tests that count plan publishes must pin the on-disk plan cache
        off: with an ambient ``REPRO_PLAN_CACHE_DIR`` (the CI plan-cache
        job sets one suite-wide) localhost workers answer ``PLAN_OFFER``
        from the shared directory and the counters stay at zero. Cleared
        from the environment too, so spawned workers do not inherit it."""
        monkeypatch.delenv("REPRO_PLAN_CACHE_DIR", raising=False)
        plancache.set_plan_cache_dir(None)

    def test_connection_and_plan_reused_across_calls(
        self, worker_factory, no_plan_cache
    ):
        """Digest cache hit: call 2..N pay neither connect nor plan bytes."""
        worker = worker_factory()
        compiled = compile_circuit(random_circuit(50))
        marginals = [0.3] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        before = distributed.pool_stats()
        results = [self._mc(compiled, marginals, (worker.address,))
                   for _ in range(3)]
        after = distributed.pool_stats()
        assert results == [serial] * 3
        assert after["connects"] - before["connects"] == 1
        assert after["plans_published"] - before["plans_published"] == 1
        assert after["publishes_skipped"] - before["publishes_skipped"] >= 2

    def test_digest_cache_miss_publishes_each_new_circuit(
        self, worker_factory, no_plan_cache
    ):
        """Different circuits have different digests: each ships once."""
        worker = worker_factory()
        first = compile_circuit(random_circuit(51))
        second = compile_circuit(random_circuit(52))
        assert first.plan_digest() != second.plan_digest()
        before = distributed.pool_stats()
        for compiled in (first, second, first, second):
            marginals = [0.4] * len(compiled.variables())
            assert self._mc(
                compiled, marginals, (worker.address,)
            ) == parallel.monte_carlo_hits(
                compiled, marginals, 700, seed=9, workers=0
            )
        after = distributed.pool_stats()
        assert after["plans_published"] - before["plans_published"] == 2

    def test_worker_side_cache_answers_plan_have_after_reconnect(
        self, worker_factory
    ):
        """PLAN_HAVE: a reconnect to a live worker re-sends no plan bytes."""
        worker = worker_factory()
        compiled = compile_circuit(random_circuit(53))
        marginals = [0.5] * len(compiled.variables())
        first = self._mc(compiled, marginals, (worker.address,))
        distributed.reset_pool()  # drop the TCP connection, not the worker
        before = distributed.pool_stats()
        second = self._mc(compiled, marginals, (worker.address,))
        after = distributed.pool_stats()
        assert first == second
        assert after["connects"] - before["connects"] == 1
        assert after["reconnects"] - before["reconnects"] == 1
        assert after["plan_cache_hits"] - before["plan_cache_hits"] == 1
        assert after["plans_published"] - before["plans_published"] == 0

    def test_wrong_secret_rejected_and_falls_back_locally(self, worker_factory):
        """HMAC rejection: the worker refuses, the call completes locally."""
        worker = worker_factory(secret="right-secret")
        compiled = compile_circuit(random_circuit(54))
        marginals = [0.35] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        before = distributed.pool_stats()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with distributed.distributed_secret_set("wrong-secret"):
                hits = self._mc(compiled, marginals, (worker.address,))
        after = distributed.pool_stats()
        assert hits == serial
        assert after["connects"] == before["connects"]  # handshake refused
        assert any(
            "authentication" in str(w.message) for w in caught
        ), [str(w.message) for w in caught]
        assert worker.alive()  # refusing a bad coordinator is non-fatal

    def test_missing_secret_rejected_too(self, worker_factory):
        worker = worker_factory(secret="right-secret")
        compiled = compile_circuit(random_circuit(55))
        marginals = [0.45] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with distributed.distributed_secret_set(None):
                assert self._mc(
                    compiled, marginals, (worker.address,)
                ) == serial
        assert any("secret" in str(w.message) for w in caught)

    def test_correct_secret_is_served(self, worker_factory):
        worker = worker_factory(secret="right-secret")
        compiled = compile_circuit(random_circuit(56))
        marginals = [0.55] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        before = distributed.pool_stats()
        with distributed.distributed_secret_set("right-secret"):
            assert self._mc(compiled, marginals, (worker.address,)) == serial
        after = distributed.pool_stats()
        assert after["tasks_completed"] > before["tasks_completed"]

    def test_bounced_worker_rejoins_the_pool(
        self, worker_factory, unused_tcp_port, no_plan_cache
    ):
        """Kill + relaunch on the same port: heartbeat detects the bounce,
        the pool reconnects, and the digest handshake re-publishes the plan
        the fresh process is missing — with bit-identical results before
        and after."""
        compiled = compile_circuit(random_circuit(57))
        marginals = [0.25] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        first_worker = worker_factory(port=unused_tcp_port)
        assert self._mc(
            compiled, marginals, (first_worker.address,)
        ) == serial
        first_worker.stop()  # bounce: same port, brand-new process
        second_worker = worker_factory(port=unused_tcp_port)
        assert second_worker.address == first_worker.address
        before = distributed.pool_stats()
        assert self._mc(
            compiled, marginals, (second_worker.address,)
        ) == serial
        after = distributed.pool_stats()
        assert after["heartbeat_failures"] - before["heartbeat_failures"] == 1
        assert after["reconnects"] - before["reconnects"] == 1
        # the relaunched process had no plan cache: the plan shipped again
        assert after["plans_published"] - before["plans_published"] == 1

    def test_double_bounce_counts_one_heartbeat_failure_each(
        self, worker_factory, unused_tcp_port, no_plan_cache
    ):
        """Regression: every bounce costs exactly one ``heartbeat_failures``
        and leaves exactly one live connection in the pool. The failed-PING
        path used to sit outside the accounting try, so a worker whose
        death surfaced as a garbled partial frame (``ReproError``, not a
        socket error) skipped the counter and leaked the dead ``_Conn``;
        the second bounce then double-counted against the stale entry."""
        compiled = compile_circuit(random_circuit(60))
        marginals = [0.3] * len(compiled.variables())
        serial = parallel.monte_carlo_hits(
            compiled, marginals, 700, seed=9, workers=0
        )
        worker = worker_factory(port=unused_tcp_port)
        assert self._mc(compiled, marginals, (worker.address,)) == serial
        for bounce in (1, 2):
            worker.stop()
            worker = worker_factory(port=unused_tcp_port)
            before = distributed.pool_stats()
            assert self._mc(compiled, marginals, (worker.address,)) == serial
            after = distributed.pool_stats()
            assert after["heartbeat_failures"] - before["heartbeat_failures"] == 1
            assert after["reconnects"] - before["reconnects"] == 1
            # the pooled connection is the fresh process, not a leaked one
            conn = distributed._HOST_POOL._conns[worker.address]
            assert conn.pid == worker.process.pid

    def test_interpreter_exit_after_distributed_use_is_quiet(self, tmp_path):
        """The atexit ``close_pool`` must stay silent and exception-free
        even when the daemon loop thread is already gone — a process that
        used the distributed runtime exits with code 0 and zero stderr."""
        import subprocess
        import sys
        from pathlib import Path

        import repro

        package_root = str(Path(repro.__file__).resolve().parents[1])
        script = tmp_path / "exit_clean.py"
        script.write_text(
            "from repro.circuits import distributed\n"
            "# spin the pool loop thread + registry up for real\n"
            "distributed.start_registry()\n"
            "distributed._HOST_POOL.admit('127.0.0.1:19997')\n"
            "assert distributed.registered_hosts() == ('127.0.0.1:19997',)\n"
            "# explicit close is idempotent ...\n"
            "distributed.close_pool()\n"
            "distributed.close_pool()\n"
            "# ... and the atexit close finds the loop thread already dead\n"
            "distributed._HOST_POOL.admit('127.0.0.1:19996')\n"
            "loop = distributed._HOST_POOL._loop\n"
            "loop.call_soon_threadsafe(loop.stop)\n"
            "distributed._HOST_POOL._thread.join(10)\n"
            "print('still-here')\n"
        )
        result = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True,
            timeout=60, env={**__import__('os').environ,
                             "PYTHONPATH": package_root},
        )
        assert result.returncode == 0, result.stderr
        assert "still-here" in result.stdout
        assert result.stderr == ""

    def test_slow_worker_does_not_gate_the_merge(
        self, worker_factory, monkeypatch
    ):
        """Work stealing: a deliberately slow host is out-pulled by the
        fast one (and its in-flight tail stolen), while the merged estimate
        stays bit-identical to the 0-host oracle."""
        monkeypatch.setattr(parallel, "MC_SHARD", 64)
        compiled = compile_circuit(random_circuit(58))
        marginals = [0.4] * len(compiled.variables())
        samples = 64 * 10
        serial = parallel.monte_carlo_hits(
            compiled, marginals, samples, seed=6, workers=0
        )
        slow = worker_factory(delay=0.3)
        fast = worker_factory()
        before = distributed.pool_stats()
        hits = distributed.monte_carlo_hits(
            compiled, marginals, samples, seed=6,
            hosts=(slow.address, fast.address),
        )
        after = distributed.pool_stats()
        assert hits == serial
        slow_tasks = (
            after["per_host_tasks"].get(slow.address, 0)
            - before["per_host_tasks"].get(slow.address, 0)
        )
        fast_tasks = (
            after["per_host_tasks"].get(fast.address, 0)
            - before["per_host_tasks"].get(fast.address, 0)
        )
        assert fast_tasks > slow_tasks
        assert slow_tasks + fast_tasks == 10  # every shard answered once

    def test_matrix_pass_shards_finely_for_stealing(self, module_worker):
        """Matrix passes cut more shards than hosts so stealing has slack,
        without changing the merged rows."""
        np = pytest.importorskip("numpy")
        compiled = compile_circuit(random_circuit(59))
        n = len(compiled.variables())
        worlds = np.random.default_rng(3).random((600, n)) < 0.5
        serial = compiled.evaluate_batch(worlds)
        before = distributed.pool_stats()
        dist = distributed.evaluate_batch_distributed(
            compiled, worlds, hosts=(module_worker.address,)
        )
        after = distributed.pool_stats()
        assert dist.tolist() == serial
        assert (
            after["tasks_completed"] - before["tasks_completed"]
            == distributed.STEAL_SHARDS_PER_HOST
        )
