"""The unified knob registry: configure / overrides / the legacy shims."""

import pytest

from repro import config
from repro.circuits import (
    default_engine,
    default_engine_set,
    distributed_hosts,
    distributed_hosts_set,
    engine_forced,
    forced_engine,
    parallel_workers,
    parallel_workers_set,
    pipeline_depth,
    plan_cache_dir,
    plan_cache_dir_set,
)
from repro.instances import instance_backend, instance_backend_set
from repro.util import ReproError

EXPECTED_KNOBS = (
    "auth_provider",
    "distributed_hosts",
    "distributed_secret",
    "distributed_tls",
    "engine",
    "forced_engine",
    "instance_backend",
    "parallel_workers",
    "pipeline_depth",
    "plan_cache_dir",
    "plan_cache_limit_bytes",
    "plan_cache_min_gates",
)


class TestRegistry:
    def test_knob_names(self):
        assert config.knobs() == EXPECTED_KNOBS

    def test_get_matches_owning_module(self):
        assert config.get("engine") == default_engine()
        assert config.get("forced_engine") == forced_engine()
        assert config.get("parallel_workers") == parallel_workers()
        assert config.get("distributed_hosts") == distributed_hosts()
        assert config.get("pipeline_depth") == pipeline_depth()
        assert config.get("plan_cache_dir") == plan_cache_dir()

    def test_unknown_knob_rejected(self):
        with pytest.raises(ReproError, match="unknown knob 'turbo'"):
            config.get("turbo")
        with pytest.raises(ReproError, match="unknown knob"):
            config.configure(turbo=11)
        with pytest.raises(ReproError, match="unknown knob"):
            with config.overrides(turbo=11):
                pass

    def test_describe_lists_every_knob(self):
        described = config.describe()
        assert tuple(described) == EXPECTED_KNOBS
        for name, entry in described.items():
            assert set(entry) == {"value", "doc", "env"}
            assert entry["doc"]
        assert described["parallel_workers"]["env"] == "REPRO_PARALLEL_WORKERS"
        assert described["engine"]["env"] is None


class TestConfigure:
    def test_round_trip(self):
        previous = config.get("engine")
        config.configure(engine="shannon")
        assert default_engine() == "shannon"
        config.configure(engine=previous)
        assert default_engine() == previous

    def test_multiple_knobs_one_call(self):
        config.configure(engine="dd", parallel_workers=3)
        assert default_engine() == "dd" and parallel_workers() == 3

    def test_setter_failure_rolls_back(self):
        engine_before = config.get("engine")
        workers_before = config.get("parallel_workers")
        with pytest.raises(ReproError):
            # Sorted application order sets 'engine' first; the invalid
            # worker count must roll it back.
            config.configure(engine="shannon", parallel_workers=-2)
        assert config.get("engine") == engine_before
        assert config.get("parallel_workers") == workers_before

    def test_invalid_engine_rejected_upfront(self):
        with pytest.raises(ReproError):
            config.configure(engine="warp-drive")


class TestOverrides:
    def test_scoped_and_restored(self):
        engine_before = default_engine()
        workers_before = parallel_workers()
        with config.overrides(engine="shannon", parallel_workers=2):
            assert default_engine() == "shannon" and parallel_workers() == 2
        assert default_engine() == engine_before
        assert parallel_workers() == workers_before

    def test_nesting(self):
        with config.overrides(engine="dd"):
            with config.overrides(engine="shannon"):
                assert default_engine() == "shannon"
            assert default_engine() == "dd"

    def test_restores_on_exception(self):
        before = default_engine()
        with pytest.raises(ValueError):
            with config.overrides(engine="shannon"):
                raise ValueError("boom")
        assert default_engine() == before

    def test_instance_backend_env_fallback_not_pinned(self, monkeypatch):
        # The override snapshot must capture "no override" (None), so the
        # env fallback stays live after restore rather than being frozen
        # to its value at entry.
        from repro.instances import columnar

        monkeypatch.setattr(columnar, "_BACKEND", None)
        monkeypatch.setenv("REPRO_INSTANCE_BACKEND", "object")
        with config.overrides(instance_backend="columnar"):
            assert instance_backend() == "columnar"
        assert columnar._BACKEND is None
        monkeypatch.setenv("REPRO_INSTANCE_BACKEND", "columnar")
        assert instance_backend() == "columnar"  # env still consulted

    def test_works_as_decorator(self):
        @config.overrides(engine="shannon")
        def inner():
            return default_engine()

        before = default_engine()
        assert inner() == "shannon"
        assert default_engine() == before


class TestLegacyShims:
    def test_default_engine_set(self):
        before = default_engine()
        with default_engine_set("shannon"):
            assert default_engine() == "shannon"
        assert default_engine() == before

    def test_engine_forced(self):
        assert forced_engine() is None
        with engine_forced("dd"):
            assert forced_engine() == "dd"
        assert forced_engine() is None

    def test_parallel_workers_set(self):
        before = parallel_workers()
        with parallel_workers_set(2):
            assert parallel_workers() == 2
        assert parallel_workers() == before

    def test_distributed_hosts_set(self):
        with distributed_hosts_set("127.0.0.1:7761"):
            assert distributed_hosts() == ("127.0.0.1:7761",)
        assert distributed_hosts() == ()

    def test_instance_backend_set(self):
        with instance_backend_set("columnar"):
            assert instance_backend() == "columnar"

    def test_plan_cache_dir_set(self, tmp_path):
        with plan_cache_dir_set(str(tmp_path)):
            assert str(plan_cache_dir()) == str(tmp_path)

    def test_facade_exports(self):
        import repro

        assert repro.configure is config.configure
        assert repro.overrides is config.overrides
