"""E17 — the compile path: vectorized lowering, delta recompile, plan cache.

E13 made lowering the bottleneck visible: a ~13k-gate lineage circuit costs
tens of milliseconds of per-gate python before the first world is ever
evaluated — dwarfing the warm per-batch cost it feeds. This experiment measures the three attacks on that cost, on the
same Theorem-1 lineage circuit:

- **vectorized lowering** — the array passes (reachability, topo order,
  variable interning, CSR packing, level schedule) against the per-gate
  python lowering they replace, both producing bit-identical arrays;
- **delta recompilation** — a :class:`repro.workloads.logs.StreamingLogMonitor`
  grows a standing alarm query to E13 size, then appends ~1% more facts;
  :func:`repro.circuits.recompile` patches the dirty cone instead of
  re-lowering the world, and is timed against the full (still vectorized)
  compile of the same edited arena;
- **plan cache hit** — the lowering is stored once under
  ``REPRO_PLAN_CACHE_DIR``, then an identical arena built by a second
  "process" (a fresh :class:`Circuit` object) loads it back with zero
  lowering passes.

Every fast path is asserted gate-for-gate identical to a from-scratch
compile before its time is reported. Writes ``BENCH_compile_path.json``;
``check_regression.py`` gates the speedups and the equality booleans. When
numpy is unavailable the vectorized rows honestly collapse to ~1x and only
the correctness booleans gate.

Run the table:  python benchmarks/bench_compile_path.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.circuits import Circuit, compile_circuit, plancache, recompile
from repro.circuits import compiled as compiled_module
from repro.circuits.compiled import CompiledCircuit, numpy_module
from repro.core import build_lineage
from repro.queries import atom, cq, variables
from repro.workloads import rst_chain_tid
from repro.workloads.logs import StreamingLogMonitor

CHAIN_LENGTH = 200  # the E13 circuit: ~13k reachable gates
MONITOR_TARGET_GATES = 13_000
MONITOR_BATCH = 48
DELTA_EDIT_FRACTION = 0.01
DELTA_SAMPLES = 5
CACHE_ARENAS = 3


def build_lineage_circuit() -> Circuit:
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = rst_chain_tid(CHAIN_LENGTH, seed=0)
    return build_lineage(tid.instance, query).circuit


def _best_of(run, repeats: int):
    """Best wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def _same_lowering(left: CompiledCircuit, right: CompiledCircuit) -> bool:
    return (
        left.kinds == right.kinds
        and left.offsets == right.offsets
        and left.indices == right.indices
        and left.var_slot == right.var_slot
        and left.var_names == right.var_names
        and left.output == right.output
        and left.gate_ids == right.gate_ids
        and left.levels_list() == right.levels_list()
    )


def python_lowering(circuit: Circuit) -> CompiledCircuit:
    """The seed-era cold compile: per-gate python passes, numpy masked off.

    Includes the per-gate level pass (``levels_list``) so both sides of
    the comparison produce the same artifact — a lowering plus its level
    schedule, ready for batch planning and the wire format.
    """
    saved = compiled_module._np
    compiled_module._np = None
    try:
        compiled = CompiledCircuit(circuit)
        compiled.levels_list()
        return compiled
    finally:
        compiled_module._np = saved


def grow_monitor() -> StreamingLogMonitor:
    monitor = StreamingLogMonitor(machines=8, seed=3)
    monitor.append(MONITOR_BATCH)
    monitor.requery()
    while len(monitor.circuit) < MONITOR_TARGET_GATES:
        monitor.append(MONITOR_BATCH)
        monitor.requery()
    return monitor


def measure_delta(monitor: StreamingLogMonitor):
    """Time ``recompile`` after ~1% appends against the two compiles it
    replaces: a full vectorized relower of the same edited arena, and the
    seed-era per-gate python passes (which is what every recompile cost
    before the delta path existed). Every sample is checked identical."""
    best_delta = float("inf")
    best_full = float("inf")
    edited_gates = 0
    identical = True
    for _ in range(DELTA_SAMPLES):
        target = int(len(monitor.circuit) * (1 + DELTA_EDIT_FRACTION))
        before = len(monitor.circuit)
        while len(monitor.circuit) < target:
            monitor.append(MONITOR_BATCH)
        edited_gates = len(monitor.circuit) - before
        old = monitor.compiled
        start = time.perf_counter()
        delta = recompile(old, monitor.circuit)
        best_delta = min(best_delta, time.perf_counter() - start)
        monitor._compiled = delta
        start = time.perf_counter()
        full = CompiledCircuit(monitor.circuit)
        best_full = min(best_full, time.perf_counter() - start)
        identical = identical and _same_lowering(delta, full)
    best_cold, cold = _best_of(
        lambda: python_lowering(monitor.circuit), repeats=2
    )
    identical = identical and _same_lowering(monitor.compiled, cold)
    return best_delta, best_full, best_cold, edited_gates, identical


def measure_cache(build):
    """Store one lowering on disk, then time loading it into fresh arenas."""
    with tempfile.TemporaryDirectory() as directory:
        with plancache.plan_cache_dir_set(directory):
            plancache.set_min_gates(0)
            stored = compile_circuit(build())  # cold: lowers and stores
            reference = CompiledCircuit(stored.source)
            best = float("inf")
            identical = True
            for _ in range(CACHE_ARENAS):
                arena = build()  # a fresh identical "process"
                lowerings = compiled_module.compile_stats()["lowerings"]
                start = time.perf_counter()
                loaded = compile_circuit(arena)
                best = min(best, time.perf_counter() - start)
                assert compiled_module.compile_stats()["lowerings"] == lowerings, (
                    "cache hit must not run a lowering pass"
                )
                identical = identical and _same_lowering(loaded, reference)
    return best, identical


def main() -> None:
    np = numpy_module()
    print("E17 — compile path: vectorized lowering, delta recompile, plan cache")
    circuit = build_lineage_circuit()
    gates = len(circuit.reachable_from_output())
    print(f"lineage circuit: {gates} reachable gates,"
          f" {len(circuit.variables())} variables")
    backend = (
        f"numpy {np.__version__} array lowering passes"
        if np is not None
        else "per-gate python lowering (numpy not installed)"
    )
    print(f"lowering backend: {backend}")

    cold_seconds, cold = _best_of(lambda: python_lowering(circuit), repeats=3)
    vector_seconds, vectorized = _best_of(
        lambda: CompiledCircuit(circuit), repeats=5
    )
    lowerings_identical = _same_lowering(vectorized, cold)
    vectorized_speedup = cold_seconds / vector_seconds

    monitor = grow_monitor()
    monitor_gates = len(monitor.circuit)
    delta_seconds, full_seconds, monitor_cold_seconds, edited_gates, \
        delta_identical = measure_delta(monitor)
    delta_speedup = full_seconds / delta_seconds
    delta_vs_cold = monitor_cold_seconds / delta_seconds

    cache_hit_seconds, cache_identical = measure_cache(build_lineage_circuit)
    cache_hit_speedup = cold_seconds / cache_hit_seconds

    print(f"\n{'path':<42} {'time':>11} {'speedup':>9}")
    rows = [
        ("cold compile, per-gate python", cold_seconds, 1.0),
        ("cold compile, vectorized passes", vector_seconds, vectorized_speedup),
        (f"delta recompile after {edited_gates}-gate edit",
         delta_seconds, delta_vs_cold),
        ("plan-cache hit (fresh identical arena)",
         cache_hit_seconds, cache_hit_speedup),
    ]
    for label, seconds, speedup in rows:
        print(f"{label:<42} {seconds * 1e3:>8.3f} ms {speedup:>8.1f}x")
    print(f"(delta baselines, same {monitor_gates}-gate monitor arena: "
          f"{monitor_cold_seconds * 1e3:.3f} ms per-gate python, "
          f"{full_seconds * 1e3:.3f} ms vectorized full compile = "
          f"{delta_speedup:.1f}x)")

    result = {
        "gates": gates,
        "variables": len(circuit.variables()),
        "numpy": np is not None,
        "cold_lower_seconds": cold_seconds,
        "vector_lower_seconds": vector_seconds,
        "vectorized_speedup": vectorized_speedup,
        "vectorized_equals_python": lowerings_identical,
        "monitor_gates": monitor_gates,
        "delta_edit_gates": edited_gates,
        "delta_recompile_seconds": delta_seconds,
        "full_relower_seconds": full_seconds,
        "monitor_cold_lower_seconds": monitor_cold_seconds,
        "delta_recompile_speedup": delta_speedup,
        "delta_speedup_vs_cold_python": delta_vs_cold,
        "delta_equals_fresh": delta_identical,
        "cache_hit_lower_seconds": cache_hit_seconds,
        "cache_hit_speedup": cache_hit_speedup,
        "cache_loaded_equals_fresh": cache_identical,
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_compile_path.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {out_path}")

    targets = [
        ("vectorized cold compile >= 5x python", vectorized_speedup, 5.0),
        ("delta recompile >= 20x the cold compile it replaces (~1% edit)",
         delta_vs_cold, 20.0),
        ("delta recompile >= 5x even a vectorized full relower",
         delta_speedup, 5.0),
        ("plan-cache hit >= 8x cold python compile",
         cache_hit_speedup, 8.0),
    ]
    for label, value, floor in targets:
        verdict = "PASS" if value >= floor else "FAIL"
        print(f"target: {label} — {verdict} ({value:.1f}x)")
    for label, flag in [
        ("vectorized lowering bit-identical to python", lowerings_identical),
        ("delta recompile bit-identical to fresh", delta_identical),
        ("cache-loaded plan bit-identical to fresh", cache_identical),
    ]:
        print(f"check: {label} — {'PASS' if flag else 'FAIL'}")


if __name__ == "__main__":
    main()
