"""Tests for the partial-decomposition hybrid (E12) and workload generators."""

import math

import networkx as nx
import pytest
from types import SimpleNamespace

from repro.baselines import tid_probability_enumerate
from repro.core.hybrid import (
    hybrid_stconn,
    monte_carlo_stconn,
    peel,
    reduce_for_stconn,
)
from repro.workloads import (
    core_and_tentacles_tid,
    cycle_tid,
    grid_tid,
    partial_ktree_tid,
    path_tid,
    rst_bipartite_tid,
    rst_chain_tid,
    table1_cinstance,
    table1_pc_instance,
)


def conn_oracle(s, t):
    def fn(world):
        graph = nx.Graph()
        graph.add_nodes_from([s, t])
        for f in world.facts():
            if f.relation == "E":
                graph.add_edge(*f.args)
        return nx.has_path(graph, s, t)

    return SimpleNamespace(holds_in=fn)


class TestGenerators:
    def test_path_width_one(self):
        tid = path_tid(20, seed=0)
        assert tid.treewidth_upper_bound() == 1

    def test_cycle_width_two(self):
        tid = cycle_tid(12, seed=0)
        assert tid.treewidth_upper_bound() == 2

    def test_grid_width_grows(self):
        small = grid_tid(2, 6, seed=0).treewidth_upper_bound()
        large = grid_tid(4, 6, seed=0).treewidth_upper_bound()
        assert small <= 2 and large >= 4

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_partial_ktree_certified_decomposition(self, k):
        generated = partial_ktree_tid(16, k, seed=3)
        generated.decomposition.validate(generated.tid.instance.gaifman_graph())
        assert generated.decomposition.width() <= k

    def test_generators_are_deterministic(self):
        a = path_tid(10, seed=4)
        b = path_tid(10, seed=4)
        assert [(f, a.probability(f)) for f in a.facts()] == [
            (f, b.probability(f)) for f in b.facts()
        ]

    def test_rst_chain_low_width(self):
        tid = rst_chain_tid(15, seed=0)
        assert tid.treewidth_upper_bound() <= 2

    def test_rst_bipartite_high_width(self):
        tid = rst_bipartite_tid(5, 5, seed=0)
        assert tid.treewidth_upper_bound() >= 4

    def test_table1_matches_paper_rows(self):
        ci = table1_cinstance()
        assert len(ci) == 5
        # pods-only world books CDG→MEL and MEL→CDG.
        world = ci.world({"pods": True, "stoc": False})
        assert len(world) == 2

    def test_table1_pc_distribution(self):
        pc = table1_pc_instance(0.7, 0.5)
        assert math.isclose(sum(pc.world_distribution().values()), 1.0)


class TestPeeling:
    def test_peel_removes_tentacles_only(self):
        tid = core_and_tentacles_tid(4, 2, 3, seed=0)
        graph = nx.Graph()
        for f in tid.facts():
            graph.add_edge(*f.args)
        periphery = peel(graph, frozenset({"core0"}), max_degree=2)
        assert all(v.startswith("t") or v.startswith("core") for v in periphery)
        # The 4-clique core cannot be peeled at degree 2.
        assert not any(
            v in periphery for v in ("core0", "core1", "core2", "core3")
        )


class TestHybridReduction:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("terminals", [("core0", "t0_2"), ("core1", "core3")])
    def test_reduction_preserves_distribution(self, seed, terminals):
        tid = core_and_tentacles_tid(4, 2, 3, seed=seed)
        s, t = terminals
        reduction = reduce_for_stconn(tid, s, t)
        exact_full = tid_probability_enumerate(conn_oracle(s, t), tid)
        exact_reduced = tid_probability_enumerate(conn_oracle(s, t), reduction.reduced)
        assert math.isclose(exact_full, exact_reduced, abs_tol=1e-9)

    def test_reduction_shrinks_instance(self):
        tid = core_and_tentacles_tid(4, 3, 4, seed=1)
        reduction = reduce_for_stconn(tid, "core0", "core2")
        assert len(reduction.reduced) < len(tid)
        assert reduction.fragments_summarized >= 1

    def test_hybrid_estimate_close_to_exact(self):
        tid = core_and_tentacles_tid(4, 2, 3, seed=2)
        s, t = "core0", "t1_2"
        exact = tid_probability_enumerate(conn_oracle(s, t), tid)
        estimate, _reduction = hybrid_stconn(tid, s, t, samples=4000, seed=0)
        assert abs(estimate - exact) < 0.05

    def test_monte_carlo_baseline_close_to_exact(self):
        tid = core_and_tentacles_tid(4, 2, 3, seed=2)
        s, t = "core0", "core3"
        exact = tid_probability_enumerate(conn_oracle(s, t), tid)
        estimate = monte_carlo_stconn(tid, s, t, samples=4000, seed=1)
        assert abs(estimate - exact) < 0.05

    def test_series_factoring_reduces_variance(self):
        # With a terminal at a tentacle tip, the chain reliability factors
        # out exactly: the hybrid integrates that randomness analytically,
        # so its estimator variance drops below naive MC's.
        tid = core_and_tentacles_tid(4, 3, 4, seed=3)
        s, t = "core0", "t2_3"
        exact = tid_probability_enumerate(conn_oracle(s, t), tid)
        hybrid_estimates = []
        naive_estimates = []
        for seed in range(30):
            estimate, _reduction = hybrid_stconn(tid, s, t, samples=60, seed=seed)
            hybrid_estimates.append(estimate)
            naive_estimates.append(monte_carlo_stconn(tid, s, t, samples=60, seed=seed))

        def mse(xs):
            return sum((x - exact) ** 2 for x in xs) / len(xs)

        assert mse(hybrid_estimates) < mse(naive_estimates)

    def test_series_factoring_exact_on_pure_chain(self):
        from repro.core.hybrid import series_factor_terminals
        from repro.workloads import path_tid

        tid = path_tid(6, seed=7)
        factor, s, t, remaining = series_factor_terminals(tid, 0, 5)
        expected = 1.0
        for f in tid.facts():
            expected *= tid.probability(f)
        assert s == t
        assert math.isclose(factor, expected)
        assert len(remaining) == 0


class TestStreamingLogMonitor:
    """The streaming update scenario: append batches, requery through
    ``recompile``, and stay bit-identical to a from-scratch compile."""

    @staticmethod
    def same_lowering(left, right):
        return (
            left.kinds == right.kinds
            and left.offsets == right.offsets
            and left.indices == right.indices
            and left.var_slot == right.var_slot
            and left.var_names == right.var_names
            and left.output == right.output
            and left.gate_ids == right.gate_ids
            and left.levels_list() == right.levels_list()
        )

    def test_batches_only_append_and_keep_old_output_in_cone(self):
        from repro.workloads import StreamingLogMonitor

        monitor = StreamingLogMonitor(machines=3, seed=1)
        monitor.append(20)
        first_output = monitor.circuit.output
        size_after_first = len(monitor.circuit)
        monitor.append(20)
        assert len(monitor.circuit) > size_after_first
        assert first_output in monitor.circuit.reachable_from_output()

    def test_requery_uses_the_delta_path_and_matches_fresh(self):
        from repro.circuits import CompiledCircuit
        from repro.circuits import compiled as compiled_module
        from repro.workloads import StreamingLogMonitor

        monitor = StreamingLogMonitor(machines=4, seed=2)
        monitor.append(60)
        monitor.requery()  # cold compile
        deltas = compiled_module.compile_stats()["delta_recompiles"]
        for _ in range(3):
            monitor.append(25)
            compiled = monitor.requery()
            assert self.same_lowering(compiled, CompiledCircuit(monitor.circuit))
        assert compiled_module.compile_stats()["delta_recompiles"] == deltas + 3

    def test_recompiled_monitor_evaluates_like_a_fresh_compile(self):
        from repro.circuits import CompiledCircuit
        from repro.workloads import StreamingLogMonitor

        monitor = StreamingLogMonitor(machines=2, seed=5)
        monitor.append(30)
        monitor.requery()
        monitor.append(30)
        compiled = monitor.requery()
        fresh = CompiledCircuit(monitor.circuit)
        worlds = [monitor.sample_world(seed=s) for s in range(16)]
        assert compiled.evaluate_batch(worlds) == fresh.evaluate_batch(worlds)
        marginals = {name: 0.5 for name in compiled.var_names}
        assert compiled.probability(marginals) == fresh.probability(marginals)
