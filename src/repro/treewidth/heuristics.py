"""Elimination-order heuristics for computing small-width tree decompositions.

The paper assumes decompositions are given or computed by standard means; in
practice min-degree and min-fill are the workhorse heuristics (and what
``networkx`` also provides). Experiment E11 compares them.
"""

from __future__ import annotations

import networkx as nx

from repro.treewidth.decomposition import TreeDecomposition, Vertex, from_elimination_order
from repro.util import ReproError

MIN_DEGREE = "min_degree"
MIN_FILL = "min_fill"
NETWORKX_MIN_DEGREE = "networkx_min_degree"
NETWORKX_MIN_FILL = "networkx_min_fill"

HEURISTICS = (MIN_DEGREE, MIN_FILL, NETWORKX_MIN_DEGREE, NETWORKX_MIN_FILL)


def _sort_key(vertex: Vertex) -> tuple[str, str]:
    return (type(vertex).__name__, str(vertex))


def min_degree_order(graph: nx.Graph) -> list[Vertex]:
    """Return an elimination order choosing a minimum-degree vertex each step.

    Ties are broken deterministically by string representation.
    """
    work = nx.Graph(graph)
    order: list[Vertex] = []
    while work.number_of_nodes() > 0:
        vertex = min(work.nodes, key=lambda v: (work.degree(v),) + _sort_key(v))
        neighbours = list(work.neighbors(vertex))
        for i, a in enumerate(neighbours):
            for b in neighbours[i + 1 :]:
                work.add_edge(a, b)
        work.remove_node(vertex)
        order.append(vertex)
    return order


def min_fill_order(graph: nx.Graph) -> list[Vertex]:
    """Return an elimination order choosing a minimum-fill-in vertex each step.

    The fill-in of a vertex is the number of edges that must be added to make
    its neighbourhood a clique; min-fill usually yields slightly smaller
    widths than min-degree at higher cost.
    """
    work = nx.Graph(graph)
    order: list[Vertex] = []

    def fill_in(vertex: Vertex) -> int:
        neighbours = list(work.neighbors(vertex))
        missing = 0
        for i, a in enumerate(neighbours):
            for b in neighbours[i + 1 :]:
                if not work.has_edge(a, b):
                    missing += 1
        return missing

    while work.number_of_nodes() > 0:
        vertex = min(work.nodes, key=lambda v: (fill_in(v),) + _sort_key(v))
        neighbours = list(work.neighbors(vertex))
        for i, a in enumerate(neighbours):
            for b in neighbours[i + 1 :]:
                work.add_edge(a, b)
        work.remove_node(vertex)
        order.append(vertex)
    return order


def decompose(graph: nx.Graph, heuristic: str = MIN_FILL) -> TreeDecomposition:
    """Compute a tree decomposition of ``graph`` with the chosen heuristic.

    ``heuristic`` is one of :data:`HEURISTICS`. The two ``networkx_*``
    variants delegate to :mod:`networkx.algorithms.approximation` and serve
    as an external cross-check in tests and the E11 ablation.
    """
    if graph.number_of_nodes() == 0:
        return TreeDecomposition({0: []}, [])
    if heuristic == MIN_DEGREE:
        return from_elimination_order(graph, min_degree_order(graph))
    if heuristic == MIN_FILL:
        return from_elimination_order(graph, min_fill_order(graph))
    if heuristic in (NETWORKX_MIN_DEGREE, NETWORKX_MIN_FILL):
        from networkx.algorithms.approximation import treewidth_min_degree, treewidth_min_fill_in

        fn = treewidth_min_degree if heuristic == NETWORKX_MIN_DEGREE else treewidth_min_fill_in
        _width, tree = fn(nx.Graph(graph))
        bags = {i: frozenset(bag) for i, bag in enumerate(tree.nodes)}
        index = {bag: i for i, bag in enumerate(tree.nodes)}
        edges = [(index[a], index[b]) for a, b in tree.edges]
        return TreeDecomposition(bags, edges)
    raise ReproError(f"unknown heuristic {heuristic!r}; expected one of {HEURISTICS}")


def greedy_width(graph: nx.Graph, heuristic: str = MIN_FILL) -> int:
    """Return the width achieved by the heuristic on ``graph``."""
    return decompose(graph, heuristic).width()
