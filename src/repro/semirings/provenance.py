"""Semiring provenance: reference semantics and circuit evaluation.

Two routes to the provenance of a monotone query:

- :func:`reference_provenance` — the textbook Green–Karvounarakis–Tannen
  definition: sum over homomorphisms of the product of fact annotations
  (for UCQs, additionally summed over disjuncts).
- :func:`evaluate_circuit` — evaluate a monotone provenance circuit (from
  :func:`repro.core.build_provenance_circuit`) in the semiring.

The paper's claim, which tests and benchmark E7 verify: the two agree on
**absorptive** semirings; on non-absorptive ones (ℕ[X], counting, Why) the
circuit may differ because a run of the automaton can use spare facts.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.circuits import Circuit, compile_circuit
from repro.instances.base import Fact, Instance
from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.semirings.base import Semiring
from repro.util import check


def reference_provenance(
    query,
    instance: Instance,
    semiring: Semiring,
    annotation: Mapping[Fact, object] | Callable[[Fact], object],
):
    """GKT provenance by homomorphism enumeration (the ground truth).

    ``annotation`` maps each fact to its semiring element (a mapping or a
    callable). For a CQ: ``⊕ over homomorphisms h`` of
    ``⊗ over atoms a`` of ``annotation(h(a))``; for UCQs, summed over
    disjuncts.
    """
    annotate = annotation if callable(annotation) else annotation.__getitem__
    if isinstance(query, UnionOfConjunctiveQueries):
        return semiring.add_all(
            reference_provenance(q, instance, semiring, annotation)
            for q in query.disjuncts
        )
    check(isinstance(query, ConjunctiveQuery), "reference provenance needs a CQ/UCQ")
    total = semiring.zero()
    for witness in query.witnesses(instance):
        term = semiring.multiply_all(annotate(f) for f in witness)
        total = semiring.add(total, term)
    return total


def evaluate_circuit(
    circuit: Circuit,
    semiring: Semiring,
    annotation: Mapping[str, object] | Callable[[str], object],
):
    """Evaluate a monotone circuit in a semiring (⊕ at OR, ⊗ at AND).

    ``annotation`` maps *variable names* (fact variable names) to semiring
    elements. Negation gates are rejected: provenance is defined for
    monotone queries only. The circuit is compiled to the flat IR once
    (cached) and folded in a single array pass.
    """
    annotate = annotation if callable(annotation) else annotation.__getitem__
    check(circuit.output is not None, "circuit has no output gate")
    return compile_circuit(circuit).evaluate_semiring(semiring, annotate)


def circuit_provenance(
    query,
    instance: Instance,
    semiring: Semiring,
    annotation: Mapping[Fact, object] | Callable[[Fact], object],
    decomposition=None,
):
    """Provenance via the treewidth-based provenance circuit (the paper's way)."""
    from repro.core.engine import build_provenance_circuit

    annotate = annotation if callable(annotation) else annotation.__getitem__
    lineage = build_provenance_circuit(instance, query, decomposition)
    by_name = {f.variable_name: annotate(f) for f in instance.facts()}
    return evaluate_circuit(lineage.circuit, semiring, by_name)


def default_tokens(instance: Instance) -> dict[Fact, str]:
    """Annotate each fact with its own token (for PosBool / ℕ[X] semirings)."""
    return {f: f.variable_name for f in instance.facts()}
