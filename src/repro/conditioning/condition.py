"""Conditioning uncertain data on observations (paper Section 4).

Observations come in three flavours, in increasing difficulty — exactly the
gradient the paper describes:

- **event literal** (``e = true``): trivial for pc-instances (independence:
  pin the marginal), and structure-preserving — the annotation circuit can
  only shrink, so treewidth never increases;
- **fact presence** (``f ∈ world``): conditions on the fact's annotation, an
  arbitrary formula/gate — requires weighted model counting;
- **query answer** (``q holds``): conditions on the query lineage.

A :class:`ConditionedInstance` accumulates constraint gates over a
pcc-instance and answers conditional queries as WMC ratios
``P(q ∧ C) / P(C)`` via the tractable message-passing engine.
"""

from __future__ import annotations

from repro.circuits import Circuit, probability
from repro.core.engine import combine_with_annotations
from repro.instances.base import Fact
from repro.instances.pcc import PCCInstance
from repro.util import ReproError, check


class ConditionedInstance:
    """A pcc-instance together with an accumulated observation constraint."""

    def __init__(self, pcc: PCCInstance):
        self.pcc = pcc
        self._constraints: list[Circuit] = []
        self._constraint_cache: tuple[int, Circuit] | None = None

    def copy(self) -> "ConditionedInstance":
        """A shallow copy sharing the instance but not future observations."""
        duplicate = ConditionedInstance(self.pcc)
        duplicate._constraints = list(self._constraints)
        return duplicate

    # ------------------------------------------------------------------ #
    # recording observations

    def observe_event(self, event: str, value: bool) -> "ConditionedInstance":
        """Observe an event literal."""
        check(event in self.pcc.space, f"unknown event {event!r}")
        constraint = Circuit()
        gate = constraint.variable(event)
        constraint.set_output(gate if value else constraint.negation(gate))
        self._constraints.append(constraint)
        return self

    def observe_fact(self, f: Fact, present: bool) -> "ConditionedInstance":
        """Observe that a fact is present (or absent) in the true world."""
        constraint = Circuit()
        translation = self.pcc.circuit.copy_into(
            constraint, substitution={}, roots=[self.pcc.gate_of(f)]
        )
        gate = translation[self.pcc.gate_of(f)]
        constraint.set_output(gate if present else constraint.negation(gate))
        self._constraints.append(constraint)
        return self

    def observe_query(self, query, holds: bool = True) -> "ConditionedInstance":
        """Observe the truth value of a Boolean query on the true world."""
        from repro.core.engine import build_lineage, build_provenance_circuit
        from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries

        if isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
            lineage = build_provenance_circuit(self.pcc.instance, query)
        else:
            lineage = build_lineage(self.pcc.instance, query)
        combined = combine_with_annotations(lineage.circuit, self.pcc)
        if not holds:
            negated = Circuit()
            translation = combined.copy_into(negated)
            negated.set_output(negated.negation(translation[combined.output]))
            combined = negated
        self._constraints.append(combined)
        return self

    # ------------------------------------------------------------------ #
    # conditional inference

    def constraint_circuit(self) -> Circuit:
        """The conjunction of all recorded observations, as one circuit.

        Built (and hence compiled, decomposed) once per observation count:
        repeated conditional queries share the cached circuit, whose
        compiled form carries the cached tree decomposition.
        """
        if self._constraint_cache is not None and self._constraint_cache[0] == len(
            self._constraints
        ):
            return self._constraint_cache[1]
        merged = Circuit()
        outputs = []
        for constraint in self._constraints:
            translation = constraint.copy_into(merged)
            outputs.append(translation[constraint.output])
        merged.set_output(merged.and_gate(outputs) if outputs else merged.true())
        self._constraint_cache = (len(self._constraints), merged)
        return merged

    def evidence_probability(self, max_width: int = 24) -> float:
        """P(observations) under the prior."""
        return probability(
            self.constraint_circuit(),
            self.pcc.space,
            engine="message_passing",
            max_width=max_width,
        )

    def query_probability(self, query, max_width: int = 24) -> float:
        """P(query | observations) by the WMC ratio."""
        from repro.core.engine import build_lineage, build_provenance_circuit
        from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries

        evidence = self.evidence_probability(max_width=max_width)
        if evidence == 0.0:
            raise ReproError("conditioning on a zero-probability observation")
        if isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
            lineage = build_provenance_circuit(self.pcc.instance, query)
        else:
            lineage = build_lineage(self.pcc.instance, query)
        query_circuit = combine_with_annotations(lineage.circuit, self.pcc)
        joint = _conjoin(query_circuit, self.constraint_circuit())
        numerator = probability(
            joint, self.pcc.space, engine="message_passing", max_width=max_width
        )
        return numerator / evidence

    def fact_probability(self, f: Fact, max_width: int = 24) -> float:
        """P(fact present | observations)."""
        evidence = self.evidence_probability(max_width=max_width)
        if evidence == 0.0:
            raise ReproError("conditioning on a zero-probability observation")
        fact_circuit = Circuit()
        translation = self.pcc.circuit.copy_into(
            fact_circuit, substitution={}, roots=[self.pcc.gate_of(f)]
        )
        fact_circuit.set_output(translation[self.pcc.gate_of(f)])
        joint = _conjoin(fact_circuit, self.constraint_circuit())
        numerator = probability(
            joint, self.pcc.space, engine="message_passing", max_width=max_width
        )
        return numerator / evidence

    def __repr__(self) -> str:
        return f"ConditionedInstance(observations={len(self._constraints)})"


def _conjoin(a: Circuit, b: Circuit) -> Circuit:
    merged = Circuit()
    ta = a.copy_into(merged)
    tb = b.copy_into(merged)
    merged.set_output(merged.and_gate([ta[a.output], tb[b.output]]))
    return merged


def condition_pc_on_literal(pc, event: str, value: bool):
    """Structure-preserving literal conditioning on a pc-instance.

    Returns the conditioned pc-instance; annotations only shrink (the
    tractability-preservation observation of Section 4).
    """
    return pc.conditioned_on_literal(event, value)
