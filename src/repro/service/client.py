"""Blocking client + subprocess lifecycle for the query service.

:class:`ServiceClient` speaks the service's JSON protocol over one
keep-alive ``http.client`` connection — stdlib only, usable from tests,
benchmarks, and plain scripts. Streaming responses (``/sample``) come
back as a generator of decoded updates; ``http.client`` undoes the
chunked framing transparently.

:func:`spawn_service` mirrors
:func:`repro.circuits.distributed.spawn_local_worker`: subprocess spawn,
readiness-line wait, and a handle whose ``stop()`` the caller owns — the
one spawn/teardown implementation the service tests, the fault drills and
the E19 bench all share.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import sys

from repro.util import ReproError

#: The readiness line a spawned service prints, parsed by spawn_service.
READY_PREFIX = "repro-service listening on"


class ServiceClientError(ReproError):
    """An error response from the service, carrying the HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """A keep-alive JSON client for one service address."""

    def __init__(self, address: str, timeout: float = 60.0):
        address = address.strip()
        for prefix in ("http://", "https://"):
            if address.startswith(prefix):
                address = address[len(prefix):]
        address = address.rstrip("/")
        host, sep, port = address.rpartition(":")
        if not sep:
            raise ReproError(f"service address needs host:port, got {address!r}")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing --------------------------------------------------------- #

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the connection (hard: aborts any in-flight stream)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _send(self, method: str, path: str, payload=None):
        body = None if payload is None else json.dumps(payload).encode()
        last_error: Exception | None = None
        # One retry on a stale keep-alive connection the server closed
        # between requests; never retried mid-response.
        for attempt in (0, 1):
            connection = self._connection()
            try:
                connection.request(
                    method, path, body=body,
                    headers={"Content-Type": "application/json"},
                )
                return connection.getresponse()
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, OSError) as exc:
                last_error = exc
                self.close()
                if attempt:
                    raise
        raise ReproError(f"service request failed: {last_error}")

    def request(self, method: str, path: str, payload=None) -> dict:
        """One JSON round trip; raises :class:`ServiceClientError` on >= 400."""
        response = self._send(method, path, payload)
        data = response.read()
        decoded = json.loads(data) if data else {}
        if response.status >= 400:
            raise ServiceClientError(
                response.status,
                decoded.get("error", f"service returned {response.status}"),
            )
        return decoded

    # -- endpoints -------------------------------------------------------- #

    def health(self) -> dict:
        return self.request("GET", "/health")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def transport(self) -> dict:
        """The service's distributed-transport block from ``/stats``.

        ``{"provider", "auth", "pipeline_depth", "registered_hosts"}`` —
        what secures the worker links, how deep shard pipelining runs,
        and which workers joined elastically (empty on older services).
        """
        return self.stats().get("transport", {})

    def register_plan(self, plan_bytes: bytes) -> dict:
        """Register a wire plan; returns the service's digest record."""
        encoded = base64.b64encode(plan_bytes).decode("ascii")
        return self.request("POST", "/plans", {"plan_b64": encoded})

    def register_compiled(self, compiled) -> str:
        """Register a :class:`CompiledCircuit`'s plan; returns its digest."""
        return self.register_plan(compiled.wire_bytes())["digest"]

    def compile(self, instance_payload: dict, query: dict,
                probabilities: dict | None = None, method: str = "lineage",
                default_probability: float = 0.5) -> dict:
        """Server-side ingest + compile; returns digest/variables/default row."""
        body = {
            "instance": instance_payload,
            "query": query,
            "method": method,
            "default_probability": default_probability,
        }
        if probabilities is not None:
            body["probabilities"] = probabilities
        return self.request("POST", "/compile", body)

    def probability(self, digest: str, rows, peers: int | None = None) -> dict:
        """Marginals for ``rows`` (slot order) under plan ``digest``."""
        body = {"digest": digest, "rows": [list(map(float, row)) for row in rows]}
        if peers is not None:
            body["peers"] = peers
        return self.request("POST", "/probability", body)

    def sample(self, digest: str, row, samples: int, chunk: int | None = None,
               seed: int = 0):
        """Stream converging Monte-Carlo estimates; yields update dicts.

        The generator ends after the ``done: true`` update. Abandoning it
        and calling :meth:`close` aborts the run server-side (the
        disconnect-cancellation path the fault tests exercise).
        """
        body = {
            "digest": digest, "row": [float(v) for v in row],
            "samples": samples, "seed": seed,
        }
        if chunk is not None:
            body["chunk"] = chunk
        response = self._send("POST", "/sample", body)
        if response.status >= 400:
            data = response.read()
            decoded = json.loads(data) if data else {}
            raise ServiceClientError(
                response.status,
                decoded.get("error", f"service returned {response.status}"),
            )

        def updates():
            while True:
                line = response.readline()
                if not line:
                    break
                yield json.loads(line)

        return updates()

    def shutdown(self) -> None:
        """Ask the service to exit (tolerates the connection dropping)."""
        try:
            self.request("POST", "/shutdown")
        except (ReproError, OSError, http.client.HTTPException,
                ConnectionError, ValueError):
            pass
        finally:
            self.close()


class LocalService:
    """A ``repro serve-http`` subprocess spawned by :func:`spawn_service`."""

    __slots__ = ("process", "host", "port")

    def __init__(self, process, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def client(self, timeout: float = 60.0) -> ServiceClient:
        return ServiceClient(self.address, timeout=timeout)

    def alive(self) -> bool:
        return self.process.poll() is None

    def wait_dead(self, timeout: float = 10.0) -> int:
        """Block until the process exits; returns its exit code."""
        return self.process.wait(timeout=timeout)

    def stop(self) -> None:
        """Terminate the service and reap it (idempotent, escalates)."""
        import subprocess

        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                self.process.kill()
                self.process.wait(timeout=5.0)
        if self.process.stdout is not None:
            self.process.stdout.close()


def spawn_service(port: int = 0, coalesce: bool = True,
                  coalesce_ms: float | None = None,
                  cache_size: int | None = None,
                  cache_ttl: float | None = None,
                  startup_timeout: float = 30.0,
                  env: dict | None = None,
                  extra_args: tuple = ()) -> LocalService:
    """Start a localhost query service subprocess and wait until ready.

    Runs ``python -m repro serve-http`` with this process's ``repro``
    package on the child's path and blocks for the readiness line. ``env``
    overlays extra environment variables on the child (e.g.
    ``REPRO_DISTRIBUTED_HOSTS`` or ``REPRO_PLAN_CACHE_DIR`` for the fault
    drills). The caller owns teardown (:meth:`LocalService.stop`).
    """
    import re
    import subprocess
    import time
    from pathlib import Path

    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    child_env = dict(os.environ)
    child_env["PYTHONPATH"] = package_root + (
        os.pathsep + child_env["PYTHONPATH"]
        if child_env.get("PYTHONPATH") else ""
    )
    if env:
        child_env.update({key: str(value) for key, value in env.items()})
    command = [sys.executable, "-m", "repro", "serve-http",
               "--port", str(port)]
    if not coalesce:
        command.append("--no-coalesce")
    if coalesce_ms is not None:
        command += ["--coalesce-ms", str(coalesce_ms)]
    if cache_size is not None:
        command += ["--cache-size", str(cache_size)]
    if cache_ttl is not None:
        command += ["--cache-ttl", str(cache_ttl)]
    command += list(extra_args)
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=child_env,
    )
    deadline = time.monotonic() + startup_timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on ([\w.\-]+):(\d+)", line)
        if match:
            return LocalService(process, match.group(1), int(match.group(2)))
    process.kill()
    process.wait(timeout=5.0)
    raise ReproError(f"service never became ready (last output: {line!r})")
