"""Tree-pattern queries over unordered labeled trees.

The standard query language of probabilistic XML (and the one the paper's
tree-tractability results are usually stated for, alongside MSO): a pattern
is a tree whose nodes carry a label or the wildcard ``*`` and whose edges are
child or descendant edges; it matches a tree if there is a homomorphism
respecting labels and edge types. The pattern may match anywhere in the tree
(descendant-or-self at the root).

Matching is the classic bottom-up (A, D) computation: for each tree node,
``A`` is the set of pattern nodes matched exactly there and ``D`` the set
matched there or below. The same computation, lifted to distributions or
circuits, powers the probabilistic evaluation in
:mod:`repro.prxml.evaluation` and the binary tree automata bridge in
:mod:`repro.automata.bridge`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.prxml.model import World, world_children, world_label
from repro.util import check

CHILD = "child"
DESCENDANT = "descendant"
WILDCARD = "*"


@dataclass
class PatternNode:
    """One node of a tree pattern: a label test plus typed child edges."""

    label: str
    edges: list[tuple[str, "PatternNode"]] = field(default_factory=list)

    def add_child(self, node: "PatternNode") -> "PatternNode":
        """Attach ``node`` via a child edge and return it."""
        self.edges.append((CHILD, node))
        return node

    def add_descendant(self, node: "PatternNode") -> "PatternNode":
        """Attach ``node`` via a descendant edge and return it."""
        self.edges.append((DESCENDANT, node))
        return node


class TreePattern:
    """A tree-pattern query; matches anywhere in the target tree."""

    def __init__(self, root: PatternNode):
        self.root = root
        self._nodes: list[PatternNode] = []
        stack = [root]
        while stack:
            node = stack.pop()
            self._nodes.append(node)
            for _kind, child in node.edges:
                stack.append(child)
        self._index = {id(n): i for i, n in enumerate(self._nodes)}

    def nodes(self) -> list[PatternNode]:
        """All pattern nodes (root first)."""
        return list(self._nodes)

    def node_index(self, node: PatternNode) -> int:
        """Stable index of a pattern node (used as automaton state bits)."""
        return self._index[id(node)]

    # ------------------------------------------------------------------ #

    def _label_ok(self, node: PatternNode, label: str) -> bool:
        return node.label == WILDCARD or node.label == label

    def match_state(self, label: str, child_states: Sequence[tuple[frozenset, frozenset]]
                    ) -> tuple[frozenset, frozenset]:
        """One step of the bottom-up (A, D) computation.

        ``child_states`` are the (A, D) pairs of the node's children; returns
        the (A, D) pair of the node itself. Exposed so that the probabilistic
        evaluation and the automata bridge can reuse the identical logic.
        """
        union_a: frozenset = frozenset().union(*(a for a, _d in child_states)) if child_states else frozenset()
        union_d: frozenset = frozenset().union(*(d for _a, d in child_states)) if child_states else frozenset()
        return self.match_state_from_unions(label, union_a, union_d)

    def match_state_from_unions(
        self, label: str, union_a: frozenset, union_d: frozenset
    ) -> tuple[frozenset, frozenset]:
        """(A, D) of a node from the unions of its children's A's and D's."""
        matched = set()
        for i, node in enumerate(self._nodes):
            if not self._label_ok(node, label):
                continue
            ok = True
            for kind, child in node.edges:
                j = self._index[id(child)]
                if kind == CHILD and j not in union_a:
                    ok = False
                    break
                if kind == DESCENDANT and j not in union_d:
                    ok = False
                    break
            if ok:
                matched.add(i)
        a = frozenset(matched)
        d = a | union_d
        return a, d

    def matches(self, tree: World) -> bool:
        """Whether the pattern matches ``tree`` (anywhere)."""
        _a, d = self._evaluate(tree)
        return self._index[id(self.root)] in d

    def _evaluate(self, tree: World) -> tuple[frozenset, frozenset]:
        child_states = [self._evaluate(child) for child in world_children(tree)]
        return self.match_state(world_label(tree), child_states)

    def __repr__(self) -> str:
        return f"TreePattern(nodes={len(self._nodes)})"


def pattern(label: str) -> PatternNode:
    """Create a pattern node (chain with :meth:`PatternNode.add_child`)."""
    check(isinstance(label, str) and label != "", "pattern label must be a non-empty string")
    return PatternNode(label)


def path_pattern(*labels: str, descendant: bool = False) -> TreePattern:
    """Pattern for a root-to-leaf label path, via child or descendant edges."""
    check(len(labels) > 0, "need at least one label")
    root = pattern(labels[0])
    current = root
    for label in labels[1:]:
        nxt = pattern(label)
        if descendant:
            current.add_descendant(nxt)
        else:
            current.add_child(nxt)
        current = nxt
    return TreePattern(root)
