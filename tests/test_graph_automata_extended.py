"""Tests for the counting-MSO automata: even degrees, edge connectivity."""

import math
import random

import networkx as nx
import pytest
from types import SimpleNamespace

from repro.baselines import tid_probability_enumerate
from repro.core import (
    AllDegreesEvenAutomaton,
    EdgeConnectedAutomaton,
    conjunction,
    tid_probability,
)
from repro.instances import TIDInstance, fact


def random_graph_tid(seed: int, max_n: int = 6) -> TIDInstance:
    rng = random.Random(seed)
    tid = TIDInstance()
    n = rng.randint(3, max_n)
    for i in range(n - 1):
        tid.add(fact("E", i, i + 1), round(rng.uniform(0.1, 0.9), 2))
    for _ in range(rng.randint(0, 4)):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            tid.add(fact("E", min(a, b), max(a, b)), round(rng.uniform(0.1, 0.9), 2))
    return tid


def even_degree_oracle():
    def fn(world):
        degree: dict = {}
        for f in world.facts():
            if f.relation == "E":
                a, b = f.args
                if a == b:
                    continue
                degree[a] = degree.get(a, 0) + 1
                degree[b] = degree.get(b, 0) + 1
        return all(d % 2 == 0 for d in degree.values())

    return SimpleNamespace(holds_in=fn)


def edge_connected_oracle():
    def fn(world):
        graph = nx.Graph()
        for f in world.facts():
            if f.relation == "E":
                graph.add_edge(*f.args)
        if graph.number_of_edges() == 0:
            return True
        return nx.number_connected_components(graph) == 1

    return SimpleNamespace(holds_in=fn)


class TestAllDegreesEven:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_oracle(self, seed):
        tid = random_graph_tid(seed)
        assert math.isclose(
            tid_probability(AllDegreesEvenAutomaton(), tid),
            tid_probability_enumerate(even_degree_oracle(), tid),
            abs_tol=1e-9,
        )

    def test_empty_graph_accepted(self):
        tid = TIDInstance({fact("E", 1, 2): 0.0})
        assert tid_probability(AllDegreesEvenAutomaton(), tid) == 1.0

    def test_triangle_is_even(self):
        tid = TIDInstance(
            {fact("E", 1, 2): 1.0, fact("E", 2, 3): 1.0, fact("E", 1, 3): 1.0}
        )
        assert math.isclose(tid_probability(AllDegreesEvenAutomaton(), tid), 1.0)

    def test_single_edge_is_odd(self):
        tid = TIDInstance({fact("E", 1, 2): 1.0})
        assert tid_probability(AllDegreesEvenAutomaton(), tid) == 0.0


class TestEdgeConnected:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_oracle(self, seed):
        tid = random_graph_tid(seed)
        assert math.isclose(
            tid_probability(EdgeConnectedAutomaton(), tid),
            tid_probability_enumerate(edge_connected_oracle(), tid),
            abs_tol=1e-9,
        )

    def test_no_edges_vacuously_connected(self):
        tid = TIDInstance({fact("E", 1, 2): 0.0})
        assert tid_probability(EdgeConnectedAutomaton(), tid) == 1.0

    def test_two_disjoint_edges_rejected(self):
        tid = TIDInstance({fact("E", 1, 2): 1.0, fact("E", 3, 4): 1.0})
        assert tid_probability(EdgeConnectedAutomaton(), tid) == 0.0

    def test_path_probability(self):
        # Connectivity of present edges on a 3-path: connected iff not
        # exactly the two end edges without... enumerate check suffices.
        tid = TIDInstance(
            {fact("E", 1, 2): 0.5, fact("E", 2, 3): 0.5, fact("E", 3, 4): 0.5}
        )
        assert math.isclose(
            tid_probability(EdgeConnectedAutomaton(), tid),
            tid_probability_enumerate(edge_connected_oracle(), tid),
            abs_tol=1e-12,
        )


class TestEulerianCombination:
    @pytest.mark.parametrize("seed", range(5))
    def test_eulerian_circuit_condition(self, seed):
        # Connected + all degrees even = Eulerian (on the present edges):
        # the textbook example of combining MSO properties by product.
        tid = random_graph_tid(seed, max_n=5)
        eulerian = conjunction(EdgeConnectedAutomaton(), AllDegreesEvenAutomaton())

        def oracle(world):
            return edge_connected_oracle().holds_in(world) and even_degree_oracle().holds_in(
                world
            )

        assert math.isclose(
            tid_probability(eulerian, tid),
            tid_probability_enumerate(SimpleNamespace(holds_in=oracle), tid),
            abs_tol=1e-9,
        )
