"""The certain-answer engine: trichotomy routing vs the all-repairs oracle."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import compile_stats
from repro.cqa import (
    CONP,
    FO,
    PTIME,
    certain_answers,
    certain_by_circuit,
    certain_oracle,
    classify,
    cqa_stats,
    elimination_order,
    fo_rewriting,
    iter_repairs,
    repair_count,
    repair_lineage,
    reset_cqa_stats,
)
from repro.instances import Instance, fact, make_instance
from repro.queries import ConjunctiveQuery, KeySpec, atom, key_spec, ucq, variables
from repro.util import ReproError
from repro.workloads import cqa_trichotomy_queries, key_violation_instance

x, y, z = variables("x", "y", "z")
KEYS = key_spec(R=(0,), S=(0,))

#: The canonical Koutris–Wijsen examples, one per published class.
Q_FO = ConjunctiveQuery((atom("R", x, y), atom("S", y, z)))
Q_PTIME = ConjunctiveQuery((atom("R", x, y), atom("S", y, x)))
Q_CONP = ConjunctiveQuery((atom("R", x, y), atom("S", z, y)))


class TestKeySpec:
    def test_positions_declared_and_default(self):
        keys = key_spec(R=(0,), S=0)
        assert keys.positions_for("R", 2) == (0,)
        assert keys.positions_for("S", 3) == (0,)
        assert keys.positions_for("T", 2) == (0, 1)  # undeclared: all-key
        assert keys.declares("R") and not keys.declares("T")
        assert keys.relations() == ("R", "S")

    def test_key_of_and_violations(self):
        keys = key_spec(R=(0,))
        inst = Instance([fact("R", 1, "a"), fact("R", 1, "b"), fact("R", 2, "a")])
        assert keys.key_of(fact("R", 1, "a")) == (1,)
        assert keys.violations(inst) == 1
        assert not keys.is_consistent(inst)
        assert keys.is_consistent(Instance([fact("R", 1, "a"), fact("R", 2, "a")]))

    def test_validation(self):
        with pytest.raises(ReproError, match="non-negative"):
            key_spec(R=(-1,))
        with pytest.raises(ReproError, match="duplicate"):
            key_spec(R=(0, 0))
        with pytest.raises(ReproError, match="out of range"):
            key_spec(R=(5,)).positions_for("R", 2)

    def test_equality_and_hash(self):
        assert key_spec(R=(0,)) == key_spec(R=0)
        assert hash(key_spec(R=(1, 0))) == hash(key_spec(R=(0, 1)))
        assert key_spec(R=(0,)) != key_spec(R=(1,))


class TestKeyIndex:
    @pytest.mark.parametrize("backend", ["object", "columnar"])
    def test_blocks_group_by_key(self, backend):
        inst = make_instance(backend)
        for k, v in [(1, 7), (1, 8), (2, 7), (3, 9)]:
            inst.add(fact("R", k, v))
        index = inst.key_index("R", (0,))
        assert {k: len(v) for k, v in index.items()} == {(1,): 2, (2,): 1, (3,): 1}
        assert all(f.args[0] == k[0] for k, block in index.items() for f in block)

    def test_backends_agree_fact_for_fact(self):
        obj, keys = key_violation_instance(9, 0.5, seed=4, backend="object")
        col, _ = key_violation_instance(9, 0.5, seed=4, backend="columnar")
        for relation in ("R", "S"):
            assert obj.key_index(relation, (0,)) == col.key_index(relation, (0,))


class TestClassifier:
    def test_canonical_classes(self):
        assert classify(Q_FO, KEYS).trichotomy == FO
        assert classify(Q_PTIME, KEYS).trichotomy == PTIME
        assert classify(Q_CONP, KEYS).trichotomy == CONP

    def test_stable_under_atom_reordering(self):
        for query, expected in ((Q_FO, FO), (Q_PTIME, PTIME), (Q_CONP, CONP)):
            for perm in itertools.permutations(query.atoms):
                assert classify(ConjunctiveQuery(tuple(perm)), KEYS).trichotomy == expected

    def test_workload_queries_match(self):
        for name, query in cqa_trichotomy_queries().items():
            assert classify(query, KEYS).trichotomy == name

    def test_self_joins_rejected(self):
        q = ConjunctiveQuery((atom("R", x, y), atom("R", y, z)))
        with pytest.raises(ReproError, match="self-join"):
            classify(q, KEYS)

    def test_all_key_relations_are_fo(self):
        # Undeclared keys default to all-positions: every block is a
        # singleton, nothing attacks, the query is trivially FO.
        q = ConjunctiveQuery((atom("T", x, y), atom("U", y, z)))
        assert classify(q, key_spec()).trichotomy == FO

    def test_describe_mentions_class_and_attacks(self):
        text = classify(Q_CONP, KEYS).describe(Q_CONP)
        assert "conp" in text and "strong" in text


class TestFORewriting:
    def test_order_exists_for_fo_only(self):
        assert elimination_order(Q_FO, KEYS) is not None
        assert elimination_order(Q_PTIME, KEYS) is None
        assert elimination_order(Q_CONP, KEYS) is None

    def test_formula_shape(self):
        formula = fo_rewriting(Q_FO, KEYS).formula
        assert "∀" in formula and "∃" in formula and "R(" in formula

    def test_rejects_non_fo(self):
        with pytest.raises(ReproError):
            fo_rewriting(Q_CONP, KEYS)


def _oracle_grid(query):
    """Routed answer vs oracle across a deterministic instance grid."""
    for rate in (0.0, 0.3, 0.6):
        for seed in range(4):
            inst, keys = key_violation_instance(7, rate, seed=seed)
            assert certain_answers(query, inst, keys) == certain_oracle(
                query, inst, keys
            ), (rate, seed)


class TestCertainAnswers:
    def test_fo_matches_oracle(self):
        _oracle_grid(Q_FO)

    def test_ptime_matches_oracle(self):
        _oracle_grid(Q_PTIME)

    def test_conp_matches_oracle(self):
        _oracle_grid(Q_CONP)

    def test_forced_methods_agree(self):
        inst, keys = key_violation_instance(6, 0.5, seed=2)
        for query in (Q_FO, Q_PTIME, Q_CONP):
            expected = certain_oracle(query, inst, keys)
            assert certain_answers(query, inst, keys, method="circuit") == expected
            assert certain_answers(query, inst, keys, method="oracle") == expected

    def test_rewrite_method_requires_fo(self):
        inst, keys = key_violation_instance(4, 0.5, seed=0)
        assert certain_answers(Q_FO, inst, keys, method="rewrite") == certain_oracle(
            Q_FO, inst, keys
        )
        with pytest.raises(ReproError, match="not FO-rewritable"):
            certain_answers(Q_PTIME, inst, keys, method="rewrite")

    def test_unknown_method_rejected(self):
        inst, keys = key_violation_instance(3, 0.0, seed=0)
        with pytest.raises(ReproError, match="unknown CQA method"):
            certain_answers(Q_FO, inst, keys, method="bogus")

    def test_empty_relation_is_not_certain(self):
        inst = Instance([fact("R", 1, 2)])  # no S facts at all
        assert certain_answers(Q_FO, inst, KEYS) is False
        assert certain_oracle(Q_FO, inst, KEYS) is False

    def test_consistent_instance_reduces_to_holds_in(self):
        inst = Instance([fact("R", 1, 2), fact("S", 2, 3)])
        assert certain_answers(Q_FO, inst, KEYS) is True
        assert certain_answers(Q_PTIME, inst, KEYS) is False

    def test_fo_route_compiles_no_circuits(self):
        inst, keys = key_violation_instance(8, 0.5, seed=9)
        before = compile_stats(lifetime=True)
        answer = certain_answers(Q_FO, inst, keys)
        assert compile_stats(lifetime=True) == before
        assert answer == certain_oracle(Q_FO, inst, keys)

    def test_routing_stats(self):
        reset_cqa_stats()
        inst, keys = key_violation_instance(6, 0.5, seed=1)
        certain_answers(Q_FO, inst, keys)
        certain_answers(Q_PTIME, inst, keys)
        certain_answers(Q_CONP, inst, keys)
        certain_answers(Q_FO, inst, keys, method="circuit")
        stats = cqa_stats()
        assert stats["fo"] == 1 and stats["ptime"] == 1 and stats["conp"] == 1
        assert stats["pair_solver"] == 1
        assert stats["forced_circuit"] == 1
        reset_cqa_stats()
        assert all(v == 0 for v in cqa_stats().values())

    def test_ptime_fallback_on_weak_three_cycle(self):
        # A weak 3-cycle is PTIME-class but not the pair shape the
        # propagation solver handles — the engine must fall back to the
        # circuit encoding and still bit-match the oracle.
        keys = key_spec(R=(0,), S=(0,), T=(0,))
        q = ConjunctiveQuery((atom("R", x, y), atom("S", y, z), atom("T", z, x)))
        assert classify(q, keys).trichotomy == PTIME
        inst = Instance(
            [
                fact("R", 0, 1), fact("R", 0, 2),
                fact("S", 1, 2), fact("S", 2, 0), fact("S", 2, 1),
                fact("T", 2, 0), fact("T", 1, 0), fact("T", 1, 2),
            ]
        )
        reset_cqa_stats()
        assert certain_answers(q, inst, keys) == certain_oracle(q, inst, keys)
        assert cqa_stats()["circuit_fallbacks"] >= 1

    def test_ucq_oracle_and_circuit(self):
        # The oracle and the circuit encoding both accept UCQs even
        # though the classifier (self-join-free CQs only) does not.
        inst, keys = key_violation_instance(5, 0.6, seed=3)
        union = ucq(Q_FO, Q_CONP)
        assert certain_by_circuit(union, inst, keys) == certain_oracle(
            union, inst, keys
        )


class TestRepairs:
    def test_count_and_enumeration_agree(self):
        inst, keys = key_violation_instance(5, 0.5, seed=7)
        count = repair_count(inst, keys)
        repairs = list(iter_repairs(inst, keys))
        assert len(repairs) == count
        assert all(keys.is_consistent(r) for r in repairs)

    def test_oracle_refuses_huge_instances(self):
        inst, keys = key_violation_instance(40, 1.0, seed=0)
        with pytest.raises(ReproError, match="oracle cap"):
            certain_oracle(Q_FO, inst, keys)

    def test_repair_lineage_probability_is_repair_fraction(self):
        # One block {R(1,a), R(1,b)}; q = ∃y R(1, y) with S absent from
        # the query: the lineage under the uniform-repair encoding must
        # weigh each repair equally.
        inst = Instance([fact("R", 1, 1), fact("R", 1, 2), fact("S", 1, 1)])
        q = ConjunctiveQuery((atom("R", x, y),))
        keys = key_spec(R=(0,))
        circuit, space = repair_lineage(q, inst, keys)
        from repro.circuits import probability

        assert probability(circuit, space) == pytest.approx(1.0)
        # Now a query satisfied by exactly one of the two repairs.
        q1 = ConjunctiveQuery((atom("R", x, 1),))
        circuit1, space1 = repair_lineage(q1, inst, keys)
        assert probability(circuit1, space1) == pytest.approx(0.5)


relation_strategy = st.sampled_from(["R", "S"])
term_strategy = st.sampled_from([x, y, z, 0, 1])
key_positions_strategy = st.sampled_from([(0,), (1,), (0, 1)])


@st.composite
def sjf_query_and_keys(draw):
    """A random self-join-free 2-atom CQ over R, S with random keys."""
    terms_r = tuple(draw(term_strategy) for _ in range(2))
    terms_s = tuple(draw(term_strategy) for _ in range(2))
    query = ConjunctiveQuery((atom("R", *terms_r), atom("S", *terms_s)))
    keys = KeySpec(
        {"R": draw(key_positions_strategy), "S": draw(key_positions_strategy)}
    )
    return query, keys


@st.composite
def small_instance(draw):
    rows = draw(
        st.lists(
            st.tuples(
                relation_strategy,
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
            ),
            max_size=8,
        )
    )
    return Instance([fact(r, a, b) for r, a, b in rows])


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(sjf_query_and_keys(), small_instance())
    def test_classifier_stable_and_engine_matches_oracle(self, qk, inst):
        query, keys = qk
        verdict = classify(query, keys).trichotomy
        reordered = ConjunctiveQuery(tuple(reversed(query.atoms)))
        assert classify(reordered, keys).trichotomy == verdict
        expected = certain_oracle(query, inst, keys)
        assert certain_answers(query, inst, keys) == expected
        assert certain_answers(reordered, inst, keys) == expected


class TestCLI:
    def test_cqa_subcommand(self, capsys):
        from repro.cli import main

        assert main(["cqa", "--keys", "5", "--rate", "0.5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "class: fo" in out
        assert "rewriting:" in out
        assert "oracle" in out and "DISAGREES" not in out

    def test_cqa_forced_method(self, capsys):
        from repro.cli import main

        assert main(
            ["cqa", "--keys", "4", "--query", "conp", "--method", "circuit"]
        ) == 0
        out = capsys.readouterr().out
        assert "certain (circuit):" in out

    def test_e20_listed(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "E20" in capsys.readouterr().out

    def test_engines_reports_cqa(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "certain-answer engine" in out
        assert "instance backend" in out
