"""Tests for the always-on query service (:mod:`repro.service`).

Three layers, matching the package:

- the **components** — result cache (LRU + TTL + counters), valuation
  hashing, latency histograms, the coalescer driven in-process with a stub
  evaluation hook, query parsing, the columnar instance payload round
  trip, and the batch-pass counters. No sockets, no numpy required, so
  these run everywhere;
- the **application** — :meth:`QueryService.dispatch` driven directly
  (the transport-independence the app layer promises): routing errors,
  plan registration, served marginals bit-identical to the library's
  ``probability_batch``, and result-cache behaviour across requests;
- the **service over a real socket** — a ``repro serve-http`` subprocess
  (or the live server named by ``REPRO_SERVICE_URL``, the CI job's mode):
  N concurrent clients coalesced into one matrix pass with bit-identical
  marginals, cache hits across requests, streaming Monte-Carlo
  bit-identical to :func:`repro.circuits.parallel.monte_carlo_hits`, the
  server-side compile path, and a hypothesis property pinning served
  marginals to the scalar ``compiled.probability`` oracle.

Socket tests carry the ``distributed`` marker so socket-free CI jobs can
deselect them.
"""

import asyncio
import base64
import json
import os
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuits import (
    batch_stats,
    compile_circuit,
    reset_batch_stats,
)
from repro.circuits import compiled as compiled_module
from repro.core import build_lineage, compile_query_plan
from repro.instances.columnar import ColumnarInstance
from repro.queries import atom, cq, variables
from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries, Variable
from repro.service import (
    Coalescer,
    LatencyHistogram,
    QueryService,
    ResultCache,
    ServiceClient,
    ServiceClientError,
    ServiceError,
    parse_query,
    spawn_service,
    valuation_hash,
)
from repro.util import ReproError, stable_rng
from repro.workloads import rst_chain_tid


def chain_setup(n: int = 40, probability: float = 0.25, seed: int = 7):
    """The R–S–T chain lineage: compiled circuit + its marginal row."""
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = rst_chain_tid(n, probability=probability, seed=seed)
    compiled = compile_circuit(build_lineage(tid.instance, query).circuit)
    space = tid.event_space()
    marginals = [space.probability(name) for name in compiled.variables()]
    return compiled, marginals


def direct_marginals(compiled, rows):
    """What the library computes for ``rows`` — the bit-identity oracle."""
    np = compiled_module.numpy_module()
    if np is not None:
        return compiled.probability_batch(np.asarray(rows, dtype=np.float64))
    return compiled.probability_batch(rows)


def unique_rows(count: int, width: int, rng) -> list[list[float]]:
    """Rows no earlier test can have cached (fresh random valuations)."""
    return [[rng.random() for _ in range(width)] for _ in range(count)]


# --------------------------------------------------------------------------- #
# valuation hashing


class TestValuationHash:
    def test_deterministic_and_order_sensitive(self):
        assert valuation_hash([0.25, 0.5]) == valuation_hash([0.25, 0.5])
        assert valuation_hash([0.25, 0.5]) != valuation_hash([0.5, 0.25])

    def test_numeric_type_does_not_matter(self):
        assert valuation_hash([1, 0]) == valuation_hash([1.0, 0.0])

    def test_width_matters(self):
        assert valuation_hash([0.5]) != valuation_hash([0.5, 0.5])


# --------------------------------------------------------------------------- #
# result cache


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(4)
        assert cache.get(("d", "h")) is None
        cache.put(("d", "h"), 0.25)
        assert cache.get(("d", "h")) == 0.25
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_respects_recency(self):
        cache = ResultCache(2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0  # refresh a; b is now oldest
        cache.put("c", 3.0)
        assert cache.get("b") is None
        assert cache.get("a") == 1.0
        assert cache.get("c") == 3.0
        assert cache.stats()["evictions"] == 1

    def test_ttl_expires_entries(self):
        cache = ResultCache(4, ttl=0.01)
        cache.put("k", 1.0)
        assert cache.get("k") == 1.0
        time.sleep(0.03)
        assert cache.get("k") is None
        assert cache.stats()["expirations"] == 1

    def test_zero_capacity_stores_nothing(self):
        cache = ResultCache(0)
        cache.put("k", 1.0)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ReproError):
            ResultCache(-1)
        with pytest.raises(ReproError):
            ResultCache(4, ttl=0.0)


# --------------------------------------------------------------------------- #
# latency histograms


class TestLatencyHistogram:
    def test_percentiles_are_bucket_bounds(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(0.0003)  # 0.3 ms -> the 0.5 ms bucket
        histogram.observe(0.010)  # 10 ms -> the 16 ms bucket
        stats = histogram.stats()
        assert stats["count"] == 100
        assert stats["p50_ms"] == 0.5
        assert stats["p99_ms"] == 0.5
        assert histogram.percentile(1.0) == 16.0

    def test_overflow_bucket_reports_observed_max(self):
        histogram = LatencyHistogram()
        histogram.observe(20.0)  # 20 000 ms, beyond the last bound
        assert histogram.percentile(0.99) == pytest.approx(20_000.0)
        assert histogram.stats()["max_ms"] == pytest.approx(20_000.0)

    def test_errors_counted_separately(self):
        histogram = LatencyHistogram()
        histogram.observe(0.001)
        histogram.observe(0.001, error=True)
        assert histogram.stats()["errors"] == 1
        assert histogram.stats()["count"] == 2


# --------------------------------------------------------------------------- #
# the coalescer, driven in-process with a stub pass


class _StubPass:
    """Evaluation hook standing in for the batch kernels: sum of the row."""

    def __init__(self, delay: float = 0.0):
        self.calls: list[list[list[float]]] = []
        self.delay = delay

    async def __call__(self, digest, rows):
        self.calls.append([list(row) for row in rows])
        if self.delay:
            await asyncio.sleep(self.delay)
        return [sum(row) for row in rows]


class TestCoalescer:
    def test_barrier_merges_concurrent_requests_into_one_pass(self):
        stub = _StubPass()
        coalescer = Coalescer(stub, window=0.5)

        async def drive():
            rows = [[[float(i)], [float(i) + 10.0]] for i in range(4)]
            results = await asyncio.gather(*[
                coalescer.submit(
                    "digest", [valuation_hash(r) for r in client_rows],
                    client_rows, peers=4,
                )
                for client_rows in rows
            ])
            return rows, results

        rows, results = asyncio.run(drive())
        assert len(stub.calls) == 1, "peers=4 must produce exactly one pass"
        for client_rows, result in zip(rows, results):
            for row in client_rows:
                assert result[valuation_hash(row)] == sum(row)
        stats = coalescer.stats()
        assert stats["passes"] == 1
        assert stats["requests"] == 4
        assert stats["coalesced_requests"] == 3
        assert stats["max_requests_per_pass"] == 4

    def test_identical_rows_deduplicated_across_requests(self):
        stub = _StubPass()
        coalescer = Coalescer(stub, window=0.5)
        row = [0.25, 0.75]

        async def drive():
            return await asyncio.gather(*[
                coalescer.submit("digest", [valuation_hash(row)], [row], peers=3)
                for _ in range(3)
            ])

        results = asyncio.run(drive())
        assert len(stub.calls) == 1
        assert len(stub.calls[0]) == 1, "the stampeded row evaluates once"
        assert all(r[valuation_hash(row)] == 1.0 for r in results)
        assert coalescer.counters["rows_evaluated"] == 1
        assert coalescer.counters["rows_in"] == 3

    def test_disabled_coalescer_runs_one_pass_per_request(self):
        stub = _StubPass()
        coalescer = Coalescer(stub, window=0.5, enabled=False)

        async def drive():
            return await asyncio.gather(*[
                coalescer.submit(
                    "digest", [valuation_hash([float(i)])], [[float(i)]]
                )
                for i in range(3)
            ])

        asyncio.run(drive())
        assert len(stub.calls) == 3
        assert coalescer.stats()["passes"] == 3
        assert coalescer.stats()["coalesced_requests"] == 0

    def test_window_flush_without_barrier(self):
        stub = _StubPass()
        coalescer = Coalescer(stub, window=0.001)

        async def drive():
            return await coalescer.submit(
                "digest", [valuation_hash([2.0])], [[2.0]]
            )

        result = asyncio.run(drive())
        assert result[valuation_hash([2.0])] == 2.0
        assert len(stub.calls) == 1

    def test_failed_pass_fans_the_error_to_every_waiter(self):
        async def failing(digest, rows):
            raise ReproError("kernel exploded")

        coalescer = Coalescer(failing, window=0.5)

        async def drive():
            return await asyncio.gather(*[
                coalescer.submit(
                    "digest", [valuation_hash([float(i)])], [[float(i)]],
                    peers=2,
                )
                for i in range(2)
            ], return_exceptions=True)

        results = asyncio.run(drive())
        assert len(results) == 2
        assert all(isinstance(r, ReproError) for r in results)

    def test_next_request_after_flush_opens_a_fresh_bucket(self):
        stub = _StubPass()
        coalescer = Coalescer(stub, window=0.0)

        async def drive():
            first = await coalescer.submit(
                "digest", [valuation_hash([1.0])], [[1.0]]
            )
            second = await coalescer.submit(
                "digest", [valuation_hash([2.0])], [[2.0]]
            )
            return first, second

        first, second = asyncio.run(drive())
        assert first[valuation_hash([1.0])] == 1.0
        assert second[valuation_hash([2.0])] == 2.0
        assert len(stub.calls) == 2


# --------------------------------------------------------------------------- #
# query parsing


class TestParseQuery:
    def test_atom_list_and_dict_forms_agree(self):
        as_lists = parse_query(
            {"atoms": [["R", ["?x"]], ["S", ["?x", "?y"]]]}
        )
        as_dicts = parse_query({"atoms": [
            {"relation": "R", "terms": ["?x"]},
            {"relation": "S", "terms": ["?x", "?y"]},
        ]})
        assert isinstance(as_lists, ConjunctiveQuery)
        assert as_lists == as_dicts

    def test_question_mark_means_variable_everything_else_constant(self):
        query = parse_query({"atoms": [["R", ["?x", "alice", 3]]]})
        terms = query.atoms[0].terms
        assert terms[0] == Variable("x")
        assert terms[1] == "alice"
        assert terms[2] == 3

    def test_disjuncts_build_a_ucq(self):
        query = parse_query({"disjuncts": [
            {"atoms": [["R", ["?x"]]]},
            {"atoms": [["T", ["?y"]]]},
        ]})
        assert isinstance(query, UnionOfConjunctiveQueries)
        assert len(query.disjuncts) == 2

    @pytest.mark.parametrize("spec", [
        "not an object",
        {},
        {"atoms": []},
        {"atoms": [["R"]]},
        {"atoms": [["", ["?x"]]]},
        {"atoms": [["R", ["?"]]]},
        {"atoms": [["R", [None]]]},
        {"disjuncts": []},
    ])
    def test_malformed_specs_rejected_with_400(self, spec):
        with pytest.raises(ServiceError) as excinfo:
            parse_query(spec)
        assert excinfo.value.status == 400


# --------------------------------------------------------------------------- #
# the serving compile entry point


class TestCompileQueryPlan:
    def test_unknown_method_rejected(self):
        tid = rst_chain_tid(5, probability=0.5, seed=0)
        x = variables("x")[0]
        with pytest.raises(ReproError, match="unknown compile method"):
            compile_query_plan(tid.instance, cq(atom("R", x)), method="magic")

    def test_lineage_plan_matches_the_tid_oracle(self):
        from repro.core import tid_probability

        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        tid = rst_chain_tid(12, probability=0.3, seed=3)
        space = tid.event_space()
        _lineage, plan = compile_query_plan(tid.instance, query)
        row = [space.probability(name) for name in plan.variables()]
        assert plan.probability(row) == pytest.approx(
            tid_probability(query, tid), abs=1e-12
        )

    def test_lineage_works_on_columnar_instances(self):
        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        tid = rst_chain_tid(10, probability=0.3, seed=4)
        space = tid.event_space()
        _lineage, from_tid = compile_query_plan(tid.instance, query)
        instance = ColumnarInstance.from_instance(tid.instance)
        _lineage, from_columnar = compile_query_plan(instance, query)
        row = [space.probability(name) for name in from_tid.variables()]
        columnar_row = [
            space.probability(name) for name in from_columnar.variables()
        ]
        assert from_columnar.probability(columnar_row) == pytest.approx(
            from_tid.probability(row), abs=1e-12
        )

    def test_provenance_method_builds_the_monotone_circuit(self):
        x = variables("x")[0]
        tid = rst_chain_tid(6, probability=0.5, seed=5)
        lineage, _plan = compile_query_plan(
            tid.instance, cq(atom("R", x)), method="provenance"
        )
        kinds = {
            lineage.circuit.gate(g).kind
            for g in lineage.circuit.reachable_from_output()
        }
        assert "not" not in kinds


# --------------------------------------------------------------------------- #
# columnar instance payloads (the /compile ingest format)


class TestColumnarPayload:
    def test_round_trip_preserves_facts_and_codes(self):
        tid = rst_chain_tid(15, probability=0.4, seed=5)
        original = ColumnarInstance.from_instance(tid.instance)
        payload = original.to_payload()
        restored, fids = ColumnarInstance.ingest_payload(payload)
        assert payload == restored.to_payload()
        for relation, columns in payload["relations"].items():
            n_rows = len(columns[0]) if columns else 0
            assert len(fids[relation]) == n_rows

    def test_payload_is_json_serializable(self):
        tid = rst_chain_tid(6, probability=0.5, seed=1)
        payload = ColumnarInstance.from_instance(tid.instance).to_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_wrong_version_rejected(self):
        tid = rst_chain_tid(4, probability=0.5, seed=2)
        payload = ColumnarInstance.from_instance(tid.instance).to_payload()
        payload["version"] = 99
        with pytest.raises(ReproError):
            ColumnarInstance.ingest_payload(payload)

    def test_out_of_range_code_rejected(self):
        tid = rst_chain_tid(4, probability=0.5, seed=2)
        payload = ColumnarInstance.from_instance(tid.instance).to_payload()
        name = next(iter(payload["relations"]))
        payload["relations"][name][0][0] = 2**30
        with pytest.raises(ReproError):
            ColumnarInstance.ingest_payload(payload)


# --------------------------------------------------------------------------- #
# batch-pass counters (the "passes executed" proof the service tests use)


class TestBatchStats:
    def test_probability_batch_counts_passes_and_rows(self):
        compiled, marginals = chain_setup(n=8, seed=11)
        reset_batch_stats()
        before = batch_stats()
        direct_marginals(compiled, [marginals, marginals])
        after = batch_stats()
        assert after["probability_passes"] == before["probability_passes"] + 1
        assert after["probability_rows"] == before["probability_rows"] + 2

    def test_evaluate_batch_counts_worlds(self):
        compiled, _marginals = chain_setup(n=6, seed=12)
        n = len(compiled.variables())
        reset_batch_stats()
        compiled.evaluate_batch([[0] * n, [1] * n, [0] * n])
        stats = batch_stats()
        assert stats["evaluate_passes"] == 1
        assert stats["evaluate_rows"] == 3

    def test_lifetime_totals_survive_reset(self):
        compiled, marginals = chain_setup(n=6, seed=13)
        direct_marginals(compiled, [marginals])
        lifetime_before = batch_stats(lifetime=True)["probability_passes"]
        reset_batch_stats()
        assert batch_stats()["probability_passes"] == 0
        direct_marginals(compiled, [marginals])
        lifetime_after = batch_stats(lifetime=True)["probability_passes"]
        assert lifetime_after == lifetime_before + 1


# --------------------------------------------------------------------------- #
# the application layer, driven without a socket


def dispatch(service, method, path, payload=None):
    body = b"" if payload is None else json.dumps(payload).encode()
    return asyncio.run(service.dispatch(method, path, body))


@pytest.fixture
def app():
    service = QueryService(coalesce_window=0.0)
    yield service
    service.close()


class TestQueryServiceDispatch:
    def test_unknown_path_404_and_wrong_method_405(self, app):
        status, payload = dispatch(app, "GET", "/nope")
        assert status == 404
        status, payload = dispatch(app, "GET", "/probability")
        assert status == 405
        assert "error" in payload

    def test_invalid_json_body_400(self, app):
        status, payload = asyncio.run(
            app.dispatch("POST", "/probability", b"{not json")
        )
        assert status == 400

    def test_unknown_digest_404_names_the_registration_paths(self, app):
        status, payload = dispatch(
            app, "POST", "/probability",
            {"digest": "0" * 32, "rows": [[0.5]]},
        )
        assert status == 404
        assert "/plans" in payload["error"]

    def test_register_then_serve_bit_identical(self, app):
        compiled, marginals = chain_setup(n=20, seed=21)
        encoded = base64.b64encode(compiled.wire_bytes()).decode("ascii")
        status, registered = dispatch(app, "POST", "/plans",
                                      {"plan_b64": encoded})
        assert status == 200
        assert registered["digest"] == compiled.plan_digest()
        assert registered["n_vars"] == len(compiled.variables())
        assert registered["already_registered"] is False
        rng = stable_rng(97)
        rows = [marginals] + unique_rows(3, len(marginals), rng)
        status, served = dispatch(
            app, "POST", "/probability",
            {"digest": registered["digest"], "rows": rows},
        )
        assert status == 200
        expected = [float(v) for v in direct_marginals(compiled, rows)]
        assert served["marginals"] == expected
        assert served["cache_misses"] == len(rows)

    def test_second_request_is_served_from_the_result_cache(self, app):
        compiled, marginals = chain_setup(n=10, seed=22)
        encoded = base64.b64encode(compiled.wire_bytes()).decode("ascii")
        _status, registered = dispatch(app, "POST", "/plans",
                                       {"plan_b64": encoded})
        body = {"digest": registered["digest"], "rows": [marginals]}
        _status, first = dispatch(app, "POST", "/probability", body)
        _status, second = dispatch(app, "POST", "/probability", body)
        assert second["cache_hits"] == 1
        assert second["cache_misses"] == 0
        assert second["marginals"] == first["marginals"]
        assert app.cache.stats()["hits"] >= 1

    def test_row_width_validated(self, app):
        compiled, marginals = chain_setup(n=10, seed=23)
        encoded = base64.b64encode(compiled.wire_bytes()).decode("ascii")
        _status, registered = dispatch(app, "POST", "/plans",
                                       {"plan_b64": encoded})
        status, payload = dispatch(
            app, "POST", "/probability",
            {"digest": registered["digest"], "rows": [marginals[:-1]]},
        )
        assert status == 400
        assert str(len(marginals)) in payload["error"]

    def test_corrupt_wire_plan_rejected(self, app):
        status, payload = dispatch(
            app, "POST", "/plans",
            {"plan_b64": base64.b64encode(b"garbage").decode("ascii")},
        )
        assert status == 400
        assert "rejected wire plan" in payload["error"]

    def test_stats_exposes_every_layer(self, app):
        status, stats = dispatch(app, "GET", "/stats")
        assert status == 200
        for key in ("plans", "result_cache", "coalescer", "streams",
                    "pool", "compile", "batch", "endpoints"):
            assert key in stats
        status, _ = dispatch(app, "GET", "/health")
        assert status == 200
        status, stats = dispatch(app, "GET", "/stats")
        assert stats["endpoints"]["/health"]["count"] >= 1


# --------------------------------------------------------------------------- #
# the service over a real socket


@pytest.fixture(scope="module")
def chain():
    return chain_setup()


@pytest.fixture(scope="module")
def live_service():
    """The CI job's live server if ``REPRO_SERVICE_URL`` names one, else a
    subprocess spawned (and torn down) for this module."""
    url = os.environ.get("REPRO_SERVICE_URL")
    if url:
        yield url
        return
    handle = spawn_service()
    try:
        yield handle.url
    finally:
        try:
            handle.client(timeout=5.0).shutdown()
        except Exception:
            pass
        handle.stop()


@pytest.fixture
def client(live_service):
    service_client = ServiceClient(live_service)
    yield service_client
    service_client.close()


@pytest.mark.distributed
class TestServiceOverSocket:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0

    def test_served_marginals_bit_identical_to_library(self, client, chain):
        compiled, marginals = chain
        digest = client.register_compiled(compiled)
        assert digest == compiled.plan_digest()
        rng = stable_rng(101)
        rows = [marginals] + unique_rows(5, len(marginals), rng)
        response = client.probability(digest, rows)
        expected = [float(v) for v in direct_marginals(compiled, rows)]
        assert response["marginals"] == expected

    def test_repeat_request_hits_the_result_cache(self, client, chain):
        compiled, marginals = chain
        digest = client.register_compiled(compiled)
        rows = unique_rows(4, len(marginals), stable_rng(202))
        first = client.probability(digest, rows)
        assert first["cache_misses"] == len(rows)
        second = client.probability(digest, rows)
        assert second["cache_hits"] == len(rows)
        assert second["cache_misses"] == 0
        assert second["marginals"] == first["marginals"]

    def test_concurrent_requests_coalesce_into_one_pass(
        self, live_service, chain
    ):
        """The tentpole claim over real sockets: N clients, one matrix pass,
        bit-identical marginals."""
        compiled, marginals = chain
        n_clients = 8
        registrar = ServiceClient(live_service)
        try:
            digest = registrar.register_compiled(compiled)
            passes_before = registrar.stats()["coalescer"]["passes"]
        finally:
            registrar.close()
        rng = stable_rng(303)
        per_client = [unique_rows(2, len(marginals), rng)
                      for _ in range(n_clients)]
        results: list = [None] * n_clients
        errors: list = []
        start = threading.Barrier(n_clients)

        def worker(index: int) -> None:
            service_client = ServiceClient(live_service)
            try:
                start.wait(timeout=10.0)
                results[index] = service_client.probability(
                    digest, per_client[index], peers=n_clients
                )
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
            finally:
                service_client.close()

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors, errors
        checker = ServiceClient(live_service)
        try:
            passes_after = checker.stats()["coalescer"]["passes"]
        finally:
            checker.close()
        assert passes_after - passes_before == 1, (
            "8 coalesced requests must execute exactly one matrix pass"
        )
        for rows, response in zip(per_client, results):
            expected = [float(v) for v in direct_marginals(compiled, rows)]
            assert response["marginals"] == expected

    def test_streaming_monte_carlo_matches_the_parallel_estimator(
        self, client, chain
    ):
        pytest.importorskip("numpy")
        from repro.circuits import parallel

        compiled, marginals = chain
        digest = client.register_compiled(compiled)
        samples = 2 * parallel.MC_SHARD + 500
        updates = list(client.sample(digest, marginals, samples=samples))
        assert len(updates) == 3
        assert [u["done"] for u in updates] == [False, False, True]
        assert updates[-1]["samples"] == samples
        local_hits = parallel.monte_carlo_hits(
            compiled, marginals, samples, seed=0
        )
        assert updates[-1]["hits"] == local_hits
        assert updates[-1]["estimate"] == local_hits / samples

    def test_unknown_digest_is_a_clean_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.probability("f" * 32, [[0.5]])
        assert excinfo.value.status == 404

    def test_row_width_rejected_with_400(self, client, chain):
        compiled, marginals = chain
        digest = client.register_compiled(compiled)
        with pytest.raises(ServiceClientError) as excinfo:
            client.probability(digest, [marginals[:-1]])
        assert excinfo.value.status == 400

    def test_server_side_compile_matches_local_compile(self, client):
        tid = rst_chain_tid(18, probability=0.35, seed=31)
        instance = ColumnarInstance.from_instance(tid.instance)
        payload = instance.to_payload()
        space = tid.event_space()
        _restored, fids = ColumnarInstance.ingest_payload(payload)
        probabilities = {
            relation: [space.probability(name)
                       for name in _restored.variable_names_for(row_fids)]
            for relation, row_fids in fids.items()
        }
        query_spec = {
            "atoms": [["R", ["?x"]], ["S", ["?x", "?y"]], ["T", ["?y"]]]
        }
        response = client.compile(payload, query_spec,
                                  probabilities=probabilities)
        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        # The local oracle compiles the *ingested* instance: ingest is
        # deterministic, so server and client agree on the exact plan.
        _lineage, plan = compile_query_plan(_restored, query)
        assert response["digest"] == plan.plan_digest()
        assert response["variables"] == list(plan.variables())
        served = client.probability(
            response["digest"], [response["default_row"]]
        )
        expected = direct_marginals(plan, [response["default_row"]])
        assert served["marginals"] == [float(v) for v in expected]
        from repro.core import tid_probability

        assert served["marginals"][0] == pytest.approx(
            tid_probability(query, tid), abs=1e-12
        )

    def test_compile_rejects_non_probability_methods(self, client):
        tid = rst_chain_tid(4, probability=0.5, seed=32)
        payload = ColumnarInstance.from_instance(tid.instance).to_payload()
        with pytest.raises(ServiceClientError) as excinfo:
            client.compile(payload, {"atoms": [["R", ["?x"]]]},
                           method="provenance")
        assert excinfo.value.status == 400
        assert "probability-valid" in str(excinfo.value)

    def test_stats_covers_every_layer_over_the_wire(self, client):
        stats = client.stats()
        for key in ("plans", "result_cache", "coalescer", "streams", "pool",
                    "compile", "batch", "plan_cache", "endpoints"):
            assert key in stats
        assert stats["endpoints"], "latency histograms must be populated"
        sample = next(iter(stats["endpoints"].values()))
        for key in ("count", "p50_ms", "p99_ms", "mean_ms", "errors"):
            assert key in sample


@pytest.mark.distributed
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_property_served_marginal_matches_scalar_oracle(
    live_service, chain, data
):
    """Property: any valuation row served over the wire equals the scalar
    ``compiled.probability`` oracle (through caching and coalescing)."""
    compiled, marginals = chain
    width = len(marginals)
    row = data.draw(st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=width, max_size=width,
    ))
    service_client = ServiceClient(live_service)
    try:
        digest = service_client.register_compiled(compiled)
        response = service_client.probability(digest, [row])
    finally:
        service_client.close()
    oracle = compiled.probability([float(v) for v in row])
    assert response["marginals"][0] == pytest.approx(oracle, abs=1e-12)
