"""E7 — provenance circuits agree with semiring provenance (absorptive case).

The paper: "in the case of monotone queries, our lineage circuits are
provenance circuits matching standard definitions of semiring provenance for
absorptive semirings". We verify agreement on every absorptive semiring in
the library, exhibit the documented divergence on the (non-absorptive)
counting semiring, and benchmark circuit evaluation against reference
homomorphism enumeration as instances grow.

Run the table:  python benchmarks/bench_provenance.py
Benchmarks:     pytest benchmarks/bench_provenance.py --benchmark-only
"""

import time

import pytest

from repro.instances import Instance, fact
from repro.queries import atom, cq, variables
from repro.semirings import (
    ABSORPTIVE_SEMIRINGS,
    CountingSemiring,
    PosBoolSemiring,
    SecuritySemiring,
    TropicalSemiring,
    circuit_provenance,
    reference_provenance,
)
from repro.semirings.base import CLEARANCES

X, Y = variables("x", "y")
QUERY = cq(atom("R", X), atom("S", X, Y), atom("T", Y))


def chain_instance(n: int) -> Instance:
    inst = Instance()
    for i in range(n):
        inst.add(fact("R", i))
        inst.add(fact("T", i))
        if i + 1 < n:
            inst.add(fact("S", i, i + 1))
    return inst


def annotation_for(semiring, inst: Instance):
    facts = inst.facts()
    if isinstance(semiring, PosBoolSemiring):
        return {f: semiring.variable(f.variable_name) for f in facts}
    if isinstance(semiring, TropicalSemiring):
        return {f: float(i % 7) for i, f in enumerate(facts)}
    if isinstance(semiring, SecuritySemiring):
        return {f: CLEARANCES[i % 4] for i, f in enumerate(facts)}
    if semiring.name == "boolean":
        return {f: True for f in facts}
    return {f: round(0.3 + 0.6 * ((i % 5) / 5), 2) for i, f in enumerate(facts)}


@pytest.mark.parametrize("semiring", ABSORPTIVE_SEMIRINGS, ids=lambda s: s.name)
def test_agreement_on_absorptive(benchmark, semiring):
    inst = chain_instance(8)
    annotation = annotation_for(semiring, inst)
    value = benchmark(circuit_provenance, QUERY, inst, semiring, annotation)
    assert value == reference_provenance(QUERY, inst, semiring, annotation)


def test_reference_enumeration_baseline(benchmark):
    inst = chain_instance(8)
    semiring = TropicalSemiring()
    annotation = annotation_for(semiring, inst)
    value = benchmark(reference_provenance, QUERY, inst, semiring, annotation)
    assert value == circuit_provenance(QUERY, inst, semiring, annotation)


def test_counting_divergence_is_one_sided(benchmark):
    inst = chain_instance(6)
    semiring = CountingSemiring()
    annotation = {f: 1 for f in inst.facts()}
    circuit_value = benchmark(circuit_provenance, QUERY, inst, semiring, annotation)
    assert circuit_value >= reference_provenance(QUERY, inst, semiring, annotation)


def main() -> None:
    print("E7 — semiring provenance through circuits")
    inst = chain_instance(6)
    print(f"instance: chain, {len(inst)} facts; query: {QUERY}")
    print(f"\n{'semiring':<12} {'circuit == reference':<22} {'absorptive':<10}")
    for semiring in ABSORPTIVE_SEMIRINGS:
        annotation = annotation_for(semiring, inst)
        agree = circuit_provenance(QUERY, inst, semiring, annotation) == (
            reference_provenance(QUERY, inst, semiring, annotation)
        )
        print(f"{semiring.name:<12} {str(agree):<22} {'yes':<10}")
    counting = CountingSemiring()
    annotation = {f: 1 for f in inst.facts()}
    circuit_value = circuit_provenance(QUERY, inst, counting, annotation)
    reference = reference_provenance(QUERY, inst, counting, annotation)
    print(f"{'counting':<12} {str(circuit_value == reference):<22} {'no':<10}"
          f"  (circuit {circuit_value} >= homs {reference}: runs may use spare facts)")

    print(f"\nscaling (tropical semiring):")
    print(f"{'n facts':>8} {'circuit (s)':>12} {'reference (s)':>14}")
    for n in [10, 20, 40]:
        big = chain_instance(n)
        annotation = annotation_for(TropicalSemiring(), big)
        start = time.perf_counter()
        circuit_provenance(QUERY, big, TropicalSemiring(), annotation)
        circuit_time = time.perf_counter() - start
        start = time.perf_counter()
        reference_provenance(QUERY, big, TropicalSemiring(), annotation)
        reference_time = time.perf_counter() - start
        print(f"{len(big):>8} {circuit_time:>12.3f} {reference_time:>14.3f}")


if __name__ == "__main__":
    main()
