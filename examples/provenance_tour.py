"""Semiring provenance through lineage circuits.

The paper's provenance connection, executable: the monotone lineage circuit
of a conjunctive query, evaluated in different absorptive semirings, yields
the query's Green–Karvounarakis–Tannen provenance — minimal witnesses
(PosBool), cheapest derivation (tropical), most probable derivation
(Viterbi), and required clearance (security).

Run:  python examples/provenance_tour.py
"""

from repro.instances import Instance, fact
from repro.queries import atom, cq, variables
from repro.semirings import (
    PUBLIC,
    SECRET,
    TOP_SECRET,
    PosBoolSemiring,
    SecuritySemiring,
    TropicalSemiring,
    ViterbiSemiring,
    circuit_provenance,
    reference_provenance,
)

X, Y = variables("x", "y")
QUERY = cq(atom("R", X), atom("S", X, Y), atom("T", Y))


def build_instance() -> Instance:
    inst = Instance()
    inst.add(fact("R", "a"))
    inst.add(fact("S", "a", "b"))
    inst.add(fact("T", "b"))
    inst.add(fact("R", "c"))
    inst.add(fact("S", "c", "b"))
    return inst


def main() -> None:
    inst = build_instance()
    print("instance:", ", ".join(str(f) for f in inst.facts()))
    print("query:   ", QUERY)
    print()

    posbool = PosBoolSemiring()
    tokens = {f: posbool.variable(f.variable_name) for f in inst.facts()}
    witnesses = circuit_provenance(QUERY, inst, posbool, tokens)
    print("PosBool provenance (minimal witnesses):")
    for monomial in sorted(witnesses, key=sorted):
        print("  {" + ", ".join(sorted(monomial)) + "}")

    tropical = TropicalSemiring()
    costs = {f: float(i + 1) for i, f in enumerate(inst.facts())}
    cheapest = circuit_provenance(QUERY, inst, tropical, costs)
    print(f"\nTropical provenance (cheapest derivation cost): {cheapest}")
    print("  fact costs:", {str(f): c for f, c in costs.items()})

    viterbi = ViterbiSemiring()
    confidences = {f: 0.9 if "a" in map(str, f.args) else 0.5 for f in inst.facts()}
    best = circuit_provenance(QUERY, inst, viterbi, confidences)
    print(f"\nViterbi provenance (most probable derivation): {best:.3f}")

    security = SecuritySemiring()
    clearances = {
        fact("R", "a"): PUBLIC,
        fact("S", "a", "b"): SECRET,
        fact("T", "b"): PUBLIC,
        fact("R", "c"): TOP_SECRET,
        fact("S", "c", "b"): TOP_SECRET,
    }
    needed = circuit_provenance(QUERY, inst, security, clearances)
    print(f"\nSecurity provenance (clearance needed to see the answer): {needed}")

    # Cross-check every semiring against the textbook definition.
    for semiring, annotation in (
        (posbool, tokens),
        (tropical, costs),
        (viterbi, confidences),
        (security, clearances),
    ):
        assert circuit_provenance(QUERY, inst, semiring, annotation) == (
            reference_provenance(QUERY, inst, semiring, annotation)
        )
    print("\nAll circuit provenances match the reference GKT definitions.")


if __name__ == "__main__":
    main()
