"""Tests for the persistent on-disk plan cache (``plancache.py``).

Four layers:

- **keying** — the arena fingerprint is deterministic across processes
  (two identically built arenas agree) and sensitive to every input that
  changes the lowering (gates, output, variable names);
- **compile-path integration** — a cache hit rebuilds the exact lowering
  without running any lowering pass, misses fall back and store, the
  ``min_gates`` threshold keeps tiny circuits out, and everything stays
  bit-identical to a fresh compile;
- **robustness** — corrupt entries (truncated, bit-flipped, wrong kind)
  are deleted and treated as misses, never trusted; filesystem errors
  degrade to a disabled cache; concurrent writers can never expose a torn
  entry (atomic temp-file + rename); LRU eviction enforces the size bound;
- **distributed handshake** — a freshly bounced worker answers
  ``PLAN_HAVE`` from the shared cache directory so the plan never crosses
  the wire again (socket test, ``distributed`` marker).
"""

import os
import threading

import pytest

from repro.circuits import Circuit, compile_circuit, plancache
from repro.circuits import compiled as compiled_module
from repro.circuits import distributed, parallel
from repro.util import stable_rng


def build_circuit(seed: int = 0, n_vars: int = 12, steps: int = 300) -> Circuit:
    """A deterministic medium circuit: same seed → byte-identical arena."""
    rng = stable_rng(seed)
    c = Circuit()
    gates = [c.variable(f"v{i}") for i in range(n_vars)]
    for _ in range(steps):
        op = rng.choice(["and", "or", "not"])
        if op == "not":
            gates.append(c.negation(rng.choice(gates)))
        else:
            picked = rng.sample(gates, rng.randint(2, min(4, len(gates))))
            gates.append(c.and_gate(picked) if op == "and" else c.or_gate(picked))
    c.set_output(c.or_gate([gates[-1], gates[-2]]))
    return c


@pytest.fixture
def cache_dir(tmp_path):
    """An enabled cache directory with no gate-count threshold."""
    directory = tmp_path / "plan-cache"
    with plancache.plan_cache_dir_set(str(directory)):
        plancache.set_min_gates(0)
        plancache.reset_stats()
        compiled_module.reset_compile_stats()
        yield directory


def assert_same_lowering(left, right):
    assert left.kinds == right.kinds
    assert left.offsets == right.offsets
    assert left.indices == right.indices
    assert left.var_slot == right.var_slot
    assert left.var_names == right.var_names
    assert left.output == right.output
    assert left.size == right.size
    assert left.gate_ids == right.gate_ids
    assert left.levels_list() == right.levels_list()


# --------------------------------------------------------------------------- #
# keying

class TestFingerprint:
    def test_identical_arenas_agree_across_objects(self):
        assert plancache.arena_fingerprint(build_circuit(3)) == (
            plancache.arena_fingerprint(build_circuit(3))
        )

    def test_different_gates_or_output_change_the_key(self):
        base = build_circuit(3)
        other_gates = build_circuit(4)
        assert plancache.arena_fingerprint(base) != (
            plancache.arena_fingerprint(other_gates)
        )
        moved = build_circuit(3)
        moved.set_output(moved.output - 1)
        assert plancache.arena_fingerprint(base) != (
            plancache.arena_fingerprint(moved)
        )

    def test_variable_names_are_part_of_the_key(self):
        a, b = Circuit(), Circuit()
        for c, name in ((a, "x"), (b, "y")):
            v = c.variable(name)
            c.set_output(c.and_gate([v, c.variable("shared")]))
        assert plancache.arena_fingerprint(a) != plancache.arena_fingerprint(b)

    def test_no_output_means_no_key(self):
        c = Circuit()
        c.variable("x")
        assert plancache.arena_fingerprint(c) is None


# --------------------------------------------------------------------------- #
# compile-path integration

class TestCompileIntegration:
    def test_disabled_without_a_directory_no_files_no_lookups(self, tmp_path):
        # Clear any ambient REPRO_PLAN_CACHE_DIR (the CI plan-cache job
        # runs the whole suite with one set): no directory means no IO.
        plancache.set_plan_cache_dir(None)
        assert not plancache.enabled()
        plancache.reset_stats()
        compile_circuit(build_circuit(11))
        assert plancache.stats()["stores"] == 0
        assert plancache.stats()["misses"] == 0

    def test_miss_stores_then_hit_skips_lowering(self, cache_dir):
        first = compile_circuit(build_circuit(7))
        assert plancache.stats()["stores"] >= 1
        assert [n for n, _, _ in plancache.entries()
                if n.endswith(plancache.CIRC_SUFFIX)]
        lowerings = compiled_module.compile_stats()["lowerings"]
        second = compile_circuit(build_circuit(7))  # fresh identical arena
        after = compiled_module.compile_stats()
        assert after["lowerings"] == lowerings  # no lowering pass ran
        assert after["disk_cache_hits"] == 1
        assert second is not first
        assert_same_lowering(second, first)

    def test_cache_loaded_plan_evaluates_identically(self, cache_dir):
        first = compile_circuit(build_circuit(8))
        second = compile_circuit(build_circuit(8))
        rng = stable_rng(5)
        worlds = [
            [rng.random() < 0.5 for _ in first.var_names] for _ in range(64)
        ]
        assert second.evaluate_batch(worlds) == first.evaluate_batch(worlds)
        assert second.plan_digest() == first.plan_digest()

    def test_min_gates_threshold_bypasses_tiny_circuits(self, cache_dir):
        plancache.set_min_gates(10_000)
        compile_circuit(build_circuit(9))
        assert plancache.stats()["stores"] == 0
        assert plancache.entries() == []

    def test_wire_bytes_written_through_and_verified(self, cache_dir):
        compiled = compile_circuit(build_circuit(10))
        blob = compiled.wire_bytes()
        digest = compiled.plan_digest()
        assert (cache_dir / (digest + plancache.PLAN_SUFFIX)).exists()
        assert plancache.load_plan_blob(digest) == blob

    def test_stale_entry_for_same_fingerprint_never_served_wrong(self, cache_dir):
        """A hit is keyed by content: an edited arena takes a different key."""
        compile_circuit(build_circuit(12))
        edited = build_circuit(12)
        extra = edited.and_gate([edited.output, edited.variable("fresh")])
        edited.set_output(extra)
        lowered = compile_circuit(edited)
        assert compiled_module.compile_stats()["disk_cache_hits"] == 0
        assert "fresh" in lowered.var_names


# --------------------------------------------------------------------------- #
# robustness

class TestRobustness:
    def test_truncated_circ_entry_dropped_and_recompiled(self, cache_dir):
        first = compile_circuit(build_circuit(21))
        (name,) = [n for n, _, _ in plancache.entries()
                   if n.endswith(plancache.CIRC_SUFFIX)]
        path = cache_dir / name
        path.write_bytes(path.read_bytes()[:40])
        second = compile_circuit(build_circuit(21))
        assert plancache.stats()["corrupt"] >= 1
        assert not path.exists() or path.read_bytes() != b""
        assert_same_lowering(second, first)

    def test_garbage_circ_entry_dropped(self, cache_dir):
        compile_circuit(build_circuit(22))
        (name,) = [n for n, _, _ in plancache.entries()
                   if n.endswith(plancache.CIRC_SUFFIX)]
        (cache_dir / name).write_bytes(b"not a plan at all")
        compiled = compile_circuit(build_circuit(22))
        assert plancache.stats()["corrupt"] >= 1
        assert compiled.evaluate(
            {name: True for name in compiled.var_names}
        ) in (True, False)

    def test_bitflipped_plan_blob_misses_and_deletes(self, cache_dir):
        compiled = compile_circuit(build_circuit(23))
        blob = compiled.wire_bytes()
        digest = compiled.plan_digest()
        path = cache_dir / (digest + plancache.PLAN_SUFFIX)
        damaged = bytearray(blob)
        damaged[len(damaged) // 2] ^= 0xFF
        path.write_bytes(bytes(damaged))
        assert plancache.load_plan_blob(digest) is None
        assert not path.exists()
        assert plancache.stats()["corrupt"] >= 1

    def test_unwritable_directory_degrades_to_disabled(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        with plancache.plan_cache_dir_set(str(blocker / "cache")):
            plancache.set_min_gates(0)
            plancache.reset_stats()
            compiled = compile_circuit(build_circuit(24))
        assert compiled.size > 0
        assert plancache.stats()["io_errors"] >= 1
        assert plancache.stats()["stores"] == 0

    def test_eviction_keeps_directory_under_the_limit(self, cache_dir):
        sizes = []
        for seed in range(40, 46):
            compile_circuit(build_circuit(seed))
            sizes.append(sum(size for _, size, _ in plancache.entries()))
        plancache.set_plan_cache_limit_bytes(sizes[2])
        compile_circuit(build_circuit(46))
        total = sum(size for _, size, _ in plancache.entries())
        assert total <= sizes[2]
        assert plancache.stats()["evictions"] >= 1

    def test_concurrent_writers_never_expose_a_torn_entry(self, cache_dir):
        compiled = compile_circuit(build_circuit(30))
        blob = compiled.wire_bytes()
        digest = compiled.plan_digest()
        errors = []

        def hammer():
            try:
                for _ in range(25):
                    plancache.store_plan_blob(digest, blob)
                    loaded = plancache.load_plan_blob(digest)
                    if loaded is not None and loaded != blob:
                        errors.append("torn read")
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(repr(exc))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert plancache.load_plan_blob(digest) == blob
        leftovers = [
            name for name in os.listdir(cache_dir) if name.startswith(".tmp-")
        ]
        assert leftovers == []


# --------------------------------------------------------------------------- #
# distributed handshake

@pytest.mark.distributed
class TestDistributedHandshake:
    def test_bounced_worker_answers_plan_have_from_disk(
        self, tmp_path, monkeypatch, worker_factory, unused_tcp_port
    ):
        """A brand-new worker process with an empty in-memory cache finds
        the plan on disk during ``PLAN_OFFER`` and the coordinator never
        re-publishes it — the counter that *does* tick without the cache
        (see ``test_bounced_worker_rejoins_the_pool``)."""
        pytest.importorskip("numpy")
        cache = tmp_path / "shared-cache"
        monkeypatch.setenv("REPRO_PLAN_CACHE_DIR", str(cache))
        monkeypatch.setenv("REPRO_PLAN_CACHE_MIN_GATES", "0")
        with plancache.plan_cache_dir_set(str(cache)):
            plancache.set_min_gates(0)
            compiled = compile_circuit(build_circuit(60))
            marginals = [0.3] * len(compiled.variables())
            serial = parallel.monte_carlo_hits(
                compiled, marginals, 500, seed=9, workers=0
            )
            first_worker = worker_factory(port=unused_tcp_port)
            assert distributed.monte_carlo_hits(
                compiled, marginals, 500, seed=9,
                hosts=(first_worker.address,),
            ) == serial
            first_worker.stop()  # bounce: same port, brand-new process
            second_worker = worker_factory(port=unused_tcp_port)
            before = distributed.pool_stats()
            assert distributed.monte_carlo_hits(
                compiled, marginals, 500, seed=9,
                hosts=(second_worker.address,),
            ) == serial
            after = distributed.pool_stats()
            assert after["reconnects"] - before["reconnects"] == 1
            # the fresh process answered PLAN_HAVE from the shared disk
            # cache: zero plans crossed the wire
            assert after["plans_published"] == before["plans_published"]
            assert after["plan_cache_hits"] - before["plan_cache_hits"] == 1
