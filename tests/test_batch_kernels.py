"""Tests for the level-scheduled numpy batch kernels and their fallbacks.

Every test that exercises the numpy-free fallback masks the module's numpy
handle (``repro.circuits.compiled._np``) with monkeypatch rather than
uninstalling anything — the capability check reads that handle on every
call, so this is exactly the path a numpy-less install takes.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, compile_circuit, numpy_available
from repro.circuits import compiled as compiled_module
from repro.events import EventSpace
from repro.util import ReproError, stable_rng

np = pytest.importorskip("numpy")


def random_circuit(seed: int, n_vars: int = 6, steps: int = 16) -> Circuit:
    rng = stable_rng(seed)
    c = Circuit()
    names = [f"v{i}" for i in range(n_vars)]
    gates = [c.variable(n) for n in names] + [c.true(), c.false()]
    for _ in range(rng.randint(2, steps)):
        op = rng.choice(["and", "or", "not"])
        if op == "not":
            gates.append(c.negation(rng.choice(gates)))
        else:
            picked = rng.sample(gates, rng.randint(2, min(4, len(gates))))
            gates.append(c.and_gate(picked) if op == "and" else c.or_gate(picked))
    c.set_output(gates[-1])
    return c


def all_worlds(n_vars: int) -> list[list[int]]:
    return [[(mask >> i) & 1 for i in range(n_vars)] for mask in range(1 << n_vars)]


@pytest.fixture
def no_numpy(monkeypatch):
    """The numpy-free install: every batch entry point must still work."""
    monkeypatch.setattr(compiled_module, "_np", None)


@pytest.fixture
def no_codegen(monkeypatch):
    """Force the array interpreter by putting every circuit over the limit."""
    monkeypatch.setattr(compiled_module, "CODEGEN_GATE_LIMIT", 0)


class TestCapability:
    def test_numpy_active_in_this_environment(self):
        assert numpy_available()
        assert compiled_module.numpy_module() is np

    def test_capability_check_is_dynamic(self, no_numpy):
        assert not numpy_available()
        assert compiled_module.numpy_module() is None


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_batch_agrees_with_scalar_kernel_and_interpreter(seed):
    """Property: numpy batch == generated kernel == array interpreter."""
    c = random_circuit(seed)
    compiled = compile_circuit(c)
    worlds = all_worlds(len(compiled.variables()))
    batch = compiled.evaluate_batch(worlds)
    kernel = [compiled.evaluate(w) for w in worlds]
    assert batch == kernel
    # The generic interpreter (the above-CODEGEN_GATE_LIMIT path).
    buffer = bytearray(compiled.size)
    interpreted = [bool(compiled._evaluate_into(buffer, w)) for w in worlds]
    assert batch == interpreted


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_probability_batch_agrees_with_scalar_passes(seed):
    """Property: probability_batch == scalar float kernel to 1e-12 per row."""
    c = random_circuit(seed)
    compiled = compile_circuit(c)
    spaces = [
        EventSpace({f"v{i}": 0.05 + 0.9 * ((i + k) % 7) / 7 for i in range(6)})
        for k in range(4)
    ]
    batch = compiled.probability_batch(spaces)
    for space, value in zip(spaces, batch):
        assert math.isclose(value, compiled.probability(space), abs_tol=1e-12)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_enumeration_batch_matches_scalar_oracle(seed):
    """Property: the batched enumeration oracle == the scalar mask loop."""
    c = random_circuit(seed)
    compiled = compile_circuit(c)
    space = EventSpace({f"v{i}": 0.1 + 0.13 * i for i in range(6)})
    batched = compiled.probability_enumerate(space)
    saved = compiled_module._np
    compiled_module._np = None
    try:
        scalar = compiled.probability_enumerate(space)
    finally:
        compiled_module._np = saved
    assert math.isclose(batched, scalar, abs_tol=1e-12)


class TestAboveCodegenLimit:
    def test_batch_and_fallback_agree_without_generated_kernels(self, no_codegen):
        compiled = compile_circuit(random_circuit(99))
        assert compiled._kernel("bool") is None  # really interpreting
        worlds = all_worlds(len(compiled.variables()))
        with_numpy = compiled.evaluate_batch(worlds)
        saved = compiled_module._np
        compiled_module._np = None
        try:
            interpreted = compiled.evaluate_batch(worlds)
        finally:
            compiled_module._np = saved
        assert with_numpy == interpreted == [compiled.evaluate(w) for w in worlds]

    def test_probability_paths_without_generated_kernels(self, no_codegen):
        compiled = compile_circuit(random_circuit(7))
        space = EventSpace({f"v{i}": 0.3 for i in range(6)})
        assert math.isclose(
            compiled.probability_batch([space])[0],
            compiled.probability(space),
            abs_tol=1e-12,
        )


class TestBatchInputs:
    def test_empty_batches(self):
        compiled = compile_circuit(random_circuit(3))
        assert compiled.evaluate_batch([]) == []
        assert compiled.probability_batch([]) == []

    def test_empty_batches_without_numpy(self, no_numpy):
        compiled = compile_circuit(random_circuit(3))
        assert compiled.evaluate_batch([]) == []
        assert compiled.probability_batch([]) == []

    def test_mixed_truth_value_dtypes(self):
        compiled = compile_circuit(random_circuit(17))
        n = len(compiled.variables())
        worlds = all_worlds(n)
        reference = compiled.evaluate_batch(worlds)  # 0/1 int rows
        as_bool = [[bool(v) for v in row] for row in worlds]
        as_np_bool = np.array(worlds, dtype=np.bool_)
        as_np_int = np.array(worlds, dtype=np.int64)
        as_np_scalar_rows = [list(row) for row in np.array(worlds, dtype=np.bool_)]
        assert compiled.evaluate_batch(as_bool) == reference
        assert compiled.evaluate_batch(as_np_bool) == reference
        assert compiled.evaluate_batch(as_np_int) == reference
        assert compiled.evaluate_batch(as_np_scalar_rows) == reference

    def test_mapping_rows_and_results_are_python_bools(self):
        compiled = compile_circuit(random_circuit(23))
        names = compiled.variables()
        rows = [{n: (i + j) % 2 == 0 for j, n in enumerate(names)} for i in range(4)]
        batch = compiled.evaluate_batch(rows)
        assert all(isinstance(b, bool) for b in batch)
        assert batch == [compiled.evaluate(r) for r in rows]

    def test_world_matrix_column_count_checked(self):
        compiled = compile_circuit(random_circuit(5))
        n = len(compiled.variables())
        with pytest.raises(ReproError, match="columns"):
            compiled.evaluate_batch(np.zeros((3, n + 1), dtype=bool))

    def test_generator_reusing_one_row_buffer(self):
        # The Monte-Carlo fallback yields one mutated list per world; the
        # normalization must copy rows as they are drawn.
        compiled = compile_circuit(random_circuit(29))
        n = len(compiled.variables())
        worlds = all_worlds(n)

        def reuse():
            row = [0] * n
            for world in worlds:
                row[:] = world
                yield row

        assert compiled.evaluate_batch(reuse()) == compiled.evaluate_batch(worlds)

    def test_batches_larger_than_chunk_budget(self, monkeypatch):
        # Shrink the byte budget so a small batch spans several chunks.
        monkeypatch.setattr(compiled_module, "BATCH_BYTE_BUDGET", 1)
        compiled = compile_circuit(random_circuit(31))
        worlds = all_worlds(len(compiled.variables()))
        assert compiled._batch_chunk(as_float=False) < len(worlds)
        assert compiled.evaluate_batch(worlds) == [
            compiled.evaluate(w) for w in worlds
        ]


class TestScalarFallback:
    # Per-path agreement of the scalar kernels with the oracle lives in the
    # cross-engine conformance matrix (tests/test_conformance.py); this
    # class keeps only the estimator-level fallbacks.

    def test_monte_carlo_without_numpy(self, no_numpy):
        from repro.baselines import monte_carlo_probability, tid_probability_enumerate
        from repro.instances import TIDInstance, fact
        from repro.queries import atom, cq, variables

        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        tid = TIDInstance(
            {fact("R", 1): 0.6, fact("S", 1, 2): 0.5, fact("T", 2): 0.8}
        )
        exact = tid_probability_enumerate(query, tid)
        estimate = monte_carlo_probability(query, tid, samples=4000, seed=0)
        assert abs(estimate - exact) < 0.05

    def test_karp_luby_without_numpy(self, no_numpy):
        from repro.baselines import karp_luby_probability
        from repro.instances import TIDInstance, fact
        from repro.queries import atom, cq, variables

        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        tid = TIDInstance({fact("R", 1): 0.3, fact("S", 1, 2): 0.5, fact("T", 2): 0.2})
        estimate = karp_luby_probability(query, tid, samples=500, seed=2)
        assert math.isclose(estimate, 0.3 * 0.5 * 0.2, rel_tol=1e-9)


class TestSlotMarginals:
    def test_event_space_detected_explicitly(self):
        compiled = compile_circuit(random_circuit(2))
        space = EventSpace({f"v{i}": 0.5 for i in range(6)})
        assert compiled.slot_marginals(space) == [0.5] * len(compiled.variables())

    def test_compiled_circuit_rejected_with_clear_error(self):
        compiled = compile_circuit(random_circuit(2))
        with pytest.raises(ReproError, match="unsupported marginals type"):
            compiled.slot_marginals(compiled)

    def test_duck_typed_probability_object_rejected(self):
        class NotASpace:
            def probability(self, name):  # pragma: no cover - must not be called
                raise AssertionError("duck-typed probability must not be used")

        compiled = compile_circuit(random_circuit(2))
        with pytest.raises(ReproError, match="unsupported marginals type"):
            compiled.slot_marginals(NotASpace())


class TestHasNegation:
    def test_precomputed_value_matches_kinds(self):
        c = Circuit()
        c.set_output(c.and_gate([c.variable("a"), c.negation(c.variable("b"))]))
        assert compile_circuit(c).has_negation
        monotone = Circuit()
        monotone.set_output(
            monotone.or_gate([monotone.variable("a"), monotone.variable("b")])
        )
        assert not compile_circuit(monotone).has_negation


class TestSingleRowReductionOrder:
    def test_single_row_bit_identical_to_wider_batches(self):
        """Regression: a 1-row float pass shares the wide-batch reduction
        order bit-for-bit. numpy's reduce kernels pick a different inner
        loop for single-column value buffers, drifting a few ulps on deep
        plans; the plan now widens single rows to a broadcast pair, so the
        same row must produce the identical double at every batch width."""
        for seed in (101, 202, 303, 404):
            compiled = compile_circuit(random_circuit(seed, n_vars=8, steps=48))
            n = len(compiled.variables())
            rows = np.linspace(0.03, 0.97, 4 * n).reshape(4, n)
            wide = compiled.probability_batch(rows)
            for i in range(4):
                single = compiled.probability_batch(rows[i : i + 1])
                assert single[0] == wide[i]  # bitwise, not isclose

    def test_single_row_plan_pass_shape_and_dtype(self):
        compiled = compile_circuit(random_circuit(11))
        n = len(compiled.variables())
        row = np.linspace(0.1, 0.9, n).reshape(1, n)
        out = compiled.batch_plan().run(row, as_float=True)
        assert out.shape == (1,)
        assert out.dtype == np.float64
        assert out[0] == compiled.probability_batch(np.vstack([row, row]))[0]

    def test_single_row_bool_pass_unchanged(self):
        """The widening applies to float passes only; bool single rows stay
        on the direct path and agree with the scalar kernel."""
        compiled = compile_circuit(random_circuit(12))
        n = len(compiled.variables())
        world = np.array([[True, False] * ((n + 1) // 2)][0][:n]).reshape(1, n)
        assert compiled.evaluate_batch(world) == [compiled.evaluate(world[0])]


class TestBatchPlan:
    def test_plan_cached_and_csr_mirrored_as_int32(self):
        compiled = compile_circuit(random_circuit(13))
        plan = compiled.batch_plan()
        assert plan is compiled.batch_plan()
        for name in ("kinds", "offsets", "indices", "var_slot"):
            mirror = getattr(plan, name)
            assert mirror.dtype == np.int32
            assert mirror.tolist() == list(getattr(compiled, name))

    def test_levels_topologically_consistent(self):
        compiled = compile_circuit(random_circuit(19))
        plan = compiled.batch_plan()
        produced = set(range(plan.const_rows[1]))  # variables and constants
        for level in plan.levels:
            reads = set()
            writes = set()
            for op in level:
                reads.update(int(r) for r in op.gather.ravel())
                writes.update(range(*op.rows))
            assert reads <= produced  # inputs come from earlier levels only
            produced |= writes
        assert plan.output_row in produced

    def test_plan_is_none_without_numpy(self, no_numpy):
        compiled = compile_circuit(random_circuit(13))
        assert compiled.batch_plan() is None
