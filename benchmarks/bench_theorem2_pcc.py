"""E4 — Theorem 2: bounded-treewidth pcc-instances.

The paper's claim: MSO evaluation is PTIME/linear on pcc-instances whose
instance AND annotation circuit admit a joint bounded-width decomposition —
and the bound must be *joint*: bounded instance width plus bounded circuit
width in isolation is not enough. We measure:

- chain-correlated annotations (each fact guarded by its neighbourhood's
  source events): joint width stays small; evaluation scales;
- grid-correlated annotations (fact (i,j) guarded by row_i ∧ col_j): joint
  width grows with the side; message passing hits its width wall, while the
  instance width alone stays 1 — exhibiting the paper's caveat.

Run the table:  python benchmarks/bench_theorem2_pcc.py
Benchmarks:     pytest benchmarks/bench_theorem2_pcc.py --benchmark-only
"""

import time

import pytest

from repro.core import pcc_probability
from repro.events import var
from repro.instances import PCInstance, fact, pcc_from_pc
from repro.queries import atom, cq, variables
from repro.util import ReproError

X, Y = variables("x", "y")
Q_RST = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
Q_R = cq(atom("R", X))


def chain_correlated_pcc(n: int):
    """Facts along a chain, guarded by per-position source events."""
    pc = PCInstance()
    for i in range(n):
        pc.add_event(f"s{i}", 0.6 + 0.3 * ((i % 3) - 1) / 10)
    for i in range(n):
        guard = var(f"s{i}") if i == 0 else (var(f"s{i}") | var(f"s{i-1}"))
        pc.add(fact("R", i), guard)
        pc.add(fact("T", i), var(f"s{i}"))
        if i + 1 < n:
            pc.add(fact("S", i, i + 1), var(f"s{i}") & var(f"s{i+1}"))
    return pcc_from_pc(pc)


def grid_correlated_pcc(side: int):
    """R-facts on a path, fact (i,j) guarded by row_i ∧ col_j."""
    pc = PCInstance()
    for i in range(side):
        pc.add_event(f"row{i}", 0.5)
        pc.add_event(f"col{i}", 0.5)
    position = 0
    for i in range(side):
        for j in range(side):
            pc.add(fact("R", position), var(f"row{i}") & var(f"col{j}"))
            position += 1
    return pcc_from_pc(pc)


@pytest.mark.parametrize("n", [6, 12, 24])
def test_chain_correlated_scaling(benchmark, n):
    pcc = chain_correlated_pcc(n)
    p = benchmark(pcc_probability, Q_RST, pcc)
    assert 0.0 <= p <= 1.0


def test_grid_correlation_hits_width_wall(benchmark):
    pcc = grid_correlated_pcc(6)

    def attempt():
        try:
            pcc_probability(Q_R, pcc, max_width=8)
            return "evaluated"
        except ReproError:
            return "width wall"

    outcome = benchmark(attempt)
    assert outcome == "width wall"


def main() -> None:
    print("E4 — Theorem 2: pcc-instances, joint width is what matters")
    print("\nchain-correlated annotations (bounded joint width):")
    print(f"{'n':>4} {'facts':>6} {'joint width':>12} {'mp width':>9} {'time (s)':>9} {'P':>8}")
    for n in [6, 12, 24, 48]:
        pcc = chain_correlated_pcc(n)
        start = time.perf_counter()
        p, report = pcc_probability(Q_RST, pcc, return_report=True)
        elapsed = time.perf_counter() - start
        print(
            f"{n:>4} {len(pcc):>6} {pcc.joint_width():>12} {report.width:>9}"
            f" {elapsed:>9.3f} {p:>8.4f}"
        )

    print("\ngrid-correlated annotations (instance width 0, joint width grows):")
    print(f"{'side':>5} {'facts':>6} {'joint width':>12} {'outcome':<22}")
    for side in [2, 3, 4, 5, 6]:
        pcc = grid_correlated_pcc(side)
        try:
            start = time.perf_counter()
            p, report = pcc_probability(Q_R, pcc, max_width=8, return_report=True)
            elapsed = time.perf_counter() - start
            outcome = f"P={p:.4f} in {elapsed:.3f}s (w={report.width})"
        except ReproError:
            outcome = "width wall (> 8): intractable"
        print(f"{side:>5} {len(pcc):>6} {pcc.joint_width():>12} {outcome:<22}")
    print("\nshape check: chain stays narrow and fast; grid width grows with side.")


if __name__ == "__main__":
    main()
