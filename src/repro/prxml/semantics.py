"""Possible-world semantics of PrXML documents (the exponential oracle).

A possible world is obtained by drawing the global event valuation, resolving
every ind/mux choice, and splicing out distributional nodes. This module
enumerates the full distribution — exponential, used as ground truth by the
tests and small examples, exactly like possible-world enumeration for
relational instances.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.events import Valuation
from repro.prxml.model import (
    CIE,
    DET,
    IND,
    MUX,
    REGULAR,
    PNode,
    PrXMLDocument,
    World,
    make_world,
)
from repro.util import ReproError, check, stable_rng


def _contributions(node: PNode, valuation: Valuation) -> list[tuple[tuple[World, ...], float]]:
    """Distribution over tuples of world-trees the node forwards upward."""
    if node.kind == REGULAR:
        combined = _combine_children(node.children, valuation)
        return [
            ((make_world(node.label, kids),), p)  # type: ignore[arg-type]
            for kids, p in combined
        ]
    if node.kind == DET:
        return _combine_children(node.children, valuation)
    if node.kind == IND:
        result: list[tuple[tuple[World, ...], float]] = [((), 1.0)]
        for child in node.children:
            p_keep = child.probability or 0.0
            child_options = _contributions(child, valuation)
            updated = []
            for kids, p in result:
                for extra, q in child_options:
                    if p * q * p_keep > 0.0:
                        updated.append((kids + extra, p * q * p_keep))
                if p * (1.0 - p_keep) > 0.0:
                    updated.append((kids, p * (1.0 - p_keep)))
            result = _merge(updated)
        return result
    if node.kind == MUX:
        result = []
        total = 0.0
        for child in node.children:
            p_choose = child.probability or 0.0
            total += p_choose
            for kids, q in _contributions(child, valuation):
                if p_choose * q > 0.0:
                    result.append((kids, p_choose * q))
        leftover = 1.0 - total
        if leftover > 1e-12:
            result.append(((), leftover))
        return _merge(result)
    if node.kind == CIE:
        result = [((), 1.0)]
        for child in node.children:
            holds = all(
                bool(valuation[event]) == positive for event, positive in child.conditions
            )
            if not holds:
                continue
            child_options = _contributions(child, valuation)
            result = _merge(
                [
                    (kids + extra, p * q)
                    for kids, p in result
                    for extra, q in child_options
                ]
            )
        return result
    raise ReproError(f"unknown PrXML node kind {node.kind!r}")


def _combine_children(
    children: list[PNode], valuation: Valuation
) -> list[tuple[tuple[World, ...], float]]:
    result: list[tuple[tuple[World, ...], float]] = [((), 1.0)]
    for child in children:
        child_options = _contributions(child, valuation)
        result = _merge(
            [
                (kids + extra, p * q)
                for kids, p in result
                for extra, q in child_options
            ]
        )
    return result


def _merge(options: list[tuple[tuple[World, ...], float]]) -> list:
    merged: dict[tuple, float] = {}
    for kids, p in options:
        if p > 0.0:
            merged[kids] = merged.get(kids, 0.0) + p
    return list(merged.items())


def world_distribution(doc: PrXMLDocument) -> Iterator[tuple[World, float]]:
    """Enumerate ``(world, probability)`` pairs of the document.

    Exponential in events and local choices; capped for safety.
    """
    events = sorted(doc.space.events())
    check(len(events) <= 16, "world enumeration limited to 16 events")
    check(doc.local_choice_count() <= 16, "world enumeration limited to 16 local choices")
    accumulated: dict[World, float] = {}
    for valuation in doc.space.valuations(events):
        p_valuation = doc.space.valuation_probability(valuation)
        if p_valuation == 0.0:
            continue
        for forwarded, p in _contributions(doc.root, valuation):
            world = forwarded[0]  # the root always survives
            accumulated[world] = accumulated.get(world, 0.0) + p_valuation * p
    yield from accumulated.items()


def sample_world(doc: PrXMLDocument, seed: int | None = None) -> World:
    """Draw one world at random (Monte-Carlo baseline for PrXML)."""
    rng = stable_rng(seed)
    valuation = {e: rng.random() < doc.space.probability(e) for e in doc.space.events()}

    def build(node: PNode) -> tuple[World, ...]:
        if node.kind == REGULAR:
            kids: list[World] = []
            for child in node.children:
                kids.extend(build(child))
            return (make_world(node.label, kids),)  # type: ignore[arg-type]
        if node.kind == DET:
            kids = []
            for child in node.children:
                kids.extend(build(child))
            return tuple(kids)
        if node.kind == IND:
            kids = []
            for child in node.children:
                if rng.random() < (child.probability or 0.0):
                    kids.extend(build(child))
            return tuple(kids)
        if node.kind == MUX:
            draw = rng.random()
            cumulative = 0.0
            for child in node.children:
                cumulative += child.probability or 0.0
                if draw < cumulative:
                    return build(child)
            return ()
        if node.kind == CIE:
            kids = []
            for child in node.children:
                if all(valuation[e] == positive for e, positive in child.conditions):
                    kids.extend(build(child))
            return tuple(kids)
        raise ReproError(f"unknown PrXML node kind {node.kind!r}")

    return build(doc.root)[0]


def query_probability_enumerate(doc: PrXMLDocument, pattern) -> float:
    """Reference probability that ``pattern`` matches a random world."""
    return sum(p for world, p in world_distribution(doc) if pattern.matches(world))
