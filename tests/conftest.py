"""Shared fixtures: process-wide knob isolation + distributed worker lifecycle.

Two jobs live here:

- keep the process-wide evaluation state (engine registry, forced engine,
  worker/host knobs, warn-once latches) test-isolated, so a test that flips
  a knob — or fails mid-flip — cannot leak it into the rest of the suite;
- manage localhost distributed workers for the socket tests: ephemeral TCP
  ports, subprocess spawn with a readiness wait, and guaranteed teardown so
  no test can leak a listening socket or an orphan worker process.

Tests that open sockets or spawn worker subprocesses carry the
``distributed`` marker (registered below) so numpy-free or sandboxed CI
jobs can deselect them with ``-m "not distributed"``.
"""

import json
import os
import socket

import pytest

from repro.circuits import compiled, distributed, evaluation, parallel, plancache
from repro.instances import columnar


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "distributed: test uses localhost TCP sockets and/or worker "
        "subprocesses (deselect with -m 'not distributed')",
    )


@pytest.fixture(autouse=True)
def restore_engine_globals():
    """Restore the engine registry, engine overrides and backend knobs.

    ``force_engine``/``set_default_engine``/``register_engine``/
    ``set_parallel_workers``/``set_distributed_hosts`` mutate process-wide
    state; so do the warn-once latches of the degraded-path warnings. Tests
    should still prefer the ``engine_forced``/``default_engine_set``/
    ``parallel_workers_set``/``distributed_hosts_set`` context managers —
    this fixture is the backstop.
    """
    engines = dict(evaluation._ENGINES)
    default = evaluation._DEFAULT_ENGINE
    forced = evaluation._FORCED_ENGINE
    workers = parallel._WORKERS
    hosts = distributed._HOSTS
    secret = distributed._SECRET
    tls = None if distributed._TLS is None else dict(distributed._TLS)
    provider = distributed._AUTH_PROVIDER
    pipeline = distributed._PIPELINE_DEPTH
    warned = set(distributed._WARNED)
    serial_warned = parallel._SERIAL_FALLBACK_WARNED
    cache_dir = plancache._DIR
    cache_limit = plancache._LIMIT_BYTES
    cache_min = plancache._MIN_GATES
    instance_backend = columnar._BACKEND
    yield
    evaluation._ENGINES.clear()
    evaluation._ENGINES.update(engines)
    evaluation._DEFAULT_ENGINE = default
    evaluation._FORCED_ENGINE = forced
    parallel._WORKERS = workers
    distributed._HOSTS = hosts
    distributed._SECRET = secret
    distributed._TLS = tls
    distributed._AUTH_PROVIDER = provider
    distributed._PIPELINE_DEPTH = pipeline
    if distributed._REGISTRY_BIND is None:
        # Tests that bind an explicit registry must not leak it (or the
        # membership it admitted) into the next test. The env-armed
        # registry (the CI TLS topology) is suite-wide and stays up.
        distributed.stop_registry()
        for leaked in distributed._HOST_POOL.registered():
            distributed._HOST_POOL.drain(leaked)
    distributed._WARNED.clear()
    distributed._WARNED.update(warned)
    parallel._SERIAL_FALLBACK_WARNED = serial_warned
    plancache._DIR = cache_dir
    plancache._LIMIT_BYTES = cache_limit
    plancache._MIN_GATES = cache_min
    columnar._BACKEND = instance_backend


def pytest_sessionfinish(session, exitstatus):
    """Dump compile/plan-cache counters for the CI plan-cache job.

    When ``REPRO_COMPILE_STATS`` names a file, write this process's compile
    and disk-cache counters there as JSON at the end of the run — the CI
    job runs the suite twice against one shared ``REPRO_PLAN_CACHE_DIR``
    and asserts the second run lowered fewer circuits. Lifetime totals,
    so per-test ``reset_*_stats`` calls cannot shrink the counts.
    """
    path = os.environ.get("REPRO_COMPILE_STATS")
    if not path:
        return
    payload = {
        "compile": compiled.compile_stats(lifetime=True),
        "plan_cache": plancache.stats(lifetime=True),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


@pytest.fixture(scope="session", autouse=True)
def shutdown_parallel_backend():
    """Stop the pools (process + TCP) and shared memory when the suite ends.

    The persistent :class:`~repro.circuits.distributed.HostPool` is left
    running *between* tests on purpose — connection reuse across calls is
    the behaviour under test — and torn down once here.
    """
    yield
    parallel.shutdown()
    distributed.close_pool()


# --------------------------------------------------------------------------- #
# distributed worker lifecycle

@pytest.fixture
def unused_tcp_port():
    """An ephemeral localhost TCP port that was free a moment ago."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture
def worker_factory():
    """Spawn localhost workers with guaranteed teardown, one test at a time.

    Yields a ``factory(max_tasks=None, port=0, secret=None, delay=None,
    tls_cert=None, tls_key=None, tls_ca=None, register=None,
    advertise=None) -> LocalWorker`` built on
    :func:`repro.circuits.distributed.spawn_local_worker` (the same spawn/
    readiness-wait/teardown implementation the benchmarks use); every
    spawned worker — including ones the test deliberately crashed — is
    reaped when the test ends, whether it passed or not. ``port`` lets a
    test bounce a worker and relaunch it at the same address; ``secret``
    arms authentication; ``delay`` makes the worker artificially slow;
    the ``tls_*`` paths arm transport security and ``register`` dials a
    coordinator registry (elastic membership).
    """
    spawned: list[distributed.LocalWorker] = []

    def factory(
        max_tasks: int | None = None, port: int = 0,
        secret: str | None = None, delay: float | None = None,
        tls_cert: str | None = None, tls_key: str | None = None,
        tls_ca: str | None = None, register: str | None = None,
        advertise: str | None = None,
    ) -> distributed.LocalWorker:
        handle = distributed.spawn_local_worker(
            max_tasks=max_tasks, port=port, secret=secret, delay=delay,
            tls_cert=tls_cert, tls_key=tls_key, tls_ca=tls_ca,
            register=register, advertise=advertise,
        )
        spawned.append(handle)
        return handle

    yield factory
    for handle in spawned:
        handle.stop()


@pytest.fixture(scope="module")
def module_worker():
    """One healthy worker shared by a whole test module (spawned once)."""
    handle = distributed.spawn_local_worker()
    yield handle
    handle.stop()
