"""Query languages: CQs, UCQs, safe plans, Datalog (S5)."""

from repro.queries.cq import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    Variable,
    atom,
    cq,
    ucq,
    variables,
)
from repro.queries.cq import homomorphisms
from repro.queries.datalog import DatalogProgram, DatalogRule
from repro.queries.keys import KeySpec, key_spec
from repro.queries.safe import (
    UnsafeQueryError,
    is_hierarchical,
    is_safe,
    safe_plan_probability,
)

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "DatalogProgram",
    "DatalogRule",
    "KeySpec",
    "UnionOfConjunctiveQueries",
    "UnsafeQueryError",
    "Variable",
    "atom",
    "cq",
    "homomorphisms",
    "is_hierarchical",
    "key_spec",
    "is_safe",
    "safe_plan_probability",
    "ucq",
    "variables",
]
