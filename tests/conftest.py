"""Shared fixtures: keep process-wide evaluation state test-isolated."""

import pytest

from repro.circuits import evaluation, parallel


@pytest.fixture(autouse=True)
def restore_engine_globals():
    """Restore the engine registry, engine overrides and worker knob.

    ``force_engine``/``set_default_engine``/``register_engine``/
    ``set_parallel_workers`` mutate process-wide state; a test that flips
    them (or fails mid-flip) must not leak its choice into the rest of the
    suite. Tests should still prefer the ``engine_forced``/
    ``default_engine_set``/``parallel_workers_set`` context managers — this
    fixture is the backstop.
    """
    engines = dict(evaluation._ENGINES)
    default = evaluation._DEFAULT_ENGINE
    forced = evaluation._FORCED_ENGINE
    workers = parallel._WORKERS
    yield
    evaluation._ENGINES.clear()
    evaluation._ENGINES.update(engines)
    evaluation._DEFAULT_ENGINE = default
    evaluation._FORCED_ENGINE = forced
    parallel._WORKERS = workers


@pytest.fixture(scope="session", autouse=True)
def shutdown_parallel_backend():
    """Stop the worker pool and unlink shared memory when the suite ends."""
    yield
    parallel.shutdown()
